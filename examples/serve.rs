//! Serve a subjective database over HTTP.
//!
//! ```sh
//! cargo run --release --example serve
//! ```
//!
//! Environment knobs:
//! * `OPINE_PORT` — port to bind (default 7878; `0` picks an ephemeral
//!   port and prints it).
//! * `OPINE_ENTITIES` / `OPINE_REVIEWS` — corpus scale (default 64 / 12).
//! * `OPINE_WORKERS` — worker threads (default: 2× cores, clamped 2–16).
//! * `OPINE_MAX_IN_FLIGHT` — admission budget: concurrent query
//!   executions before arrivals are shed with 503 (default: workers/2).
//! * `OPINE_MERGE_THRESHOLD` — unsealed delta reviews that trigger a
//!   freeze-merge after an insert (default 64; see the README's
//!   **Live ingest** section).
//! * `OPINE_REQUEST_TIMEOUT_MS` — per-query execution deadline; scans
//!   past it answer 504 (default 10000; `0` disables).
//! * `OPINE_READ_TIMEOUT_MS` / `OPINE_WRITE_TIMEOUT_MS` — socket
//!   timeouts bounding idle and slow-reading clients (`0` disables).
//! * `OPINE_FAULTS` / `OPINE_FAULTS_SEED` — fault injection, e.g.
//!   `OPINE_FAULTS='pre_ta=panic@0.01,mid_wand=delay:5@0.02'`
//!   (chaos testing only; see `opine_core::faults`).
//!
//! Then, in another terminal (the paper's running example):
//!
//! ```sh
//! curl -s localhost:7878/query -d '{"sql": "select * from hotels where price_pn < 150 and \"clean rooms\" limit 5"}'
//! curl -s localhost:7878/stats
//! ```

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::server::{OpineServer, ServerConfig};
use std::sync::Arc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_entities = env_usize("OPINE_ENTITIES", 64);
    let mean_reviews = env_usize("OPINE_REVIEWS", 12);
    let port = env_usize("OPINE_PORT", 7878);

    eprintln!("building {num_entities}-hotel corpus ({mean_reviews} reviews/hotel)…");
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities,
            mean_reviews,
            seed: 7,
        },
    );
    let db = Arc::new(build(&corpus, &BuildConfig::default()));
    if let Ok(threshold) = std::env::var("OPINE_MERGE_THRESHOLD") {
        let threshold = threshold.parse().expect("OPINE_MERGE_THRESHOLD: usize");
        db.set_merge_threshold(threshold);
    }

    // Failpoints are compiled in but inert until OPINE_FAULTS is set.
    opinedb::core::faults::init_from_env();

    let config = ServerConfig::from_env();
    let server =
        OpineServer::bind(format!("127.0.0.1:{port}"), db, config).expect("bind serving port");

    // The smoke script greps this exact prefix for the bound address.
    println!("opine-server listening on http://{}", server.local_addr());
    println!("workers: {}", server.workers());
    println!();
    println!("try:");
    println!(
        "  curl -s {}/query -d '{{\"sql\": \"select * from hotels where price_pn < 150 and \\\"clean rooms\\\" limit 5\"}}'",
        server.url()
    );
    println!("  curl -s {}/stats", server.url());

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
