//! Review-qualified queries (Sec. 2): "consider only opinions of people
//! who reviewed at least 10 hotels" and "reviews after 2010" — both
//! require recomputing marker summaries from the extraction relation.
//!
//! ```sh
//! cargo run --release --example qualified_reviews
//! ```

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use std::collections::HashMap;

fn main() {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 30,
            mean_reviews: 30,
            seed: 5,
        },
    );
    let db = build(&corpus, &BuildConfig::default());

    // Prolific reviewers: at least 10 reviews in the corpus.
    let counts: HashMap<usize, usize> = corpus.reviewer_counts();
    let prolific: Vec<usize> = counts
        .iter()
        .filter(|(_, &n)| n >= 10)
        .map(|(&r, _)| r)
        .collect();
    println!(
        "{} of {} reviewers wrote >= 10 reviews",
        prolific.len(),
        counts.len()
    );

    let full = db.summaries_with_review_filter(|_| true);
    let qualified =
        db.summaries_with_review_filter(|m| counts.get(&m.reviewer_id).copied().unwrap_or(0) >= 10);
    let recent = db.summaries_with_review_filter(|m| m.year > 2010);

    println!("\nroom-cleanliness degree for \"very clean\" under each review filter:");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "hotel", "all", "prolific", "after 2010", "reviews"
    );
    for e in 0..8 {
        let d_all = db.attribute_degree_with_summaries(&full, e, 0, "very clean");
        let d_q = db.attribute_degree_with_summaries(&qualified, e, 0, "very clean");
        let d_r = db.attribute_degree_with_summaries(&recent, e, 0, "very clean");
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3} {:>8}",
            db.entity_key(e),
            d_all,
            d_q,
            d_r,
            db.review_count(e)
        );
    }
    println!(
        "\n(the filtered columns differ from `all` because the summaries were \
         recomputed from the qualifying extractions only)"
    );
}
