//! Review-qualified queries (Sec. 2): "consider only opinions of people
//! who reviewed at least 10 hotels" and "reviews after 2010".
//!
//! Since PR 4 these are first-class Subjective SQL (`... with
//! reviews(year >= 2010, reviewer_min_count >= 10)`) and interactive:
//! raw occurrences are partitioned at build time into per-(year,
//! reviewer-degree-bucket) partial summaries, and a qualifier *merges*
//! partials (fixed-point accumulators make the merge bit-identical to a
//! from-scratch rebuild) instead of re-aggregating every extraction.
//!
//! ```sh
//! cargo run --release --example qualified_reviews
//! ```

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::store::ReviewQualifier;
use std::time::Instant;

fn main() {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 30,
            mean_reviews: 30,
            seed: 5,
        },
    );
    let db = build(&corpus, &BuildConfig::default());

    let prolific = corpus
        .reviews
        .iter()
        .filter(|r| db.reviewer_review_count(r.reviewer_id) >= 10)
        .count();
    println!(
        "{prolific} of {} reviews were written by reviewers with >= 10 reviews",
        corpus.reviews.len()
    );

    // The SQL surface: the qualifier scopes every subjective degree in
    // the statement to the qualifying reviews.
    let sql = "select hotelname, price_pn from hotels \
               where \"very clean rooms\" \
               with reviews(year > 2010, reviewer_min_count >= 10) \
               limit 8";
    println!("\n{sql}\n");
    let out = db.query(sql).expect("qualified query runs");
    for (row, score) in &out.result.rows {
        println!("  {:<12} {:>8}   degree {score:.3}", row[0], row[1]);
    }

    // Under the hood: merged partials vs the raw-scan rebuild — same
    // summaries (bit-identical), very different cost.
    let qualifier = ReviewQualifier {
        min_year: Some(2011),
        max_year: None,
        min_reviewer_count: Some(10),
    };
    let start = Instant::now();
    let rebuilt = db.summaries_with_review_filter(|m| {
        qualifier.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
    });
    let t_rebuild = start.elapsed();
    db.clear_filtered_summaries();
    let start = Instant::now();
    let merged = db.summaries_qualified(&qualifier);
    let t_merge = start.elapsed();

    println!("\nroom-cleanliness degree for \"very clean\", all vs qualified reviews:");
    println!(
        "{:<12} {:>8} {:>11} {:>8}",
        "hotel", "all", "qualified", "reviews"
    );
    let all = db.summaries_qualified(&ReviewQualifier::default());
    for e in 0..8 {
        let d_all = db.attribute_degree_with_summaries(&all, e, 0, "very clean");
        let d_q = db.attribute_degree_with_summaries(&merged, e, 0, "very clean");
        assert_eq!(
            d_q.to_bits(),
            db.attribute_degree_with_summaries(&rebuilt, e, 0, "very clean")
                .to_bits(),
            "merge and rebuild must agree bit-for-bit"
        );
        println!(
            "{:<12} {:>8.3} {:>11.3} {:>8}",
            db.entity_key(e),
            d_all,
            d_q,
            db.review_count(e)
        );
    }
    println!(
        "\nraw-scan rebuild {:>8.1?}   bucket merge {:>8.1?}   ({:.1}x)",
        t_rebuild,
        t_merge,
        t_rebuild.as_secs_f64() / t_merge.as_secs_f64().max(1e-9)
    );
}
