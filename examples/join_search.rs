//! The Fig. 3 join query: "find a hotel with a lively bar on the same
//! street as a cafe with a relaxing atmosphere".
//!
//! OpineDB leaves fuzzy join *semantics* to future work; as documented in
//! DESIGN.md we execute the join relationally and combine the subjective
//! scores with the product t-norm.
//!
//! ```sh
//! cargo run --release --example join_search
//! ```

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::store::{Column, ColumnType, Schema, Value};

fn main() {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 30,
            mean_reviews: 18,
            seed: 21,
        },
    );
    let db = build(&corpus, &BuildConfig::default());

    // Extend the catalog with a streets mapping and a cafes table (the
    // cafes' "relaxing atmosphere" scores come from their own mini review
    // aggregation; here they are published scores).
    let mut catalog = db.catalog().clone();
    catalog
        .create_table(Schema::new(
            "hotel_streets",
            vec![
                Column::new("hotel", ColumnType::Text),
                Column::new("street", ColumnType::Text),
            ],
            0,
        ))
        .unwrap();
    catalog
        .create_table(Schema::new(
            "cafes",
            vec![
                Column::new("cafename", ColumnType::Text),
                Column::new("street", ColumnType::Text),
                Column::new("relaxing", ColumnType::Float),
            ],
            0,
        ))
        .unwrap();
    let streets = ["baker", "oxford", "regent", "piccadilly"];
    for e in 0..db.num_entities() {
        catalog
            .insert(
                "hotel_streets",
                vec![
                    Value::text(db.entity_key(e)),
                    Value::text(streets[e % streets.len()]),
                ],
            )
            .unwrap();
    }
    for (i, street) in streets.iter().enumerate() {
        catalog
            .insert(
                "cafes",
                vec![
                    Value::text(&format!("Cafe {i}")),
                    Value::text(street),
                    Value::Float(0.4 + 0.15 * i as f64),
                ],
            )
            .unwrap();
    }

    // Join hotels to co-located cafes; the "lively bar" predicate is
    // subjective (scored by OpineDB), the cafe condition is objective here.
    let sql = "select * from hotels h \
               join hotel_streets s on h.hotelname = s.hotel \
               join cafes c on s.street = c.street \
               where \"a lively bar scene\" and c.relaxing > 0.6 \
               limit 5";
    println!("query (Fig. 3): {sql}\n");
    let select = opinedb::store::parse_select(sql).expect("parses");
    let result = opinedb::store::execute(&select, &catalog, &db).expect("executes");
    println!("hotel        street       cafe      score");
    for (row, score) in &result.rows {
        println!(
            "{:<12} {:<12} {:<9} {score:.3}",
            row[0].to_string(),
            row[6].to_string(),
            row[7].to_string()
        );
    }
}
