//! Quickstart: build a subjective database over a synthetic hotel review
//! corpus and run the paper's running-example query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};

fn main() {
    // 1. A seeded review corpus: 40 hotels, ~20 reviews each, with latent
    //    per-aspect quality driving the generated phrases.
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 40,
            mean_reviews: 20,
            seed: 7,
        },
    );
    println!(
        "corpus: {} hotels, {} reviews",
        corpus.entities.len(),
        corpus.reviews.len()
    );
    println!("sample review: {:?}", corpus.reviews[0].text);

    // 2. Build the subjective database: word2vec pre-training, linguistic
    //    domains, marker discovery, summaries, membership functions.
    let db = build(&corpus, &BuildConfig::default());
    println!("\nschema (Fig. 2 of the paper): table `hotels` + subjective attributes:");
    for (i, attr) in db.attributes.iter().enumerate() {
        let markers: Vec<&str> = db
            .marker_set(i)
            .markers
            .iter()
            .map(|m| m.phrase.as_str())
            .collect();
        println!("  * {attr}: [{}]", markers.join(", "));
    }

    // 3. The running example: an objective predicate plus two subjective
    //    ones, combined with fuzzy logic and returned as a ranked list.
    let sql = "select * from hotels \
               where price_pn < 150 and \
               \"has really clean rooms\" and \"is a romantic getaway\" \
               limit 5";
    println!("\nquery: {sql}");
    let out = db.query(sql).expect("valid subjective SQL");
    for (predicate, interp) in &out.interpretations {
        println!("  interpreted {predicate:?} as {interp:?}");
    }
    println!("\ntop-5 answers (hotel, price, fuzzy score):");
    for (row, score) in &out.result.rows {
        println!(
            "  {:<10} {:>8}   {score:.3}",
            row[0].to_string(),
            row[2].to_string()
        );
    }
}
