//! The schema designer's workflow (Sec. 4): tag a review sentence
//! (Fig. 6), expand seeds into a weakly-supervised training set, train the
//! attribute classifier, and inspect auto-discovered markers.
//!
//! ```sh
//! cargo run --release --example schema_design
//! ```

use opinedb::corpus::absa::absa_datasets;
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::{PhraseEmbedder, Word2Vec, Word2VecConfig};
use opinedb::extract::seeds::seeds_from_spec;
use opinedb::extract::{expand_seeds, AttributeClassifier, Extractor};
use opinedb::ml::{LogRegConfig, TaggerConfig};
use opinedb::text::{split_sentences, tokenize, tokenize_keep_stops, IdfModel, Vocab};

fn main() {
    // --- Fig. 6: tagging and pairing on a labelled hotel dataset ---
    let dataset = absa_datasets(99)
        .into_iter()
        .find(|d| d.name == "Booking.com Hotel")
        .expect("hotel dataset");
    let extractor = Extractor::train(&dataset.train, None, &TaggerConfig::default());
    let sentence = "the bed was too soft and the bathroom a bit small";
    let tokens = tokenize_keep_stops(sentence);
    println!("sentence: {sentence}");
    println!("extracted pairs (tagging + rule-based pairing):");
    for pair in extractor.extract(&tokens) {
        println!("  ({:?}, {:?})", pair.aspect, pair.opinion);
    }

    // --- Sec. 4.2: seed expansion and the attribute classifier ---
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 40,
            mean_reviews: 20,
            seed: 3,
        },
    );
    let mut vocab = Vocab::new();
    let mut sentences = Vec::new();
    let mut idf = IdfModel::new(&vocab);
    for review in &corpus.reviews {
        let mut doc = Vec::new();
        for s in split_sentences(&review.text) {
            let ids = vocab.intern_all(&tokenize(s));
            doc.extend(ids.iter().copied());
            sentences.push(ids);
        }
        idf.add_document(&doc);
    }
    let w2v = Word2Vec::train(&sentences, vocab.len(), &Word2VecConfig::default());
    let embedder = PhraseEmbedder::new(w2v.clone(), idf);

    let seeds = seeds_from_spec(&corpus.spec, 0.6);
    let total_seeds: usize = seeds
        .iter()
        .map(|s| s.aspect_terms.len() + s.opinion_terms.len())
        .sum();
    let records = expand_seeds(&seeds, &w2v, &vocab, 3, 0.35, 5000);
    println!(
        "\n{} attributes, {} designer seeds expanded into {} weak training records",
        corpus.spec.aspects.len(),
        total_seeds,
        records.len()
    );
    let classifier = AttributeClassifier::train(
        &records,
        corpus.spec.aspects.len(),
        &embedder,
        &vocab,
        &LogRegConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    for phrase in ["room very clean", "staff not so friendly", "wifi very slow"] {
        let attr = classifier.classify(phrase, &embedder, &vocab);
        println!("  {phrase:?} -> {}", corpus.spec.aspects[attr].name);
    }

    // --- Sec. 4.2.1: auto-discovered markers ---
    let db = opinedb::core::build(&corpus, &opinedb::core::BuildConfig::default());
    println!("\nauto-discovered markers:");
    for attr in [0usize, 1] {
        let markers: Vec<&str> = db
            .marker_set(attr)
            .markers
            .iter()
            .map(|m| m.phrase.as_str())
            .collect();
        println!("  {}: [{}]", db.attributes[attr], markers.join(", "));
    }
}
