//! Experiential search (Sec. 1.1): the three-stage interpreter at work.
//!
//! Shows a predicate answered directly from the schema (word2vec), one
//! answered through review co-occurrence ("romantic getaway"), and one
//! that falls back to raw text retrieval ("good for motorcyclists").
//!
//! ```sh
//! cargo run --release --example experiential_search
//! ```

use opinedb::core::{build, BuildConfig, Interpretation};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 60,
            mean_reviews: 24,
            seed: 11,
        },
    );
    let db = build(&corpus, &BuildConfig::default());

    for predicate in [
        "has really clean rooms", // stage 1: word2vec over the schema
        "is a romantic getaway",  // stage 2: review co-occurrence
        "good for motorcyclists", // stage 3: text-retrieval fallback
    ] {
        let interp = db.interpret(predicate);
        let stage = match &interp {
            Interpretation::Direct {
                attribute,
                similarity,
            } => format!(
                "stage 1 (word2vec): attribute `{}`, similarity {similarity:.2}",
                db.attributes[*attribute]
            ),
            Interpretation::CoOccur { terms, conjunctive } => {
                let rendered: Vec<String> = terms
                    .iter()
                    .map(|&(a, m)| {
                        format!(
                            "{}.\"{}\"",
                            db.attributes[a],
                            db.marker_set(a).markers[m].phrase
                        )
                    })
                    .collect();
                format!(
                    "stage 2 (co-occurrence): {}",
                    rendered.join(if *conjunctive { " ⊗ " } else { " ⊕ " })
                )
            }
            Interpretation::TextFallback => "stage 3 (text retrieval fallback)".to_string(),
        };
        println!("{predicate:?}\n  -> {stage}");

        let sql = format!("select * from hotels where \"{predicate}\" limit 3");
        let out = db.query(&sql).expect("valid query");
        for (row, score) in &out.result.rows {
            println!("     {:<10} score {score:.3}", row[0].to_string());
        }
        println!();
    }
}
