//! Concurrency soak: one shared `OpineDb` hammered by ≥8 threads issuing
//! a mix of warm and cold subjective queries, with a cache-clearing
//! antagonist in the mix. Every concurrent answer must be identical to
//! single-threaded execution — this validates the engine's interior
//! caches (interpretation memo, degree columns, point memo, prepared
//! phrases) under contention, which is exactly what the serving layer
//! relies on.

use opinedb::core::{build, BuildConfig, OpineDb, QueryOutput};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;
use std::sync::Arc;

const THREADS: usize = 8;
const ITERATIONS: usize = 12;

/// The query mix: every executor path — threshold-algorithm top-k (pure
/// conjunction), batched or-expression, lazy mixed objective+subjective,
/// marker match, projection + order by.
const QUERIES: &[&str] = &[
    "select * from hotels where \"clean rooms\" limit 8",
    "select * from hotels where \"clean rooms\" and \"friendly staff\" limit 8",
    "select * from hotels where \"clean rooms\" or \"quiet at night\" limit 8",
    "select * from hotels where price_pn < 200 and \"clean rooms\" limit 8",
    "select * from hotels h where h.room_cleanliness .= \"very clean\" limit 8",
    "select hotelname, price_pn from hotels where price_pn < 250 order by price_pn asc limit 8",
];

fn soak_db() -> OpineDb {
    let env_usize = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: env_usize("OPINE_TEST_ENTITIES", 24),
            mean_reviews: env_usize("OPINE_TEST_REVIEWS", 12),
            seed: 47,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 2,
                ..Default::default()
            },
            membership_tuples: 400,
            ..Default::default()
        },
    )
}

fn assert_same(sql: &str, reference: &QueryOutput, got: &QueryOutput) {
    assert_eq!(
        reference.result.columns, got.result.columns,
        "{sql}: columns diverged"
    );
    assert_eq!(
        reference.result.rows.len(),
        got.result.rows.len(),
        "{sql}: row count diverged"
    );
    for (i, ((r_row, r_score), (g_row, g_score))) in reference
        .result
        .rows
        .iter()
        .zip(&got.result.rows)
        .enumerate()
    {
        assert_eq!(r_row, g_row, "{sql}: row {i} diverged");
        assert!(
            (r_score - g_score).abs() < 1e-12,
            "{sql}: row {i} score {r_score} vs {g_score}"
        );
    }
    assert_eq!(
        reference.interpretations.len(),
        got.interpretations.len(),
        "{sql}: interpretations diverged"
    );
}

#[test]
fn eight_threads_of_mixed_queries_match_single_threaded_execution() {
    let db = Arc::new(soak_db());

    // Single-threaded references, computed cold (fresh caches) and again
    // warm: caching must never change an answer even before threads enter.
    let references: Vec<QueryOutput> = QUERIES
        .iter()
        .map(|sql| db.query(sql).expect("reference query"))
        .collect();
    for (sql, reference) in QUERIES.iter().zip(&references) {
        let warm = db.query(sql).expect("warm reference");
        assert_same(sql, reference, &warm);
    }
    db.clear_caches();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = db.clone();
            let references = &references;
            s.spawn(move || {
                for i in 0..ITERATIONS {
                    // Thread-dependent order interleaves warm and cold
                    // predicates across threads.
                    let q = (t * 7 + i) % QUERIES.len();
                    let sql = QUERIES[q];
                    let got = db.query(sql).expect("concurrent query");
                    assert_same(sql, &references[q], &got);
                    // One antagonist thread repeatedly drops every cache
                    // mid-flight, forcing cold rebuilds under contention.
                    if t == 0 && i % 3 == 0 {
                        db.clear_caches();
                    }
                }
            });
        }
    });

    // After the storm: answers still match, caches still coherent.
    for (sql, reference) in QUERIES.iter().zip(&references) {
        let got = db.query(sql).expect("post-soak query");
        assert_same(sql, reference, &got);
    }
}

#[test]
fn concurrent_column_builds_are_consistent() {
    let db = Arc::new(soak_db());
    // All threads race to build the same degree columns from cold.
    let columns: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let db = db.clone();
                s.spawn(move || {
                    db.degree_column("clean rooms")
                        .degrees()
                        .expect("exact columns by default")
                        .to_vec()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for c in &columns[1..] {
        assert_eq!(&columns[0], c, "racing column builds must agree");
    }
    // And the point path sees the same degrees.
    for (e, column_degree) in columns[0].iter().enumerate() {
        assert!((db.degree(e, "clean rooms") - column_degree).abs() < 1e-12);
    }
}
