//! Block-Max-WAND equivalence harness.
//!
//! The skipping retrieval path must return **bit-identical** answers to
//! the exhaustive posting traversal it replaced — same documents, same
//! `f64` score bits, same tie order — over random corpora and queries
//! (including duplicate terms, empty queries, out-of-vocabulary terms,
//! `k` larger than the corpus, and all-equal-score ties), and the
//! per-block max-impact bounds must truly dominate every member
//! document's score. On top of the index-level properties, a cold-path
//! regression asserts the skipping path actually fires inside the
//! interpretation pipeline (`wand_queries` / `blocks_skipped` via
//! `cache_report`) and that query answers with WAND on and off match
//! end-to-end through both `execute` and `execute_lazy`.

use opinedb::core::interpret::InterpreterConfig;
use opinedb::core::{build, BuildConfig, OpineDb};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;
use opinedb::ir::{Bm25Params, InvertedIndex, SearchHit};
use opinedb::store::parser::parse_select;
use opinedb::store::{execute, execute_lazy};
use opinedb::text::Vocab;
use proptest::prelude::*;

/// Builds an index over synthetic documents. Word id `w` renders as the
/// token `w{w}`; every id in `0..vocab_size + 3` is interned, so ids at
/// the top of the range act as in-vocabulary terms with empty posting
/// lists (the OOV case `search_terms` must tolerate).
fn build_index(
    docs: &[Vec<u8>],
    vocab_size: u8,
    block_size: usize,
) -> (Vocab, InvertedIndex, Vec<opinedb::text::WordId>) {
    let mut vocab = Vocab::new();
    let ids: Vec<_> = (0..vocab_size as usize + 3)
        .map(|w| vocab.intern(&format!("w{w}")))
        .collect();
    let mut index = InvertedIndex::new();
    index.set_block_size(block_size);
    for doc in docs {
        let text = doc
            .iter()
            .map(|&w| format!("w{w}"))
            .collect::<Vec<_>>()
            .join(" ");
        index.add_document(&text, &mut vocab);
    }
    (vocab, index, ids)
}

/// Asserts bit-identical hits: same docs, same score bits, same order.
fn assert_bit_identical(
    wand: &[SearchHit],
    exhaustive: &[SearchHit],
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        wand.len() == exhaustive.len(),
        "{}: lengths differ ({} vs {})",
        context,
        wand.len(),
        exhaustive.len()
    );
    for (i, (w, e)) in wand.iter().zip(exhaustive).enumerate() {
        prop_assert!(
            w.doc == e.doc,
            "{}: doc at rank {} differs ({:?} vs {:?})",
            context,
            i,
            w.doc,
            e.doc
        );
        prop_assert!(
            w.score.to_bits() == e.score.to_bits(),
            "{}: score bits at rank {} differ ({} vs {})",
            context,
            i,
            w.score,
            e.score
        );
    }
    Ok(())
}

proptest! {
    /// Random corpora + random queries (duplicates and OOV terms
    /// included), random k (0 up to past the corpus size), random
    /// block sizes down to single-posting blocks: WAND ≡ exhaustive.
    #[test]
    fn wand_is_bit_identical_to_exhaustive(
        docs in prop::collection::vec(prop::collection::vec(0u8..12, 0..10), 0..48),
        query in prop::collection::vec(0usize..15, 0..6),
        k in 0usize..60,
        block_size in 1usize..9,
    ) {
        let (_, index, ids) = build_index(&docs, 12, block_size);
        let terms: Vec<_> = query.iter().map(|&q| ids[q]).collect();
        let params = Bm25Params::default();
        let wand = index.search_terms(&terms, k, &params);
        let exhaustive = index.search_terms_exhaustive(&terms, k, &params);
        assert_bit_identical(
            &wand,
            &exhaustive,
            &format!("docs={} terms={:?} k={k} block={block_size}", docs.len(), query),
        )?;
        if k == 0 || terms.is_empty() {
            prop_assert!(wand.is_empty());
        }
    }

    /// A tiny vocabulary forces massive score ties; the tie order
    /// (ascending doc id) must survive skipping exactly.
    #[test]
    fn tied_scores_keep_exhaustive_order(
        num_docs in 1usize..64,
        k in 0usize..80,
        block_size in 1usize..6,
    ) {
        // Every document is identical, so every score is identical.
        let docs: Vec<Vec<u8>> = (0..num_docs).map(|_| vec![0, 1, 1]).collect();
        let (_, index, ids) = build_index(&docs, 2, block_size);
        let terms = [ids[0], ids[1]];
        let params = Bm25Params::default();
        let wand = index.search_terms(&terms, k, &params);
        let exhaustive = index.search_terms_exhaustive(&terms, k, &params);
        assert_bit_identical(&wand, &exhaustive, &format!("n={num_docs} k={k}"))?;
        // Ties resolve to the smallest doc ids, in ascending order.
        let expect: Vec<u32> = (0..num_docs.min(k) as u32).collect();
        let got: Vec<u32> = wand.iter().map(|h| h.doc.0).collect();
        prop_assert_eq!(got, expect);
    }

    /// Duplicate query terms double (triple, …) a term's contribution;
    /// the skipping path must accumulate them in the same order.
    #[test]
    fn duplicate_terms_stay_equivalent(
        docs in prop::collection::vec(prop::collection::vec(0u8..6, 1..8), 1..40),
        term in 0usize..6,
        copies in 2usize..5,
        k in 1usize..50,
    ) {
        let (_, index, ids) = build_index(&docs, 6, 4);
        let terms: Vec<_> = std::iter::repeat_n(ids[term], copies).collect();
        let params = Bm25Params::default();
        let wand = index.search_terms(&terms, k, &params);
        let exhaustive = index.search_terms_exhaustive(&terms, k, &params);
        assert_bit_identical(&wand, &exhaustive, &format!("copies={copies} k={k}"))?;
    }

    /// Interleaved add/search: appending documents to an already-frozen
    /// index keeps sealed blocks and maintains the freeze incrementally,
    /// and every search between appends stays bit-identical to the
    /// exhaustive scorer over the same corpus state.
    #[test]
    fn interleaved_adds_and_searches_stay_bit_identical(
        initial in prop::collection::vec(prop::collection::vec(0u8..10, 1..8), 1..24),
        appended in prop::collection::vec(prop::collection::vec(0u8..10, 0..8), 1..24),
        query in prop::collection::vec(0usize..12, 1..5),
        k in 1usize..40,
        block_size in 1usize..6,
    ) {
        let (mut vocab, mut index, ids) = build_index(&initial, 10, block_size);
        // Freeze now, then append — the sealed prefix must never be
        // rebuilt, only the unsealed tail and the idf scalars move.
        index.freeze();
        let params = Bm25Params::default();
        let terms: Vec<_> = query.iter().map(|&q| ids[q]).collect();
        for doc in &appended {
            let text = doc
                .iter()
                .map(|&w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ");
            index.add_document(&text, &mut vocab);
            let wand = index.search_terms(&terms, k, &params);
            let exhaustive = index.search_terms_exhaustive(&terms, k, &params);
            assert_bit_identical(
                &wand,
                &exhaustive,
                &format!(
                    "incremental: base={} appended_len={} k={k} block={block_size}",
                    initial.len(),
                    doc.len()
                ),
            )?;
        }
        // Post-append block bounds still dominate member scores.
        for &term in &ids {
            let postings = index.term_postings(term);
            for (first, last, bound) in index.term_blocks(term, &params) {
                for &(doc, _) in postings {
                    if doc >= first && doc <= last {
                        let score = index.bm25(doc, &[term], &params);
                        prop_assert!(
                            score <= bound,
                            "doc {:?} scores {} above its post-append bound {}",
                            doc, score, bound
                        );
                    }
                }
            }
        }
        // A full refreeze restores exact bounds bit-identically.
        index.refreeze();
        let wand = index.search_terms(&terms, k, &params);
        let exhaustive = index.search_terms_exhaustive(&terms, k, &params);
        assert_bit_identical(&wand, &exhaustive, "after refreeze")?;
    }

    /// No block's stored max-impact bound is ever exceeded by a member
    /// document's real score (the invariant every skip relies on).
    #[test]
    fn block_bounds_dominate_member_scores(
        docs in prop::collection::vec(prop::collection::vec(0u8..8, 1..10), 1..60),
        block_size in 1usize..7,
    ) {
        let (_, index, ids) = build_index(&docs, 8, block_size);
        let params = Bm25Params::default();
        for &term in &ids {
            let blocks = index.term_blocks(term, &params);
            let postings = index.term_postings(term);
            for (first, last, bound) in blocks {
                for &(doc, _) in postings {
                    if doc >= first && doc <= last {
                        let score = index.bm25(doc, &[term], &params);
                        prop_assert!(
                            score <= bound,
                            "doc {:?} scores {} above its block bound {}",
                            doc, score, bound
                        );
                    }
                }
            }
        }
    }
}

/// A database whose interpreter must fall past stage 1 for every
/// predicate (unreachable word2vec threshold) and retrieves a small
/// top-k, so the cold interpretation path exercises WAND skipping on a
/// review-heavy corpus.
fn pipeline_db() -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 24,
            mean_reviews: 40,
            seed: 31,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 300,
            interpreter: InterpreterConfig {
                // Stage 1 can never trigger (cosine ≤ 1), so every cold
                // interpretation runs the co-occurrence retrieval.
                theta1: 1.01,
                top_k_reviews: 5,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn cold_interpretation_fires_the_skipping_path() {
    let db = pipeline_db();
    let before = db.cache_report();
    assert_eq!(before.wand_queries, 0);
    let out = db
        .query("select * from hotels where \"very clean comfortable room\" limit 8")
        .expect("query runs");
    assert!(!out.result.rows.is_empty());
    let after = db.cache_report();
    assert!(
        after.wand_queries > 0,
        "cold interpretation must route retrieval through WAND: {after:?}"
    );
    assert!(
        after.blocks_skipped > 0,
        "the block-max bounds must actually skip blocks on a \
         review-heavy corpus: {after:?}"
    );
}

#[test]
fn wand_toggle_answers_match_end_to_end() {
    let db = pipeline_db();
    for sql in [
        "select * from hotels where \"very clean comfortable room\" limit 10",
        "select * from hotels where \"friendly helpful staff\" and \"clean rooms\" limit 6",
        "select * from hotels where price_pn < 200 and \"quiet comfortable room\" limit 12",
    ] {
        let select = parse_select(sql).expect("parses");

        let wand_exec = execute(&select, db.catalog(), &db).expect("execute");
        let wand_lazy_rows: Vec<_> = {
            let lazy = execute_lazy(&select, db.catalog(), &db).expect("execute_lazy");
            (0..lazy.len())
                .map(|i| {
                    (
                        lazy.score(i),
                        lazy.values(i).map(|v| v.to_value()).collect::<Vec<_>>(),
                    )
                })
                .collect()
        };

        db.set_wand(false);
        let exhaustive_exec = execute(&select, db.catalog(), &db).expect("execute (exhaustive)");
        let exhaustive_lazy_rows: Vec<_> = {
            let lazy = execute_lazy(&select, db.catalog(), &db).expect("execute_lazy (exhaustive)");
            (0..lazy.len())
                .map(|i| {
                    (
                        lazy.score(i),
                        lazy.values(i).map(|v| v.to_value()).collect::<Vec<_>>(),
                    )
                })
                .collect()
        };
        db.set_wand(true);

        // execute: same rows, same order, bit-equal scores.
        assert_eq!(wand_exec.rows.len(), exhaustive_exec.rows.len(), "{sql}");
        for ((wr, ws), (er, es)) in wand_exec.rows.iter().zip(&exhaustive_exec.rows) {
            assert_eq!(wr, er, "{sql}");
            assert_eq!(ws.to_bits(), es.to_bits(), "{sql}");
        }
        // execute_lazy: identical through the borrowing path too.
        assert_eq!(wand_lazy_rows.len(), exhaustive_lazy_rows.len(), "{sql}");
        for ((ws, wr), (es, er)) in wand_lazy_rows.iter().zip(&exhaustive_lazy_rows) {
            assert_eq!(ws.to_bits(), es.to_bits(), "{sql}");
            assert_eq!(wr, er, "{sql}");
        }
        // And the lazy path agrees with the materializing one.
        assert_eq!(wand_exec.rows.len(), wand_lazy_rows.len(), "{sql}");
        for ((row, score), (lscore, lrow)) in wand_exec.rows.iter().zip(&wand_lazy_rows) {
            assert_eq!(score.to_bits(), lscore.to_bits(), "{sql}");
            assert_eq!(row, lrow, "{sql}");
        }
    }
}

#[test]
fn interpretations_match_with_wand_on_and_off() {
    let db = pipeline_db();
    let predicates = [
        "very clean comfortable room",
        "friendly helpful staff",
        "spotless bathroom",
        "quiet room great location",
    ];
    let with_wand: Vec<_> = predicates.iter().map(|p| db.interpret(p)).collect();
    db.set_wand(false); // also clears the interpretation memo
    let without: Vec<_> = predicates.iter().map(|p| db.interpret(p)).collect();
    db.set_wand(true);
    assert_eq!(
        with_wand, without,
        "bit-identical retrieval must produce identical interpretations"
    );
}
