//! Integration tests for the Subjective SQL dialect through the full stack.

use opinedb::core::{build, BuildConfig};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;
use opinedb::store::FuzzyAlgebra;

fn db() -> opinedb::core::OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 18,
            mean_reviews: 12,
            seed: 41,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 2,
                ..Default::default()
            },
            membership_tuples: 300,
            ..Default::default()
        },
    )
}

#[test]
fn disjunction_scores_at_least_each_disjunct() {
    let db = db();
    let and_out = db
        .query("select * from hotels where \"clean rooms\" and \"friendly staff\" limit 18")
        .unwrap();
    let or_out = db
        .query("select * from hotels where \"clean rooms\" or \"friendly staff\" limit 18")
        .unwrap();
    // Product t-norm: or-score >= and-score for the same entity.
    for (row, and_score) in &and_out.result.rows {
        let key = row[0].as_str().unwrap();
        if let Some((_, or_score)) = or_out
            .result
            .rows
            .iter()
            .find(|(r, _)| r[0].as_str() == Some(key))
        {
            assert!(
                or_score >= and_score,
                "{key}: or={or_score} and={and_score}"
            );
        }
    }
}

#[test]
fn negation_inverts_ranking() {
    let db = db();
    let pos = db
        .query("select * from hotels where \"quiet room\" limit 18")
        .unwrap();
    let neg = db
        .query("select * from hotels where not \"quiet room\" limit 18")
        .unwrap();
    let top_pos = pos.result.rows[0].0[0].as_str().unwrap().to_string();
    let top_neg = neg.result.rows[0].0[0].as_str().unwrap().to_string();
    assert_ne!(top_pos, top_neg, "negation should change the winner");
    // Scores complement: score_neg(e) = 1 - score_pos(e).
    for (row, s) in &pos.result.rows {
        let key = row[0].as_str().unwrap();
        if let Some((_, ns)) = neg
            .result
            .rows
            .iter()
            .find(|(r, _)| r[0].as_str() == Some(key))
        {
            assert!((ns + s - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn projection_and_order_by_work_with_subjective_where() {
    let db = db();
    let out = db
        .query(
            "select hotelname, price_pn from hotels where \"clean rooms\" \
             order by price_pn asc limit 6",
        )
        .unwrap();
    assert_eq!(out.result.columns, vec!["hotelname", "price_pn"]);
    for w in out.result.rows.windows(2) {
        assert!(w[0].0[1].as_f64().unwrap() <= w[1].0[1].as_f64().unwrap());
    }
}

#[test]
fn godel_algebra_scores_with_min() {
    let db = db();
    let product = db
        .query("select * from hotels where \"clean rooms\" and \"clean rooms\" limit 18")
        .unwrap();
    let godel = db
        .query_with_algebra(
            "select * from hotels where \"clean rooms\" and \"clean rooms\" limit 18",
            FuzzyAlgebra::Godel,
        )
        .unwrap();
    // x⊗x = x² under product but x under Gödel, so Gödel scores dominate.
    let g_top = godel.result.rows[0].1;
    let p_top = product.result.rows[0].1;
    assert!(g_top >= p_top);
}

#[test]
fn explicit_marker_conditions_execute() {
    let db = db();
    let out = db
        .query(
            "select * from hotels h where h.service .= \"exceptional\" \
             and h.bathroom_style .= \"luxurious\" limit 5",
        )
        .unwrap();
    assert!(!out.result.rows.is_empty());
    for (_, s) in &out.result.rows {
        assert!((0.0..=1.0).contains(s));
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let db = db();
    assert!(db.query("select * from missing_table").is_err());
    assert!(db.query("select nosuch from hotels").is_err());
    assert!(db.query("garbage !!").is_err());
    assert!(db
        .query("select * from hotels h where h.not_an_attribute .= \"x\"")
        .is_err());
}
