//! Chaos soak: the serving stack under active fault injection.
//!
//! Failpoints inside the engine (`pre_ta`, `mid_wand`, `summary_merge`)
//! and at the response boundary (`response_write`) inject delays and
//! panics while ≥8 concurrent clients hammer the full query mix. The
//! contract under fire:
//!
//! * every 200 body is byte-identical to fault-free reference execution
//!   (an injected fault may fail a request, never corrupt an answer);
//! * every failure is a well-formed taxonomy error (`internal`, `shed`,
//!   or `timeout`) or a clean connection close — nothing in between;
//! * no worker dies and no shared state is poisoned: with the faults
//!   cleared, the same server answers the whole mix correctly again.
//!
//! This test owns the process-global failpoint registry; it lives in
//! its own integration-test binary so nothing else races it.

use opinedb::core::{build, faults, BuildConfig};
use opinedb::server::{render_query_body, HttpClient, OpineServer, ServerConfig};
use opinedb::store::parse_select;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const SOAK_WINDOW: Duration = Duration::from_secs(2);
/// Keep soaking (in `SOAK_WINDOW` slices) until both fault counters are
/// provably nonzero, up to this cap.
const MAX_SOAK: Duration = Duration::from_secs(20);

const QUERIES: &[&str] = &[
    "select * from hotels where \"clean rooms\" limit 8",
    "select * from hotels where \"clean rooms\" and \"friendly staff\" limit 8",
    "select * from hotels where price_pn < 200 and \"clean rooms\" limit 8",
    "select * from hotels where \"clean rooms\" or \"quiet at night\" limit 8",
    "select hotelname, price_pn from hotels where price_pn < 250 order by price_pn asc limit 8",
];

fn query_body(sql: &str) -> String {
    format!("{{\"sql\": {}}}", opinedb::server::json::escaped(sql))
}

/// Panics unless `body` is `{"error":{"code":<allowed>,"message":…}}`.
fn assert_taxonomy_failure(status: u16, body: &str) {
    let parsed = opinedb::server::json::parse(body)
        .unwrap_or_else(|e| panic!("status {status} body must be valid JSON ({e}): {body}"));
    let error = parsed
        .get("error")
        .unwrap_or_else(|| panic!("status {status} body must be a taxonomy error: {body}"));
    let code = error
        .get("code")
        .and_then(|c| c.as_str())
        .unwrap_or_else(|| panic!("taxonomy error without a code: {body}"));
    let allowed: &[(&str, u16)] = &[("internal", 500), ("shed", 503), ("timeout", 504)];
    assert!(
        allowed.contains(&(code, status)),
        "unexpected failure class under chaos: {status} {body}"
    );
}

fn stat(stats_body: &str, section: &str, field: &str) -> f64 {
    opinedb::server::json::parse(stats_body)
        .unwrap_or_else(|e| panic!("/stats must stay valid JSON under chaos ({e})"))
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("/stats missing {section}.{field}: {stats_body}"))
}

#[test]
fn serving_survives_fault_injection_and_recovers() {
    // Injected panics are the *expected* signal here and they'd each
    // print a "thread panicked" line; silence just those, keep the
    // default hook for real failures (assertion panics included).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        if payload.downcast_ref::<faults::InjectedPanic>().is_none()
            && payload.downcast_ref::<faults::Cancelled>().is_none()
        {
            default_hook(info);
        }
    }));

    let corpus = opinedb::corpus::Corpus::generate(
        opinedb::corpus::hotel::hotel_spec(),
        &opinedb::corpus::CorpusConfig {
            num_entities: 24,
            mean_reviews: 12,
            seed: 47,
        },
    );
    let db = Arc::new(build(
        &corpus,
        &BuildConfig {
            w2v: opinedb::embed::Word2VecConfig {
                dim: 24,
                epochs: 2,
                ..Default::default()
            },
            membership_tuples: 400,
            ..Default::default()
        },
    ));

    // Fault-free reference bodies, computed through the library path
    // before any failpoint is armed.
    let references: HashMap<&str, String> = QUERIES
        .iter()
        .map(|&sql| {
            let select = parse_select(sql).expect("valid SQL");
            (sql, render_query_body(&db, &select).expect("reference"))
        })
        .collect();

    let server = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            max_in_flight: CLIENTS,
            // Uncached: a result-cache hit would bypass the engine and
            // its failpoints, soaking nothing.
            result_cache_capacity: 0,
            request_deadline: Some(Duration::from_secs(5)),
            ..Default::default()
        },
    )
    .expect("bind chaos server");
    let addr = server.local_addr();

    // Arm the failpoints: engine-site panics and delays plus
    // response-boundary errors (which `fire_panic` escalates to the
    // per-request catch). Probabilities are deliberately low at
    // `mid_wand` — it fires per pivot iteration.
    faults::configure(
        "pre_ta=panic@0.05,mid_wand=delay:2@0.01,summary_merge=error@0.04,response_write=error@0.02",
        0xC4A0_5EED,
    )
    .expect("valid chaos spec");

    let soak_started = Instant::now();
    let mut served_total = 0u64;
    let mut failed_total = 0u64;
    loop {
        let (served, failed) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let references = &references;
                    s.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        let mut served = 0u64;
                        let mut failed = 0u64;
                        let deadline = Instant::now() + SOAK_WINDOW;
                        let mut i = c;
                        while Instant::now() < deadline {
                            let sql = QUERIES[i % QUERIES.len()];
                            i += 1;
                            match client.post("/query", &query_body(sql)) {
                                Ok(resp) if resp.status == 200 => {
                                    assert_eq!(
                                        resp.body, references[sql],
                                        "chaos must never corrupt an answer ({sql})"
                                    );
                                    served += 1;
                                }
                                Ok(resp) => {
                                    assert_taxonomy_failure(resp.status, &resp.body);
                                    failed += 1;
                                    // Panic responses close the
                                    // connection; reconnect eagerly.
                                    if resp.status == 500 {
                                        client = HttpClient::connect(addr).expect("reconnect");
                                    }
                                }
                                Err(_) => {
                                    // Clean close (injected write error
                                    // or keep-alive budget): reconnect.
                                    client = HttpClient::connect(addr)
                                        .expect("server must keep accepting under fault injection");
                                }
                            }
                        }
                        (served, failed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0u64, 0u64), |(s_acc, f_acc), (s, f)| {
                    (s_acc + s, f_acc + f)
                })
        });
        served_total += served;
        failed_total += failed;

        let mut probe = HttpClient::connect(addr).expect("stats probe");
        let stats = probe.get("/stats").expect("stats under chaos");
        assert_eq!(stats.status, 200);
        let panics = stat(&stats.body, "server", "caught_panics");
        let injected = stat(&stats.body, "engine_caches", "faults_injected");
        if panics > 0.0 && injected > 0.0 {
            break;
        }
        assert!(
            soak_started.elapsed() < MAX_SOAK,
            "soaked {:?} without observing both caught_panics ({panics}) and \
             faults_injected ({injected}) — failpoints are not firing",
            soak_started.elapsed()
        );
    }
    assert!(served_total > 0, "chaos must not fail every request");
    assert!(
        failed_total > 0,
        "the armed failpoints must actually fail some requests \
         ({served_total} served); otherwise this soak proves nothing"
    );

    // Disarm and verify full recovery on the same server: no dead
    // workers, no poisoned lock, no stale partial state.
    faults::clear();
    let mut client = HttpClient::connect(addr).expect("post-chaos connect");
    for (sql, reference) in &references {
        let resp = client
            .post("/query", &query_body(sql))
            .expect("post-chaos request");
        assert_eq!(resp.status, 200, "post-chaos {sql}: {}", resp.body);
        assert_eq!(
            &resp.body, reference,
            "post-chaos answers must match fault-free execution ({sql})"
        );
    }
    let health = client.get("/healthz").expect("liveness");
    assert_eq!(health.status, 200);
    let ready = client.get("/readyz").expect("readiness");
    assert_eq!(ready.status, 200, "{}", ready.body);
}
