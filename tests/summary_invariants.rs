//! Property tests for marker-summary invariants through the public API.

use opinedb::core::summary::{AssignMode, Marker, MarkerSet, MarkerSummary, SummaryKind};
use proptest::prelude::*;

/// A small deterministic marker set over a `dim`-dimensional space, with
/// markers at the unit axes.
fn axis_markers(k: usize, dim: usize, kind: SummaryKind) -> MarkerSet {
    MarkerSet {
        attribute: "attr".into(),
        kind,
        markers: (0..k)
            .map(|i| {
                let mut rep = vec![0.0f32; dim];
                rep[i % dim] = 1.0;
                Marker {
                    phrase: format!("m{i}"),
                    rep,
                    sentiment: i as f64 / k as f64,
                }
            })
            .collect(),
    }
}

proptest! {
    /// Total mass equals the number of added phrases; matched + unmatched
    /// partition it; fractions sum to 1 when anything matched.
    #[test]
    fn mass_conservation(
        phrases in prop::collection::vec(
            (prop::collection::vec(-1.0f32..=1.0, 4), -1.0f64..=1.0), 1..30),
        mode in prop::sample::select(vec![AssignMode::Best, AssignMode::Proportional]),
    ) {
        let set = axis_markers(3, 4, SummaryKind::Linear);
        let mut summary = MarkerSummary::empty(3);
        for (i, (rep, senti)) in phrases.iter().enumerate() {
            summary.add_phrase("p", rep, *senti, &set, mode, 0.1, i);
        }
        prop_assert!((summary.total - phrases.len() as f64).abs() < 1e-9);
        let matched = summary.matched_mass();
        prop_assert!(matched <= summary.total + 1e-9);
        prop_assert!((matched + summary.unmatched - summary.total).abs() < 1e-6);
        prop_assert_eq!(summary.provenance.len(), phrases.len());
        if matched > 1e-9 {
            let frac_sum: f64 = summary.fractions().iter().sum();
            prop_assert!((frac_sum - 1.0).abs() < 1e-6, "fractions sum {frac_sum}");
        }
        prop_assert!((0.0..=1.0).contains(&summary.unmatched_fraction()));
    }

    /// Proportional assignment never concentrates more mass on a marker
    /// than best assignment does on its winner, and both conserve mass.
    #[test]
    fn assignment_mass_is_one(rep in prop::collection::vec(-1.0f32..=1.0, 4)) {
        for kind in [SummaryKind::Linear, SummaryKind::Categorical] {
            let set = axis_markers(4, 4, kind);
            for mode in [AssignMode::Best, AssignMode::Proportional] {
                let assigned = set.assign(&rep, mode);
                let mass: f64 = assigned.iter().map(|(_, w)| w).sum();
                prop_assert!((mass - 1.0).abs() < 1e-9);
                for (idx, w) in &assigned {
                    prop_assert!(*idx < set.markers.len());
                    prop_assert!(*w >= 0.0 && *w <= 1.0 + 1e-9);
                }
            }
        }
    }

    /// Incremental aggregation is order-insensitive — *bit-exactly* so,
    /// now that accumulators are fixed-point integers.
    #[test]
    fn histogram_is_order_insensitive(
        mut phrases in prop::collection::vec(
            (prop::collection::vec(-1.0f32..=1.0, 4), -1.0f64..=1.0), 2..15),
    ) {
        let set = axis_markers(3, 4, SummaryKind::Linear);
        let run = |ps: &[(Vec<f32>, f64)]| {
            let mut s = MarkerSummary::empty(3);
            for (i, (rep, senti)) in ps.iter().enumerate() {
                s.add_phrase("p", rep, *senti, &set, AssignMode::Best, 0.1, i);
            }
            s
        };
        let forward = run(&phrases);
        phrases.reverse();
        let backward = run(&phrases);
        prop_assert!(forward.same_aggregates(&backward));
        for (a, b) in forward.counts().iter().zip(&backward.counts()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert!((forward.unmatched - backward.unmatched).abs() < 1e-9);
    }

    /// The tentpole property: building partial summaries over any
    /// partition of the phrases and merging them — in any order — is
    /// bit-identical to the from-scratch build over all phrases.
    /// Fixed-point accumulation makes merge exactly associative and
    /// commutative, which is what lets the engine answer review-
    /// qualified queries by merging per-bucket partials instead of
    /// re-aggregating raw occurrences.
    #[test]
    fn merge_of_partition_is_bit_identical_to_from_scratch(
        phrases in prop::collection::vec(
            (prop::collection::vec(-1.0f32..=1.0, 4), -1.0f64..=1.0), 1..24),
        assignment in prop::collection::vec(0usize..4, 24),
        mode in prop::sample::select(vec![AssignMode::Best, AssignMode::Proportional]),
        merge_backwards in prop::sample::select(vec![false, true]),
    ) {
        let set = axis_markers(3, 4, SummaryKind::Linear);
        // From-scratch build over every phrase, in order.
        let mut whole = MarkerSummary::empty(3);
        for (i, (rep, senti)) in phrases.iter().enumerate() {
            whole.add_phrase("p", rep, *senti, &set, mode, 0.1, i);
        }
        // Partition phrases into up to 4 parts by the random assignment
        // and build each part independently.
        let mut parts: Vec<MarkerSummary> = (0..4).map(|_| MarkerSummary::empty(3)).collect();
        for (i, (rep, senti)) in phrases.iter().enumerate() {
            parts[assignment[i]].add_phrase("p", rep, *senti, &set, mode, 0.1, i);
        }
        let mut merged = MarkerSummary::empty(3);
        if merge_backwards {
            for p in parts.iter().rev() {
                merged.merge(p);
            }
        } else {
            for p in &parts {
                merged.merge(p);
            }
        }
        prop_assert!(merged.same_aggregates(&whole),
            "merged {:?}/{:?} vs whole {:?}/{:?}",
            merged.counts(), merged.total, whole.counts(), whole.total);
        for i in 0..3 {
            prop_assert_eq!(merged.count(i).to_bits(), whole.count(i).to_bits());
            prop_assert_eq!(
                merged.sentiment_mean(i).to_bits(),
                whole.sentiment_mean(i).to_bits()
            );
        }
        prop_assert_eq!(merged.matched_mass().to_bits(), whole.matched_mass().to_bits());
        prop_assert_eq!(merged.provenance.len(), whole.provenance.len());
    }
}
