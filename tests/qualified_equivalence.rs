//! Review-qualifier equivalence properties through the full stack.
//!
//! Three evaluation routes must agree *bit-for-bit* on every degree:
//!
//! 1. **bucket merge** — `OpineDb::summaries_qualified`, merging the
//!    build-time `(year, reviewer-degree bucket)` partial summaries
//!    (with straddle refinement for thresholds that cut a bucket);
//! 2. **raw rescan** — `OpineDb::summaries_with_review_filter` over the
//!    qualifier's reference closure (`ReviewQualifier::accepts`);
//! 3. **trivial qualifier** — `with reviews()` over all reviews, which
//!    must reproduce the unqualified build-time summaries and the
//!    unqualified query answers.
//!
//! Routes 1 and 2 are exercised both at the summary level and through
//! `execute` / `execute_lazy` (the SQL surface).

use opinedb::core::{build, BuildConfig, OpineDb};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;
use opinedb::store::{execute, execute_lazy, parse_select, ReviewQualifier, Value};
use proptest::prelude::*;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn qualified_db() -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: env_usize("OPINE_TEST_ENTITIES", 20),
            mean_reviews: env_usize("OPINE_TEST_REVIEWS", 14),
            seed: 71,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 2,
                ..Default::default()
            },
            membership_tuples: 300,
            ..Default::default()
        },
    )
}

fn db() -> &'static OpineDb {
    use std::sync::OnceLock;
    static DB: OnceLock<OpineDb> = OnceLock::new();
    DB.get_or_init(qualified_db)
}

/// Degrees of one predicate for all entities over a summary set.
fn degrees(db: &OpineDb, summaries: &[Vec<opinedb::core::MarkerSummary>]) -> Vec<f64> {
    (0..db.num_entities())
        .map(|e| db.attribute_degree_with_summaries(summaries, e, 0, "clean rooms"))
        .collect()
}

proptest! {
    /// Bucket-merged and raw-rescanned summaries agree bit-for-bit for
    /// arbitrary year ranges and degree thresholds (including
    /// non-power-of-two thresholds, which cut through a log2 bucket and
    /// exercise the straddle refinement).
    #[test]
    fn bucket_merge_equals_raw_rescan(
        min_year in 2004u32..2021,
        span in 0u32..16,
        min_count in 1u32..12,
        use_count in prop::sample::select(vec![false, true]),
    ) {
        let db = db();
        let q = ReviewQualifier {
            min_year: Some(min_year),
            max_year: Some(min_year + span),
            min_reviewer_count: use_count.then_some(min_count),
        };
        let merged = db.summaries_qualified(&q);
        let rebuilt = db.summaries_with_review_filter(|m| {
            q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
        });
        for e in 0..db.num_entities() {
            for a in 0..db.attributes.len() {
                prop_assert!(
                    merged[e][a].same_aggregates(&rebuilt[e][a]),
                    "{q} entity {e} attr {a}"
                );
            }
        }
        let d_merged = degrees(db, &merged);
        let d_rebuilt = degrees(db, &rebuilt);
        for (a, b) in d_merged.iter().zip(&d_rebuilt) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn trivial_qualifier_is_bit_identical_to_unqualified_execution() {
    let db = db();
    let plain = parse_select("select * from hotels where \"clean rooms\" limit 20").unwrap();
    let trivial =
        parse_select("select * from hotels where \"clean rooms\" with reviews() limit 20").unwrap();

    let base = execute(&plain, db.catalog(), db).unwrap();
    let qualified = execute(&trivial, db.catalog(), db).unwrap();
    assert_eq!(base.rows.len(), qualified.rows.len());
    for (a, b) in base.rows.iter().zip(&qualified.rows) {
        assert_eq!(a.0, b.0, "same rows in the same order");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "bit-identical scores");
    }
}

#[test]
fn execute_and_execute_lazy_agree_on_qualified_statements() {
    let db = db();
    for sql in [
        "select * from hotels where \"clean rooms\" with reviews(year >= 2012) limit 20",
        "select hotelname from hotels where \"clean rooms\" \
         with reviews(year >= 2008, year <= 2016, reviewer_min_count >= 3) limit 10",
        "select * from hotels where price_pn < 260 and \"clean rooms\" \
         with reviews(reviewer_min_count >= 2) limit 20",
        "select * from hotels where \"clean rooms\" with reviews() limit 20",
    ] {
        let q = parse_select(sql).unwrap();
        let materialized = execute(&q, db.catalog(), db).unwrap();
        let lazy = execute_lazy(&q, db.catalog(), db).unwrap();
        assert_eq!(lazy.len(), materialized.rows.len(), "{sql}");
        for (i, (row, score)) in materialized.rows.iter().enumerate() {
            assert_eq!(
                lazy.score(i).to_bits(),
                score.to_bits(),
                "{sql}: bit-identical scores"
            );
            let borrowed: Vec<Value> = lazy.values(i).map(|v| v.to_value()).collect();
            assert_eq!(&borrowed, row, "{sql}");
        }
    }
}

#[test]
fn qualified_execution_matches_rebuild_reference_scores() {
    let db = db();
    let q = ReviewQualifier {
        min_year: Some(2011),
        max_year: None,
        min_reviewer_count: Some(3),
    };
    let out = execute(
        &parse_select(
            "select * from hotels where \"clean rooms\" \
             with reviews(year >= 2011, reviewer_min_count >= 3) limit 20",
        )
        .unwrap(),
        db.catalog(),
        db,
    )
    .unwrap();
    let rebuilt = db.summaries_with_review_filter(|m| {
        q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
    });
    for (row, score) in &out.rows {
        let entity = db.entity_id(row[0].as_str().unwrap()).unwrap();
        let reference = db.attribute_degree_with_summaries(&rebuilt, entity, 0, "clean rooms");
        assert_eq!(
            score.to_bits(),
            reference.to_bits(),
            "entity {entity}: SQL path vs rebuild reference"
        );
    }
}
