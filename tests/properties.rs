//! Property-based tests over core invariants (proptest).

use opinedb::core::topk::{full_scan_topk, threshold_topk};
use opinedb::store::parser::parse_select;
use opinedb::store::FuzzyAlgebra;
use proptest::prelude::*;

proptest! {
    /// The parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_select(&input);
    }

    /// Valid skeleton queries with arbitrary predicate text round-trip.
    #[test]
    fn quoted_predicates_roundtrip(pred in "[a-z ]{1,40}") {
        let sql = format!("select * from t where \"{pred}\"");
        let q = parse_select(&sql).unwrap();
        let w = q.where_clause.unwrap();
        prop_assert_eq!(w.subjective_predicates(), vec![pred.as_str()]);
    }

    /// T-norm laws hold for both algebras on arbitrary degrees.
    #[test]
    fn tnorm_laws(x in 0.0f64..=1.0, y in 0.0f64..=1.0, z in 0.0f64..=1.0) {
        for alg in [FuzzyAlgebra::Product, FuzzyAlgebra::Godel] {
            // Commutativity.
            prop_assert!((alg.and(x, y) - alg.and(y, x)).abs() < 1e-12);
            prop_assert!((alg.or(x, y) - alg.or(y, x)).abs() < 1e-12);
            // Boundary conditions.
            prop_assert!((alg.and(x, 1.0) - x).abs() < 1e-12);
            prop_assert!(alg.and(x, 0.0).abs() < 1e-12);
            prop_assert!((alg.or(x, 0.0) - x).abs() < 1e-12);
            // Monotonicity in the first argument.
            if x <= z {
                prop_assert!(alg.and(x, y) <= alg.and(z, y) + 1e-12);
                prop_assert!(alg.or(x, y) <= alg.or(z, y) + 1e-12);
            }
            // Range.
            prop_assert!((0.0..=1.0).contains(&alg.and(x, y)));
            prop_assert!((0.0..=1.0).contains(&alg.or(x, y)));
            // De Morgan.
            let lhs = alg.not(alg.and(x, y));
            let rhs = alg.or(alg.not(x), alg.not(y));
            prop_assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    /// Fagin's TA returns exactly the full-scan top-k — entities, scores,
    /// and order (the ranking total order is deterministic).
    #[test]
    fn threshold_algorithm_equals_full_scan(
        degrees in prop::collection::vec(
            (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0), 1..40),
        k in 1usize..8,
    ) {
        let lists: Vec<Vec<(usize, f64)>> = (0..3)
            .map(|dim| {
                let mut l: Vec<(usize, f64)> = degrees
                    .iter()
                    .enumerate()
                    .map(|(e, d)| (e, [d.0, d.1, d.2][dim]))
                    .collect();
                l.sort_by(|a, b| b.1.total_cmp(&a.1));
                l
            })
            .collect();
        let ta = threshold_topk(&lists, k);
        let fs = full_scan_topk(&lists, k);
        prop_assert_eq!(&ta, &fs);
        // Result is sorted descending.
        for w in ta.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// The list-based and densified TA entry points both reproduce the
    /// naive full-scan product-combine sort *exactly*, ties included:
    /// degrees are quantized to force score collisions, and every entry
    /// point must break them the same way (entity id ascending).
    #[test]
    fn ta_entry_points_agree_with_naive_under_ties(
        degrees in prop::collection::vec((0u32..5, 0u32..5, 0u32..5), 1..60),
        k in 1usize..10,
    ) {
        use opinedb::core::topk::{densify, full_scan_topk_dense, threshold_topk_dense};
        let lists: Vec<Vec<(usize, f64)>> = (0..3)
            .map(|dim| {
                let mut l: Vec<(usize, f64)> = degrees
                    .iter()
                    .enumerate()
                    .map(|(e, d)| (e, f64::from([d.0, d.1, d.2][dim]) / 4.0))
                    .collect();
                l.sort_by(|a, b| b.1.total_cmp(&a.1));
                l
            })
            .collect();
        // Naive reference: combine every entity, sort by (score desc,
        // entity asc), truncate.
        let mut naive: Vec<(usize, f64)> = (0..degrees.len())
            .map(|e| {
                let product: f64 = lists
                    .iter()
                    .map(|l| l.iter().find(|&&(le, _)| le == e).unwrap().1)
                    .product();
                (e, product)
            })
            .collect();
        naive.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        naive.truncate(k);

        let legacy = threshold_topk(&lists, k);
        let (columns, sorted) = densify(&lists);
        let dense = threshold_topk_dense(&columns, &sorted, k);
        let dense_scan = full_scan_topk_dense(&columns, k);
        prop_assert_eq!(&legacy, &naive);
        prop_assert_eq!(&dense, &naive);
        prop_assert_eq!(&dense_scan, &naive);
    }

    /// BM25 search scores are non-negative and sorted.
    #[test]
    fn bm25_scores_sane(docs in prop::collection::vec("[a-c ]{1,30}", 1..12),
                        query in "[a-c ]{1,10}") {
        let mut vocab = opinedb::text::Vocab::new();
        let mut index = opinedb::ir::InvertedIndex::new();
        for d in &docs {
            index.add_document(d, &mut vocab);
        }
        let hits = index.search(&query, 10, &vocab, &opinedb::ir::Bm25Params::default());
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score >= 0.0);
        }
    }

    /// Tokenization never produces empty tokens and always lowercases.
    #[test]
    fn tokenizer_invariants(text in ".{0,120}") {
        for tok in opinedb::text::tokenize_keep_stops(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// Sentiment scores are always within [-1, 1].
    #[test]
    fn sentiment_bounded(text in ".{0,120}") {
        let s = opinedb::sentiment::SentimentAnalyzer::new();
        let v = s.score(&text);
        prop_assert!((-1.0..=1.0).contains(&v));
    }
}
