//! Trace-correctness: the span trees an armed `TraceContext` collects
//! must be *bit-consistent* with the engine's own `CacheReport`
//! counters — same fast-path attribution, same cache traffic, same
//! block-skipping totals — over the three flagship query shapes
//! (pushdown mixed, review-qualified, WAND concept retrieval).

use opinedb::core::trace;
use opinedb::core::{build, BuildConfig, InterpreterConfig, OpineDb};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;

fn small_db() -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 20,
            mean_reviews: 10,
            seed: 33,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 16,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 300,
            ..Default::default()
        },
    )
}

/// Runs one statement under a fresh armed trace and returns the
/// snapshot plus the `CacheReport`s bracketing the execution.
fn traced_query(
    db: &OpineDb,
    sql: &str,
) -> (
    trace::TraceSnapshot,
    opinedb::core::CacheReport,
    opinedb::core::CacheReport,
    usize,
) {
    let before = db.cache_report();
    let ctx = trace::TraceContext::new();
    let out = trace::with_trace(Some(ctx.clone()), || db.query(sql)).expect("query runs");
    let after = db.cache_report();
    (ctx.snapshot(), before, after, out.result.rows.len())
}

#[test]
fn mixed_pushdown_span_tree_matches_cache_report_deltas() {
    let db = small_db();
    let sql = "select * from hotels where price_pn < 200 and \"clean rooms\" limit 10";
    let (snap, before, after, rows) = traced_query(&db, sql);

    // The tree names the prefilter then the TA stage, in pipeline order.
    let names: Vec<&str> = snap.stages.iter().map(|s| s.name).collect();
    let prefilter = names
        .iter()
        .position(|&n| n == "prefilter_bitmap")
        .unwrap_or_else(|| panic!("no prefilter_bitmap in {names:?}"));
    let ta = names
        .iter()
        .position(|&n| n == "ta_topk")
        .unwrap_or_else(|| panic!("no ta_topk in {names:?}"));
    assert!(prefilter < ta, "prefilter must precede TA: {names:?}");

    // The candidate bitmap was non-trivial and bounded by the catalog.
    let candidates = snap
        .stage("prefilter_bitmap")
        .unwrap()
        .counter("candidates");
    assert!(candidates > 0 && candidates <= db.num_entities() as u64);

    // Stage counters agree exactly with the engine's own counters.
    let ta_stage = snap.stage("ta_topk").unwrap();
    assert_eq!(ta_stage.calls, after.ta_queries - before.ta_queries);
    assert_eq!(after.pushdown_queries - before.pushdown_queries, 1);
    assert_eq!(
        ta_stage.counter("cache_misses"),
        after.columns.misses - before.columns.misses,
        "degree-column cache misses attributed to the TA stage must \
         equal the CacheReport delta"
    );
    assert_eq!(
        ta_stage.counter("cache_hits"),
        after.columns.hits - before.columns.hits
    );
    assert_eq!(ta_stage.counter("scored"), rows as u64);

    // The plan notes say the pushdown fired.
    assert!(
        snap.notes.iter().any(|n| n.contains("pushdown")),
        "notes: {:?}",
        snap.notes
    );

    // A second identical run flips the degree-column traffic to hits —
    // and the trace tracks the flip.
    let (snap2, before2, after2, _) = traced_query(&db, sql);
    let ta2 = snap2.stage("ta_topk").unwrap();
    assert_eq!(ta2.counter("cache_misses"), 0);
    assert_eq!(
        ta2.counter("cache_hits"),
        after2.columns.hits - before2.columns.hits
    );
    assert!(ta2.counter("cache_hits") > 0);
}

#[test]
fn review_qualified_query_shows_summary_merge() {
    let db = small_db();
    let sql = "select * from hotels where \"clean rooms\" \
               with reviews(year >= 2012) limit 10";
    let (snap, before, after, _) = traced_query(&db, sql);

    let merge = snap
        .stage("summary_merge")
        .unwrap_or_else(|| panic!("no summary_merge stage in {:?}", snap.stages));
    assert!(merge.calls >= 1, "cold qualifier merges summaries");
    assert_eq!(
        merge.counter("cache_misses"),
        after.filtered_summaries.misses - before.filtered_summaries.misses
    );
    assert_eq!(
        after.filtered_summary_queries - before.filtered_summary_queries,
        1
    );

    // Warm rerun: the merged set is served from the filtered cache and
    // the trace records the hit instead of a merge call.
    let (snap2, before2, after2, _) = traced_query(&db, sql);
    let merge2 = snap2.stage("summary_merge").expect("hit still attributed");
    assert_eq!(merge2.calls, 0, "no re-merge on a warm qualifier");
    assert_eq!(
        merge2.counter("cache_hits"),
        after2.filtered_summaries.hits - before2.filtered_summaries.hits
    );
    assert!(merge2.counter("cache_hits") > 0);
}

#[test]
fn wand_cold_query_blocks_skipped_matches_stats_delta() {
    // The wand_equivalence fixture shape: stage 1 can never trigger
    // (theta1 > 1), so every cold interpretation runs the co-occurrence
    // retrieval through Block-Max WAND on a review-heavy corpus.
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 24,
            mean_reviews: 40,
            seed: 31,
        },
    );
    let db = build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 300,
            interpreter: InterpreterConfig {
                theta1: 1.01,
                top_k_reviews: 5,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let sql = "select * from hotels where \"very clean comfortable room\" limit 8";
    let (snap, before, after, _) = traced_query(&db, sql);

    let wand = snap
        .stage("wand_retrieval")
        .unwrap_or_else(|| panic!("no wand_retrieval stage in {:?}", snap.stages));
    assert_eq!(wand.calls, after.wand_queries - before.wand_queries);
    assert!(wand.calls > 0, "cold interpretation routes through WAND");
    assert_eq!(
        wand.counter("blocks_skipped"),
        after.blocks_skipped - before.blocks_skipped,
        "span counter must equal the /stats counter delta exactly"
    );
    assert!(
        wand.counter("blocks_skipped") > 0,
        "block-max bounds must skip blocks on a review-heavy corpus"
    );
}
