//! Mixed objective+subjective queries must return **byte-identical**
//! results whether they ride the objective-predicate pushdown into the
//! threshold-algorithm fast path or the naive row-at-a-time scoring
//! loop — same rows, same order, bit-equal `f64` scores — through both
//! `execute` and `execute_lazy`.

use opinedb::core::topk::{threshold_topk_dense, threshold_topk_dense_filtered};
use opinedb::store::ast::ColumnRef;
use opinedb::store::exec::SubjectiveScorer;
use opinedb::store::parser::parse_select;
use opinedb::store::{
    execute, execute_lazy, Bitmap, Catalog, Column, ColumnType, Schema, StoreError, Value,
};
use proptest::prelude::*;
use std::cell::Cell;

/// A scorer over synthetic degree columns that implements the same
/// ranking contract as `OpineDb`: dense columns per predicate, sorted
/// orders, candidate-filtered TA. Row order equals entity id (the
/// catalog below is inserted in id order), so the executor's row-indexed
/// candidate bitmaps apply to entities directly.
struct SyntheticIndex {
    /// `degrees[p][e]` for predicate name `p{p}`.
    degrees: Vec<Vec<f64>>,
    sorted: Vec<Vec<u32>>,
    keys: Vec<String>,
    /// When false the scorer has "no index": the executor falls back to
    /// row-at-a-time scoring of the candidates.
    use_index: bool,
    pushdowns: Cell<u32>,
}

impl SyntheticIndex {
    fn new(degrees: Vec<Vec<f64>>, keys: Vec<String>, use_index: bool) -> Self {
        let sorted = degrees
            .iter()
            .map(|col| {
                let mut order: Vec<u32> = (0..col.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    col[b as usize]
                        .total_cmp(&col[a as usize])
                        .then_with(|| a.cmp(&b))
                });
                order
            })
            .collect();
        SyntheticIndex {
            degrees,
            sorted,
            keys,
            use_index,
            pushdowns: Cell::new(0),
        }
    }

    fn predicate_index(&self, predicate: &str) -> Option<usize> {
        predicate.strip_prefix('p').and_then(|n| n.parse().ok())
    }

    fn entity(&self, key: &Value) -> Option<usize> {
        let name = key.as_str()?;
        self.keys.iter().position(|k| k == name)
    }
}

impl SubjectiveScorer for SyntheticIndex {
    fn degree_predicate(&self, predicate: &str, key: &Value) -> Result<f64, StoreError> {
        let p = self
            .predicate_index(predicate)
            .ok_or_else(|| StoreError::NoScorer(predicate.to_string()))?;
        let e = self
            .entity(key)
            .ok_or_else(|| StoreError::Execution(format!("unknown key {key}")))?;
        Ok(self.degrees[p][e])
    }

    fn degree_match(
        &self,
        attribute: &ColumnRef,
        _phrase: &str,
        _key: &Value,
    ) -> Result<f64, StoreError> {
        Err(StoreError::NoScorer(attribute.column.clone()))
    }

    fn rank_subjective_conjunction(
        &self,
        predicates: &[&str],
        k: usize,
        candidates: Option<&Bitmap>,
    ) -> Option<Vec<(Value, f64)>> {
        if !self.use_index {
            return None;
        }
        let columns: Vec<&[f64]> = predicates
            .iter()
            .map(|p| self.predicate_index(p).map(|i| self.degrees[i].as_slice()))
            .collect::<Option<Vec<_>>>()?;
        let orders: Vec<&[u32]> = predicates
            .iter()
            .map(|p| self.predicate_index(p).map(|i| self.sorted[i].as_slice()))
            .collect::<Option<Vec<_>>>()?;
        let ranked = match candidates {
            Some(bitmap) => {
                self.pushdowns.set(self.pushdowns.get() + 1);
                threshold_topk_dense_filtered(&columns, &orders, k, |e| bitmap.get(e))
            }
            None => threshold_topk_dense(&columns, &orders, k),
        };
        Some(
            ranked
                .into_iter()
                .map(|(e, score)| (Value::text(&self.keys[e]), score))
                .collect(),
        )
    }
}

/// Builds the catalog: one table `t(name, price)` with rows in entity-id
/// order.
fn catalog(prices: &[f64]) -> (Catalog, Vec<String>) {
    let mut cat = Catalog::new();
    cat.create_table(Schema::new(
        "t",
        vec![
            Column::new("name", ColumnType::Text),
            Column::new("price", ColumnType::Float),
        ],
        0,
    ))
    .unwrap();
    let keys: Vec<String> = (0..prices.len()).map(|e| format!("e{e}")).collect();
    for (key, &price) in keys.iter().zip(prices) {
        cat.insert("t", vec![Value::text(key), Value::Float(price)])
            .unwrap();
    }
    (cat, keys)
}

proptest! {
    /// The pushdown TA path and the naive row-at-a-time path agree
    /// exactly on random catalogs and random mixed WHERE clauses —
    /// degrees and prices are quantized so score ties are common and
    /// the deterministic tiebreak is genuinely exercised.
    #[test]
    fn pushdown_ta_equals_row_at_a_time(
        rows in prop::collection::vec((0u32..8, 0u32..5, 0u32..5), 1..40),
        threshold in 0u32..9,
        predicates in 1usize..3,
        limit in 0usize..14,
    ) {
        let prices: Vec<f64> = rows.iter().map(|r| f64::from(r.0) * 25.0).collect();
        let degrees: Vec<Vec<f64>> = (0..predicates)
            .map(|p| {
                rows.iter()
                    .map(|r| f64::from([r.1, r.2][p % 2]) / 4.0)
                    .collect()
            })
            .collect();
        let (cat, keys) = catalog(&prices);

        // Interleave the objective conjunct between subjective ones so
        // conjunct collection (not just prefix splitting) is tested.
        let subjective: Vec<String> = (0..predicates).map(|p| format!("\"p{p}\"")).collect();
        let mut where_parts = subjective.clone();
        where_parts.insert(predicates / 2, format!("price < {}", f64::from(threshold) * 25.0));
        let mut sql = format!("select * from t where {}", where_parts.join(" and "));
        if limit > 0 {
            sql += &format!(" limit {limit}");
        }
        let query = parse_select(&sql).unwrap();

        let indexed = SyntheticIndex::new(degrees.clone(), keys.clone(), true);
        let naive = SyntheticIndex::new(degrees, keys, false);

        let fast = execute(&query, &cat, &indexed).unwrap();
        let slow = execute(&query, &cat, &naive).unwrap();
        prop_assert!(indexed.pushdowns.get() == 1, "pushdown must fire for {}", sql);
        prop_assert_eq!(naive.pushdowns.get(), 0);

        prop_assert!(fast.rows.len() == slow.rows.len(), "{}", sql);
        for (i, ((frow, fscore), (srow, sscore))) in
            fast.rows.iter().zip(&slow.rows).enumerate()
        {
            prop_assert!(frow == srow, "row {} of {}", i, sql);
            prop_assert!(
                fscore.to_bits() == sscore.to_bits(),
                "score {} must be bit-identical ({} vs {}) in {}",
                i, fscore, sscore, sql
            );
        }

        // The borrowing path agrees with the materializing path on both
        // scorers.
        for (scorer, reference) in [(&indexed, &fast), (&naive, &slow)] {
            let lazy = execute_lazy(&query, &cat, scorer).unwrap();
            prop_assert_eq!(lazy.len(), reference.rows.len());
            for (i, (row, score)) in reference.rows.iter().enumerate() {
                prop_assert_eq!(lazy.score(i).to_bits(), score.to_bits());
                let vals: Vec<Value> = lazy.values(i).map(|v| v.to_value()).collect();
                prop_assert_eq!(&vals, row);
            }
        }
    }
}

/// End-to-end: the same equivalence through a real `OpineDb` — pushdown
/// on vs pushdown off vs degree caches off — over the paper's
/// running-example shape at several selectivities.
#[test]
fn opinedb_pushdown_matches_naive_end_to_end() {
    use opinedb::core::{build, BuildConfig};
    use opinedb::corpus::hotel::hotel_spec;
    use opinedb::corpus::{Corpus, CorpusConfig};

    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 20,
            mean_reviews: 10,
            seed: 33,
        },
    );
    let db = build(
        &corpus,
        &BuildConfig {
            w2v: opinedb::embed::Word2VecConfig {
                dim: 16,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 300,
            ..Default::default()
        },
    );

    let queries = [
        "select * from hotels where price_pn < 80 and \"clean rooms\" limit 10",
        "select * from hotels where price_pn < 200 and \"clean rooms\" limit 10",
        "select * from hotels where price_pn < 10000 and \"clean rooms\" and \"friendly staff\"",
        "select hotelname from hotels where price_pn < 150 and \"clean rooms\"",
    ];
    for sql in queries {
        let fast = db.query(sql).expect("pushdown query");
        db.set_objective_pushdown(false);
        let row_at_a_time = db.query(sql).expect("row-at-a-time query");
        db.set_objective_pushdown(true);
        db.set_degree_cache(false);
        let uncached = db.query(sql).expect("uncached query");
        db.set_degree_cache(true);

        for (label, reference) in [("pushdown-off", &row_at_a_time), ("cache-off", &uncached)] {
            assert_eq!(
                fast.result.rows.len(),
                reference.result.rows.len(),
                "{label}: {sql}"
            );
            for (a, b) in fast.result.rows.iter().zip(&reference.result.rows) {
                assert_eq!(a.0, b.0, "{label}: {sql}");
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "{label}: scores must be bit-identical ({} vs {}) in {sql}",
                    a.1,
                    b.1
                );
            }
        }
    }
    assert!(
        db.cache_report().pushdown_queries >= queries.len() as u64,
        "every mixed query must take the pushdown path"
    );
}
