//! Cross-crate integration tests: corpus → build → Subjective SQL.

use opinedb::core::{build, BuildConfig, Interpretation};
use opinedb::corpus::hotel::hotel_spec;
use opinedb::corpus::restaurant::restaurant_spec;
use opinedb::corpus::{Corpus, CorpusConfig};
use opinedb::embed::Word2VecConfig;

fn fast_config() -> BuildConfig {
    BuildConfig {
        w2v: Word2VecConfig {
            dim: 24,
            epochs: 2,
            ..Default::default()
        },
        membership_tuples: 400,
        ..Default::default()
    }
}

/// Corpus scale for the generated-corpus tests: CI-fast defaults, with
/// env overrides (`OPINE_TEST_ENTITIES`, `OPINE_TEST_REVIEWS`) for
/// larger local soak runs.
fn test_scale(default_entities: usize, default_reviews: usize) -> (usize, usize) {
    let env_usize = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    (
        env_usize("OPINE_TEST_ENTITIES", default_entities),
        env_usize("OPINE_TEST_REVIEWS", default_reviews),
    )
}

fn hotel_db() -> (Corpus, opinedb::core::OpineDb) {
    let (num_entities, mean_reviews) = test_scale(24, 16);
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities,
            mean_reviews,
            seed: 31,
        },
    );
    let db = build(&corpus, &fast_config());
    (corpus, db)
}

#[test]
fn hotel_pipeline_answers_the_running_example() {
    let (_, db) = hotel_db();
    let out = db
        .query(
            "select * from hotels where price_pn < 400 and \
             \"has really clean rooms\" and \"is a romantic getaway\" limit 10",
        )
        .expect("query runs");
    assert!(!out.result.rows.is_empty());
    assert_eq!(out.interpretations.len(), 2);
    // Scores are sorted descending and within [0, 1].
    for w in out.result.rows.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    for (_, s) in &out.result.rows {
        assert!((0.0..=1.0).contains(s));
    }
}

#[test]
fn restaurant_pipeline_works_end_to_end() {
    let (num_entities, mean_reviews) = test_scale(20, 12);
    let corpus = Corpus::generate(
        restaurant_spec(),
        &CorpusConfig {
            num_entities,
            mean_reviews,
            seed: 33,
        },
    );
    let db = build(&corpus, &fast_config());
    let out = db
        .query(
            "select * from restaurants where cuisine = 'Japanese' and \"delicious food\" limit 5",
        )
        .expect("query runs");
    for (row, _) in &out.result.rows {
        assert_eq!(row[3].to_string(), "Japanese");
    }
}

#[test]
fn ranking_tracks_latent_ground_truth() {
    let (corpus, db) = hotel_db();
    let out = db
        .query("select * from hotels where \"friendly staff\" limit 24")
        .unwrap();
    let staff_idx = opinedb::corpus::hotel::aspect::STAFF;
    let n = out.result.rows.len();
    assert!(n >= 12, "most entities should score > 0");
    let theta_of = |rows: &[(Vec<opinedb::store::Value>, f64)]| -> f64 {
        rows.iter()
            .map(|(r, _)| {
                let id = db.entity_id(r[0].as_str().unwrap()).unwrap();
                corpus.entities[id].quality[staff_idx]
            })
            .sum::<f64>()
            / rows.len() as f64
    };
    let top = theta_of(&out.result.rows[..n / 3]);
    let bottom = theta_of(&out.result.rows[n - n / 3..]);
    assert!(top > bottom, "top θ {top} vs bottom θ {bottom}");
}

#[test]
fn fallback_predicate_still_returns_results() {
    let (_, db) = hotel_db();
    // A phrase with no corpus vocabulary at all must reach stage 3.
    assert_eq!(
        db.interpret("zorbing kayak paddock"),
        Interpretation::TextFallback
    );
    // A rare concept like "good for motorcyclists" may interpret directly
    // (its words legitimately embed near amenity vocabulary) or fall back;
    // either way the query must run and produce bounded degrees.
    let out = db
        .query("select * from hotels where \"good for motorcyclists\" limit 5")
        .unwrap();
    for (_, s) in &out.result.rows {
        assert!((0.0..=1.0).contains(s));
    }
    // The text-retrieval degree itself is always available and bounded.
    for e in 0..db.num_entities() {
        let d = db.text_degree(e, "good for motorcyclists");
        assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn review_qualified_summaries_change_degrees() {
    let (_, db) = hotel_db();
    let full = db.summaries_with_review_filter(|_| true);
    let recent = db.summaries_with_review_filter(|m| m.year > 2014);
    let mut changed = 0;
    for e in 0..db.num_entities() {
        let a = db.attribute_degree_with_summaries(&full, e, 0, "very clean");
        let b = db.attribute_degree_with_summaries(&recent, e, 0, "very clean");
        if (a - b).abs() > 1e-6 {
            changed += 1;
        }
    }
    assert!(changed > 0, "filtering reviews must change some degrees");
}

#[test]
fn marker_match_and_predicate_agree_on_direction() {
    let (corpus, db) = hotel_db();
    // h.room_cleanliness .= "very clean" should rank the cleanest hotel
    // above the dirtiest.
    let best = corpus
        .entities
        .iter()
        .max_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
        .unwrap()
        .id;
    let worst = corpus
        .entities
        .iter()
        .min_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
        .unwrap()
        .id;
    let d_best = db.attribute_degree(best, 0, "very clean");
    let d_worst = db.attribute_degree(worst, 0, "very clean");
    if corpus.entities[best].quality[0] - corpus.entities[worst].quality[0] > 0.5 {
        assert!(
            d_best > d_worst,
            "clean hotel {d_best} vs dirty hotel {d_worst}"
        );
    }
}
