//! Offline shim for the subset of `criterion` this workspace's benches
//! use: `Criterion`, `benchmark_group`/`bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a wall-clock warmup sizes the per-sample iteration
//! count, then `sample_size` timed samples are collected and summarized as
//! mean ± standard deviation per iteration. Statistical machinery
//! (outlier classification, HTML reports) is intentionally absent — the
//! numbers print to stdout, which is what the repo's bench harness
//! consumes.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Applies command-line conventions, mirroring upstream criterion:
    /// the first free argument filters benchmark names by substring
    /// (`cargo bench -- <filter>`), and without the `--bench` flag that
    /// `cargo bench` passes (so under `cargo test --benches`, which
    /// passes nothing, or an explicit `--test`) benchmarks run in smoke
    /// mode — one unmeasured iteration each.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.test_mode = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, f);
        self
    }

    /// Opens a named group; the group name prefixes its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Sets the target measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        run_bench(self.criterion, &full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(c: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Smoke mode (`cargo test --benches`): one unmeasured iteration.
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: ok (test mode, 1 iteration)");
        return;
    }

    // Warmup: find an iteration count whose sample takes ≥ ~1/10 of the
    // measurement budget, doubling from 1.
    let mut iters: u64 = 1;
    let warmup_deadline = Instant::now() + c.warmup;
    let per_sample = c.measurement.as_secs_f64() / c.sample_size as f64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let t = b.elapsed.as_secs_f64();
        if t >= per_sample || Instant::now() >= warmup_deadline {
            if t > 0.0 && t < per_sample {
                let scale = (per_sample / t).min(1024.0);
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement: `sample_size` samples of `iters` iterations each.
    let mut samples = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len() - 1).max(1) as f64;
    println!(
        "{name:<50} time: [{} ± {}]  ({} samples × {iters} iters)",
        fmt_time(mean),
        fmt_time(var.sqrt()),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets with a
/// default-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            filter: None,
            test_mode: false,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_sample_size_is_scoped() {
        let mut c = Criterion {
            sample_size: 4,
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(4),
            filter: None,
            test_mode: false,
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.sample_size, 4);
    }

    #[test]
    fn test_mode_runs_once_without_measuring() {
        let mut c = Criterion {
            sample_size: 50,
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            filter: None,
            test_mode: true,
        };
        let mut calls = 0u64;
        c.bench_function("smoke_once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1, "test mode must run the routine exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
            filter: Some("nomatch".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
