//! Offline shim for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free, non-poisoning `lock()` /
//! `read()` / `write()` signatures.
//!
//! Wraps `std::sync` primitives; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
