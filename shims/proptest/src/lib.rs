//! Offline shim for the subset of `proptest` this workspace's property
//! tests use: the `proptest!` macro with `pattern in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`, regex-string strategies, numeric
//! range strategies, tuple strategies, `prop::collection::vec`, and
//! `prop::sample::select`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case index and seed instead of a minimized input), and the regex
//! strategy supports the subset `atom{m,n}` where `atom` is `.`, a
//! character class `[...]` (with ranges), or a literal character.
//! Case count defaults to 64 and follows `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::Rng;

/// A failed property-test case (carried as an `Err` out of the body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for the deterministic case stream (env `PROPTEST_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_cafe_f00d_1234)
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

// ---- numeric ranges ----

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- tuples ----

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---- regex-subset string strategy ----

/// One parsed regex atom with its repetition bounds.
enum RegexPiece {
    /// `.` — any printable character from a mixed pool.
    Any { min: usize, max: usize },
    /// `[...]` — one of an explicit character set.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Pool the `.` atom draws from: ASCII printables plus a few multi-byte
/// code points so string-handling code meets non-ASCII input.
const ANY_POOL: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L',
    'Z', '0', '1', '2', '5', '9', ' ', ' ', '\t', '.', ',', ';', ':', '!', '?', '"', '\'', '(',
    ')', '<', '>', '=', '+', '-', '*', '/', '%', '_', '#', '@', 'é', 'ß', 'λ', '中', '🦀',
];

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let set: Option<Vec<char>> = match chars[i] {
            '.' => {
                i += 1;
                None
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                Some(set)
            }
            c => {
                i += 1;
                Some(vec![c])
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed {} quantifier in test regex");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m = body.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(match set {
            None => RegexPiece::Any { min, max },
            Some(chars) => RegexPiece::Class { chars, min, max },
        });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse_regex(self) {
            let (pool, min, max): (&[char], usize, usize) = match &piece {
                RegexPiece::Any { min, max } => (ANY_POOL, *min, *max),
                RegexPiece::Class { chars, min, max } => (chars, *min, *max),
            };
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                if !pool.is_empty() {
                    out.push(pool[rng.gen_range(0..pool.len())]);
                }
            }
        }
        out
    }
}

// ---- collections and sampling ----

/// Size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy modules mirroring `proptest::collection` / `proptest::sample`.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::sample`.
pub mod sample {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy choosing one of a fixed set of values.
    pub struct Select<T>(Vec<T>);

    /// Chooses uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};

    /// Mirrors upstream's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `PROPTEST_CASES` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let base = $crate::base_seed();
                for case in 0..cases {
                    let seed = base
                        .wrapping_add(case as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut __proptest_rng =
                        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng);)*
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property {} failed at case {case}/{cases} (seed {seed}): {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the harness can report case and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {lhs:?}\n right: {rhs:?}",
                stringify!($lhs),
                stringify!($rhs),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regex_class_and_quantifier() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c ]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')), "{s:?}");
        }
    }

    #[test]
    fn regex_dot_produces_varied_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let lens: Vec<usize> = (0..100)
            .map(|_| Strategy::generate(&".{0,20}", &mut rng).chars().count())
            .collect();
        assert!(lens.contains(&0));
        assert!(lens.iter().all(|&l| l <= 20));
        assert!(lens.iter().max() > lens.iter().min());
    }

    proptest! {
        /// The macro wires patterns, tuples, collections, and selects.
        #[test]
        fn macro_end_to_end(
            x in 0.0f64..=1.0,
            k in 1usize..8,
            mut v in prop::collection::vec((0i32..10, -1.0f32..=1.0), 1..5),
            word in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..8).contains(&k));
            prop_assert!(!v.is_empty() && v.len() < 5);
            v.reverse();
            for (i, f) in v {
                prop_assert!((0..10).contains(&i));
                prop_assert!((-1.0..=1.0).contains(&f));
            }
            prop_assert!(word == "a" || word == "b");
            prop_assert_eq!(word.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports_case_and_seed() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
