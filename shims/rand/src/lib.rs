//! Offline shim for the subset of the `rand` crate (0.8 API) this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom`.
//!
//! The build environment has no crates.io access, so this crate stands in
//! via a workspace path dependency. The generator is xoshiro256++ seeded
//! through SplitMix64 — fast, high-quality, and fully deterministic for a
//! given seed (streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`, which only matters for byte-identical replay of corpora
//! generated elsewhere).

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `Self` from the "standard" distribution:
/// uniform over `[0, 1)` for floats, uniform over the full range for
/// integers, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased-enough bounded draw: maps 64 random bits onto
/// `[0, span)` via a 128-bit multiply (bias ≤ 2⁻⁶⁴, irrelevant here).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Closed unit draw ([0, 1] with 1.0 attainable) so the
                // inclusive upper bound is actually reachable.
                let unit =
                    (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(3..7usize);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
            let w = rng.gen_range(-2..=2i32);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
