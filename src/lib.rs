//! # OpineDB
//!
//! A Rust reproduction of **"Subjective Databases"** (Li et al., VLDB 2019):
//! a database system that models *subjective* attributes — room cleanliness,
//! ambience, bed comfort — as first-class schema elements backed by phrases
//! mined from reviews, and answers SQL queries whose `WHERE` clauses contain
//! natural-language predicates such as `"has really clean rooms"`.
//!
//! This facade crate re-exports the workspace's crates:
//!
//! * [`core`] — the OpineDB engine: linguistic domains, marker summaries,
//!   fuzzy logic, the three-stage predicate interpreter, membership
//!   functions, and the end-to-end query engine.
//! * [`store`] — the in-memory relational engine and Subjective SQL dialect.
//! * [`server`] — the concurrent query-serving subsystem: hand-rolled
//!   HTTP/1.1 + JSON over `std::net`, prepared queries, a result cache,
//!   and per-endpoint metrics (`examples/serve.rs`).
//! * [`extract`] — opinion extraction (tagging + pairing) and attribute
//!   classification.
//! * [`corpus`] — synthetic review corpora with latent ground truth.
//! * [`eval`] — the sat(Q,E) quality metric, workloads, and baselines.
//! * [`text`], [`embed`], [`sentiment`], [`ir`], [`ml`] — substrates.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use opine_core as core;
pub use opine_corpus as corpus;
pub use opine_embed as embed;
pub use opine_eval as eval;
pub use opine_extract as extract;
pub use opine_ir as ir;
pub use opine_ml as ml;
pub use opine_sentiment as sentiment;
pub use opine_server as server;
pub use opine_store as store;
pub use opine_text as text;
