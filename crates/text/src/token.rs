//! Tokenization and sentence splitting for review text.

use crate::stopwords::is_stopword;

/// Splits `text` into lowercase word tokens.
///
/// Alphanumeric runs become tokens; apostrophes inside words are kept so
/// "wasn't" stays one token; everything else is a separator. Stopwords are
/// removed, with the exception of negation words ("not", "no", "never",
/// "nothing") and common intensifiers, which carry sentiment-critical signal
/// in review text.
pub fn tokenize(text: &str) -> Vec<String> {
    raw_tokens(text)
        .into_iter()
        .filter(|t| !is_stopword(t) || is_negation(t) || is_intensifier(t))
        .collect()
}

/// Splits `text` into lowercase word tokens keeping stopwords.
///
/// Used where positional structure matters (sequence tagging, pairing).
pub fn tokenize_keep_stops(text: &str) -> Vec<String> {
    raw_tokens(text)
}

fn raw_tokens(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if ch == '\'' && !current.is_empty() {
            // keep word-internal apostrophes ("wasn't"), trim later if trailing
            current.push(ch);
        } else if ch == '-' && !current.is_empty() {
            // hyphenated compounds like "well-decorated" stay joined
            current.push('-');
        } else if !current.is_empty() {
            push_token(&mut tokens, &mut current);
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, &mut current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, current: &mut String) {
    while current.ends_with('\'') || current.ends_with('-') {
        current.pop();
    }
    if !current.is_empty() {
        tokens.push(std::mem::take(current));
    } else {
        current.clear();
    }
}

/// True for tokens that invert sentiment polarity.
pub fn is_negation(token: &str) -> bool {
    matches!(
        token,
        "not" | "no" | "never" | "nothing" | "hardly" | "isn't" | "wasn't" | "don't" | "didn't"
    )
}

/// True for tokens that strengthen or weaken an opinion.
pub fn is_intensifier(token: &str) -> bool {
    matches!(
        token,
        "very"
            | "really"
            | "extremely"
            | "super"
            | "quite"
            | "pretty"
            | "too"
            | "so"
            | "incredibly"
            | "spotlessly"
            | "somewhat"
            | "slightly"
            | "truly"
            | "definitely"
            | "genuinely"
            | "meticulously"
            | "absolutely"
            | "fairly"
    )
}

/// Splits review text into sentences on `.`, `!`, `?`, `;` and newlines.
///
/// Empty fragments are dropped; the terminators themselves are not returned.
pub fn split_sentences(text: &str) -> Vec<&str> {
    text.split(['.', '!', '?', ';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("The Room was CLEAN"), vec!["room", "clean"]);
    }

    #[test]
    fn tokenize_keeps_negations_and_intensifiers() {
        assert_eq!(
            tokenize("the room was not very clean"),
            vec!["room", "not", "very", "clean"]
        );
    }

    #[test]
    fn tokenize_handles_punctuation() {
        assert_eq!(
            tokenize("clean, well-decorated... and spotless!"),
            vec!["clean", "well-decorated", "spotless"]
        );
    }

    #[test]
    fn tokenize_keeps_word_internal_apostrophe() {
        let toks = tokenize_keep_stops("it wasn't great");
        assert_eq!(toks, vec!["it", "wasn't", "great"]);
    }

    #[test]
    fn tokenize_strips_trailing_apostrophe() {
        assert_eq!(tokenize_keep_stops("rooms' floor"), vec!["rooms", "floor"]);
    }

    #[test]
    fn tokenize_empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ...").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let s = split_sentences("Great bed. Noisy street! Would return?");
        assert_eq!(s, vec!["Great bed", "Noisy street", "Would return"]);
    }

    #[test]
    fn sentences_skip_empty_fragments() {
        assert_eq!(split_sentences("a..b.."), vec!["a", "b"]);
        assert!(split_sentences("...").is_empty());
    }

    #[test]
    fn keep_stops_retains_articles() {
        assert_eq!(
            tokenize_keep_stops("the bed was soft"),
            vec!["the", "bed", "was", "soft"]
        );
    }

    #[test]
    fn unicode_tokens_are_lowercased() {
        assert_eq!(tokenize_keep_stops("Café ÉLITE"), vec!["café", "élite"]);
    }
}
