//! A compact English stopword list tuned for review text.

/// Words filtered by [`crate::tokenize`] unless they are negations or
/// intensifiers. The list intentionally excludes opinion-bearing adverbs.
static STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "and",
    "or",
    "but",
    "if",
    "then",
    "than",
    "that",
    "this",
    "these",
    "those",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "it",
    "its",
    "it's",
    "i",
    "we",
    "you",
    "he",
    "she",
    "they",
    "them",
    "my",
    "our",
    "your",
    "his",
    "her",
    "their",
    "of",
    "in",
    "on",
    "at",
    "to",
    "from",
    "by",
    "with",
    "for",
    "as",
    "into",
    "about",
    "out",
    "up",
    "down",
    "over",
    "under",
    "again",
    "there",
    "here",
    "when",
    "where",
    "why",
    "how",
    "all",
    "any",
    "both",
    "each",
    "few",
    "more",
    "most",
    "other",
    "some",
    "such",
    "only",
    "own",
    "same",
    "can",
    "will",
    "just",
    "do",
    "does",
    "did",
    "doing",
    "would",
    "should",
    "could",
    "have",
    "has",
    "had",
    "having",
    "what",
    "which",
    "who",
    "whom",
    "because",
    "while",
    "during",
    "before",
    "after",
    "through",
    "also",
    "me",
    "us",
    "him",
    "no",
    "not",
    "never",
    "nothing",
    "very",
    "really",
    "extremely",
    "quite",
    "pretty",
    "too",
    "so",
    "s",
    "t",
    "got",
    "get",
];

/// Returns true if `token` (already lowercased) is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "was", "and", "of"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["clean", "room", "dirty", "bathroom", "luxurious"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn negations_are_listed_but_reinjected_by_tokenizer() {
        // `not` is in the stopword list, but tokenize() keeps it.
        assert!(is_stopword("not"));
        assert!(crate::tokenize("not clean").contains(&"not".to_string()));
    }
}
