//! N-gram extraction over token sequences.

/// Returns all contiguous `n`-grams of `tokens`, each joined with a space.
///
/// Returns an empty vector when `n == 0` or `n > tokens.len()`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// Convenience: all bigrams of `tokens`.
pub fn bigrams(tokens: &[String]) -> Vec<String> {
    ngrams(tokens, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unigrams_are_identity() {
        let t = toks(&["a", "b"]);
        assert_eq!(ngrams(&t, 1), vec!["a", "b"]);
    }

    #[test]
    fn bigrams_join_with_space() {
        let t = toks(&["very", "clean", "room"]);
        assert_eq!(bigrams(&t), vec!["very clean", "clean room"]);
    }

    #[test]
    fn oversized_n_is_empty() {
        let t = toks(&["a"]);
        assert!(ngrams(&t, 2).is_empty());
        assert!(ngrams(&t, 0).is_empty());
    }
}
