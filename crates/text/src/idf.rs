//! Document-frequency statistics and inverse document frequency.
//!
//! Used for the IDF-weighted phrase representation of Eq. (1) of the paper
//! and by the BM25 ranking function in `opine-ir`.

use crate::vocab::{Vocab, WordId};
use std::collections::HashSet;

/// Document-frequency model over an interned corpus.
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl IdfModel {
    /// Creates an empty model sized for `vocab`.
    pub fn new(vocab: &Vocab) -> Self {
        Self {
            doc_freq: vec![0; vocab.len()],
            num_docs: 0,
        }
    }

    /// Records one document given its interned tokens.
    ///
    /// Each distinct word counts once per document.
    pub fn add_document(&mut self, tokens: &[WordId]) {
        self.num_docs += 1;
        let distinct: HashSet<WordId> = tokens.iter().copied().collect();
        for id in distinct {
            if id.index() >= self.doc_freq.len() {
                self.doc_freq.resize(id.index() + 1, 0);
            }
            self.doc_freq[id.index()] += 1;
        }
    }

    /// Number of documents containing `id`.
    pub fn doc_freq(&self, id: WordId) -> u32 {
        self.doc_freq.get(id.index()).copied().unwrap_or(0)
    }

    /// Total number of documents recorded.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Smoothed inverse document frequency: `ln(1 + N / (1 + df))`.
    ///
    /// Monotonically decreasing in `df`; never negative; words unseen in the
    /// corpus receive the maximum weight, which matches the paper's intuition
    /// that rarer phrases like "very-clean" outweigh common ones like "clean".
    pub fn idf(&self, id: WordId) -> f64 {
        let df = self.doc_freq(id) as f64;
        (1.0 + self.num_docs as f64 / (1.0 + df)).ln()
    }

    /// BM25-style IDF: `ln(1 + (N - df + 0.5) / (df + 0.5))`.
    pub fn bm25_idf(&self, id: WordId) -> f64 {
        let df = self.doc_freq(id) as f64;
        let n = self.num_docs as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocab, IdfModel) {
        let mut v = Vocab::new();
        let mut m = IdfModel::new(&v);
        let docs = [
            vec!["clean", "room"],
            vec!["clean", "bed"],
            vec!["dirty", "room", "room"],
        ];
        for doc in docs {
            let toks: Vec<WordId> = doc.iter().map(|w| v.intern(w)).collect();
            m.add_document(&toks);
        }
        (v, m)
    }

    #[test]
    fn doc_freq_counts_distinct_per_doc() {
        let (v, m) = setup();
        // "room" appears twice in one doc but df counts documents.
        assert_eq!(m.doc_freq(v.get("room").unwrap()), 2);
        assert_eq!(m.doc_freq(v.get("clean").unwrap()), 2);
        assert_eq!(m.doc_freq(v.get("dirty").unwrap()), 1);
        assert_eq!(m.num_docs(), 3);
    }

    #[test]
    fn idf_decreases_with_frequency() {
        let (v, m) = setup();
        let rare = m.idf(v.get("dirty").unwrap());
        let common = m.idf(v.get("room").unwrap());
        assert!(rare > common, "rare {rare} should exceed common {common}");
    }

    #[test]
    fn idf_positive_for_unseen_word() {
        let (mut v, m) = setup();
        let unseen = v.intern("zzz");
        assert!(m.idf(unseen) > 0.0);
        assert_eq!(m.doc_freq(unseen), 0);
    }

    #[test]
    fn bm25_idf_nonnegative() {
        let (v, m) = setup();
        for (id, _) in v.iter() {
            assert!(m.bm25_idf(id) >= 0.0);
        }
    }
}
