//! Text processing substrate for OpineDB.
//!
//! Provides the low-level machinery every other crate builds on:
//!
//! * [`tokenize`] / [`split_sentences`] — normalising tokenizer and sentence
//!   splitter tuned for review text (keeps negations, drops punctuation);
//! * [`Vocab`] — string interning so phrases can be compared as `u32` ids;
//! * [`IdfModel`] — document-frequency statistics and inverse document
//!   frequency as used by Eq. (1) of the paper and by BM25;
//! * [`ngrams`] — n-gram extraction used to mine candidate phrases;
//! * [`stopwords`] — the stopword list shared by retrieval and embedding.

pub mod idf;
pub mod ngram;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use idf::IdfModel;
pub use ngram::{bigrams, ngrams};
pub use stopwords::is_stopword;
pub use token::{split_sentences, tokenize, tokenize_keep_stops};
pub use vocab::{Vocab, WordId};
