//! String interning: maps words to dense `u32` ids.

use std::collections::HashMap;

/// Identifier of an interned word. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

impl WordId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interning table for words.
///
/// Interning the whole corpus once lets the rest of the system (embeddings,
/// inverted index, linguistic domains) operate on `u32` ids instead of
/// allocating strings.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id (existing or new).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = WordId(self.words.len() as u32);
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Looks up an already-interned word.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// Returns the string for `id`. Panics on an id from another vocab.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.index()]
    }

    /// Number of distinct interned words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word has been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Interns every token of an already-tokenized sentence.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<WordId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (WordId(i as u32), w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("clean");
        let b = v.intern("clean");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocab::new();
        assert_eq!(v.intern("a"), WordId(0));
        assert_eq!(v.intern("b"), WordId(1));
        assert_eq!(v.intern("c"), WordId(2));
    }

    #[test]
    fn roundtrip_word_lookup() {
        let mut v = Vocab::new();
        let id = v.intern("spotless");
        assert_eq!(v.word(id), "spotless");
        assert_eq!(v.get("spotless"), Some(id));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut v = Vocab::new();
        v.intern("x");
        v.intern("y");
        let collected: Vec<_> = v.iter().map(|(id, w)| (id.0, w.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
