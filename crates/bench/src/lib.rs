//! Shared fixtures for the paper-reproduction benchmark harness.
//!
//! Every bench in `benches/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the per-experiment index) by printing the
//! reproduced rows during setup and then measuring the core operation with
//! Criterion.

use opine_core::{build, BuildConfig, OpineDb};
use opine_corpus::hotel::hotel_spec;
use opine_corpus::restaurant::restaurant_spec;
use opine_corpus::{Corpus, CorpusConfig};
use opine_embed::Word2VecConfig;
use opine_eval::EvalQuery;

/// Benchmark-scale hotel corpus (seeded, deterministic).
///
/// Review volume matters for Table 7: the marker/no-marker speedup is a
/// function of extracted phrases per entity, so entities carry dozens of
/// reviews (the paper's hotels average ~345).
pub fn hotel_corpus() -> Corpus {
    Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: 100,
            mean_reviews: 48,
            seed: 42,
        },
    )
}

/// Benchmark-scale restaurant corpus.
pub fn restaurant_corpus() -> Corpus {
    Corpus::generate(
        restaurant_spec(),
        &CorpusConfig {
            num_entities: 90,
            mean_reviews: 40,
            seed: 43,
        },
    )
}

/// The build configuration used across benches.
pub fn bench_build_config() -> BuildConfig {
    BuildConfig {
        w2v: Word2VecConfig {
            dim: 48,
            epochs: 2,
            ..Default::default()
        },
        membership_tuples: 1000,
        ..Default::default()
    }
}

/// Builds the OpineDB instance for a corpus at bench scale.
pub fn build_db(corpus: &Corpus) -> OpineDb {
    build(corpus, &bench_build_config())
}

/// Ranks entities for an eval query through the full Subjective SQL path,
/// returning dense entity ids in rank order.
pub fn opine_rank(db: &OpineDb, query: &EvalQuery, k: usize) -> Vec<usize> {
    let sql = query.to_sql(db.entity_table(), k);
    match db.query(&sql) {
        Ok(out) => out
            .result
            .rows
            .iter()
            .filter_map(|(row, _)| row[0].as_str().and_then(|key| db.entity_id(key)))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Prints a horizontal rule with a title, marking a reproduced artefact.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
