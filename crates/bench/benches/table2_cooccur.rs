//! **Table 2** — example outputs of the co-occurrence interpretation
//! method: hard query predicates and their top-1 `attribute."marker"`
//! interpretations.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus, restaurant_corpus};
use opine_core::{Interpretation, OpineDb};
use std::hint::black_box;

fn print_interpretations(db: &OpineDb, domain: &str, predicates: &[&str]) {
    println!("{domain}:");
    for p in predicates {
        let result = db.interpreter().cooccurrence_stage(p, db.vocab());
        let rendered = match result {
            Some(Interpretation::CoOccur { terms, conjunctive }) => {
                let parts: Vec<String> = terms
                    .iter()
                    .map(|&(a, m)| {
                        format!(
                            "{}.\"{}\"",
                            db.attributes[a],
                            db.marker_set(a).markers[m].phrase
                        )
                    })
                    .collect();
                parts.join(if conjunctive { " ⊗ " } else { " ⊕ " })
            }
            _ => "(no confident interpretation — text fallback)".to_string(),
        };
        println!("  {:<34} -> {rendered}", format!("\"{p}\""));
    }
}

fn bench(c: &mut Criterion) {
    banner("Table 2: co-occurrence method example outputs");
    let hotels = hotel_corpus();
    let hotel_db = build_db(&hotels);
    print_interpretations(
        &hotel_db,
        "Hotels",
        &[
            "for our anniversary",
            "multiple eating options",
            "kid friendly hotel",
            "is a romantic getaway",
        ],
    );
    let restaurants = restaurant_corpus();
    let rest_db = build_db(&restaurants);
    print_interpretations(
        &rest_db,
        "Restaurants",
        &[
            "dinner with kids",
            "close to public transportation",
            "private dinner vibe",
        ],
    );

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("cooccurrence_interpretation", |b| {
        b.iter(|| {
            black_box(
                hotel_db
                    .interpreter()
                    .cooccurrence_stage("is a romantic getaway", hotel_db.vocab()),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
