//! **Query hot-path bench** — PR 1 measured the three original
//! optimizations (interpretation cache, dense TA, parallel scoring;
//! recorded in `BENCH_pr1.json`); PR 3 adds the **mixed-WHERE**
//! scenario: the paper's running-example shape
//! `price_pn < τ and "clean rooms"` at three objective selectivities
//! (selective / ~50% / non-selective), with the objective-predicate
//! pushdown into the TA fast path toggled on and off, plus the
//! quantized (`u16`) degree-column ablation. Recorded in
//! `BENCH_pr3.json`.
//!
//! PR 5 adds the **Block-Max-WAND retrieval** scenario: the cold
//! interpretation path's BM25 top-k over the review-heavy corpus's
//! index, WAND vs the exhaustive posting traversal, asserted ≥ 5x with
//! bit-identical answers and recorded in `BENCH_pr5.json`.
//!
//! PR 7 adds the **tracing ablation**: the warm repeated query with
//! tracing disarmed (every span site costs one relaxed atomic load)
//! must stay within 2% of the same-run warm baseline, and the armed
//! cost (a `TraceContext` collecting the full span tree) is recorded
//! alongside in `BENCH_pr7.json`.
//!
//! PR 10 adds the **live-ingest** scenario: warm reads while a writer
//! thread streams `INSERT` batches through the delta segment (and its
//! threshold merges). Readers pin one snapshot epoch per query and
//! never take the writer lock, so the warm-read latency floor must
//! stay within 1.2x of the read-only baseline; recorded in
//! `BENCH_pr10.json`.
//!
//! In smoke mode (`cargo test --benches`, no `--bench` flag) the heavy
//! measurement loops are skipped, but small-corpus guards still run: a
//! mixed query must fire the `pushdown_queries` counter, a qualified
//! query the bucket-merge counters, the **wand guard** must skip
//! posting blocks while returning bit-identical top-k answers, and the
//! **ingest guard** must serve an inserted review to the very next
//! select and keep serving it through a threshold merge — or the bench
//! (and CI) fails.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_core::topk::{densify, full_scan_topk_dense, threshold_topk_dense};
use opine_core::{build, BuildConfig, OpineDb};
use opine_corpus::hotel::hotel_spec;
use opine_corpus::{Corpus, CorpusConfig};
use opine_embed::Word2VecConfig;
use opine_ir::{Bm25Params, InvertedIndex};
use opine_store::ReviewQualifier;
use opine_text::WordId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const TOPK_ENTITIES: usize = 10_000;
const TOPK_PREDICATES: usize = 3;
const TOPK_K: usize = 10;
const DB_ENTITIES: usize = 1024;
/// Entity count for the mixed-WHERE scenario (the acceptance bar is
/// "faster, not slower, at ≥10k entities"); override with
/// `OPINE_BENCH_MIXED_ENTITIES` to scale.
const MIXED_ENTITIES: usize = 10_000;
const REPEATED_QUERY: &str = "select * from hotels where \"clean rooms\" limit 10";
/// Result depth of the mixed-WHERE scenario. Deep enough that ranking
/// work (not per-query fixed overhead) dominates: certifying a top-50
/// over two weakly-correlated predicates sends the unfiltered TA deep
/// into the sorted lists, which is exactly the work a selective
/// objective filter prunes.
const MIXED_K: usize = 50;
/// The unfiltered subjective query the mixed scenarios are measured
/// against: the same two-predicate conjunction, minus the objective
/// filter. Two predicates (distinct latent attributes) keep TA's scan
/// depth honest — a single predicate terminates after k+1 accesses and
/// measures only fixed overhead.
const PURE_QUERY: &str =
    "select * from hotels where \"clean rooms\" and \"friendly staff\" limit 50";

/// The seed implementation of `threshold_topk`, kept verbatim as the
/// baseline: per-call `HashMap` random-access maps, `HashSet` seen
/// tracking, and a full re-sort of `best` at every depth.
fn seed_threshold_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() || k == 0 {
        return Vec::new();
    }
    let access: Vec<HashMap<usize, f64>> =
        lists.iter().map(|l| l.iter().copied().collect()).collect();
    let depth_max = lists.iter().map(Vec::len).max().unwrap_or(0);

    let mut seen: HashSet<usize> = HashSet::new();
    let mut best: Vec<(usize, f64)> = Vec::new();

    for depth in 0..depth_max {
        for list in lists {
            let Some(&(entity, _)) = list.get(depth) else {
                continue;
            };
            if !seen.insert(entity) {
                continue;
            }
            let combined: f64 = access
                .iter()
                .map(|m| m.get(&entity).copied().unwrap_or(0.0))
                .product();
            best.push((entity, combined));
        }
        best.sort_by(|a, b| b.1.total_cmp(&a.1));
        best.truncate(k.max(1));

        let threshold: f64 = lists
            .iter()
            .map(|l| l.get(depth).map(|&(_, d)| d).unwrap_or(0.0))
            .product();
        if best.len() >= k && best[k - 1].1 >= threshold {
            break;
        }
    }
    best
}

/// Correlated synthetic degree lists (real membership degrees cluster, so
/// a shared per-entity quality term keeps TA's early termination honest).
fn synthetic_lists(n: usize, predicates: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let quality: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    (0..predicates)
        .map(|_| {
            let mut list: Vec<(usize, f64)> = (0..n)
                .map(|e| {
                    let noise = rng.gen::<f64>();
                    (e, (0.6 * quality[e] + 0.4 * noise).clamp(0.0, 1.0))
                })
                .collect();
            list.sort_by(|a, b| b.1.total_cmp(&a.1));
            list
        })
        .collect()
}

/// A database large enough (≥ the parallel threshold of 512 entities)
/// that degree-column construction fans out across cores.
fn hotpath_db() -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: DB_ENTITIES,
            mean_reviews: 6,
            seed: 11,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 32,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 600,
            ..Default::default()
        },
    )
}

/// Mean seconds per iteration of `f` over `iters` runs.
fn measure<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// A database with a configurable corpus shape (shared by the
/// mixed-WHERE and review-qualified scenarios).
fn reviews_db(entities: usize, mean_reviews: usize) -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: entities,
            mean_reviews,
            seed: 23,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 500,
            ..Default::default()
        },
    )
}

/// A database for the mixed-WHERE scenario.
fn mixed_db(entities: usize) -> OpineDb {
    reviews_db(entities, 4)
}

/// The `price_pn` column of the entity table, sorted ascending — used
/// to pick thresholds at exact selectivities.
fn sorted_prices(db: &OpineDb) -> Vec<f64> {
    let table = db.catalog().table(db.entity_table()).expect("entity table");
    let price_col = table
        .schema()
        .column_index("price_pn")
        .expect("hotel price column");
    let mut prices: Vec<f64> = table
        .rows()
        .filter_map(|row| row.get(price_col).as_f64())
        .collect();
    prices.sort_by(f64::total_cmp);
    prices
}

/// Warm mean latency of `sql` on `db` (caches primed by a first run).
fn warm_latency(db: &OpineDb, sql: &str, iters: usize) -> f64 {
    db.query(sql).expect("query runs");
    measure(iters, || {
        black_box(db.query(sql).expect("query runs"));
    })
}

/// Warm minimum single-iteration latency of `sql` on `db` (caches
/// primed by a first run). The floor — not the mean — is the right
/// statistic when a concurrent writer shares this container's single
/// core: the mean folds in CPU time the scheduler hands to the
/// writer's own inserts and merges, while the floor measures what the
/// read path itself costs when it runs — which is exactly where lock
/// contention or snapshot-pinning overhead would show up.
fn latency_floor(db: &OpineDb, sql: &str, iters: usize) -> f64 {
    db.query(sql).expect("query runs");
    let mut floor = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(db.query(sql).expect("query runs"));
        floor = floor.min(start.elapsed().as_secs_f64());
    }
    floor
}

/// Smoke-mode guard: on a small corpus, the paper's running-example
/// shape must take the pushdown TA path (counter > 0) and agree with
/// the pushdown-disabled reference. Panics — failing `cargo test
/// --benches` and the CI smoke job — if the pushdown never fires.
fn pushdown_smoke_guard() {
    let db = mixed_db(48);
    let prices = sorted_prices(&db);
    let median = prices[prices.len() / 2];
    let sql = format!("select * from hotels where price_pn < {median} and \"clean rooms\" limit 8");
    let fast = db.query(&sql).expect("mixed query runs");
    let report = db.cache_report();
    assert!(
        report.pushdown_queries > 0,
        "mixed-WHERE smoke query never took the pushdown TA path: {report:?}"
    );
    db.set_objective_pushdown(false);
    let slow = db.query(&sql).expect("reference query runs");
    db.set_objective_pushdown(true);
    assert_eq!(
        fast.result.rows.len(),
        slow.result.rows.len(),
        "pushdown and row-at-a-time answers must agree"
    );
    for (a, b) in fast.result.rows.iter().zip(&slow.result.rows) {
        assert_eq!(a.0, b.0, "same rows in the same order");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "bit-identical scores");
    }
    println!(
        "pushdown smoke guard ok: {} pushdown queries, {} rows",
        report.pushdown_queries,
        fast.result.rows.len()
    );
}

/// Corpus shape of the review-qualified scenario: review-heavy (the
/// paper's setting — each entity aggregates many reviews), so rebuild
/// cost (per raw occurrence) and merge cost (per distinct partial)
/// separate. Override entities with `OPINE_BENCH_QUALIFIED_ENTITIES`.
const QUALIFIED_ENTITIES: usize = 200;
const QUALIFIED_REVIEWS: usize = 400;

/// The canonical review-qualified scenario of this bench: a year range
/// plus a reviewer-degree threshold (the paper's "reviews after 2010" /
/// "reviewers with ≥ N reviews" queries combined).
const QUALIFIER: ReviewQualifier = ReviewQualifier {
    min_year: Some(2012),
    max_year: None,
    min_reviewer_count: Some(4),
};

/// Asserts the bucket-merge path answers bit-identically to the full
/// raw-scan rebuild for `qualifier`, returning the rebuilt set's total
/// mass (sanity: the filter must actually drop reviews unless trivial).
fn assert_merge_matches_rebuild(db: &OpineDb, qualifier: &ReviewQualifier) -> f64 {
    let merged = db.summaries_qualified(qualifier);
    let rebuilt = db.summaries_with_review_filter(|m| {
        qualifier.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
    });
    let mut total = 0.0;
    for e in 0..db.num_entities() {
        for a in 0..db.attributes.len() {
            assert!(
                merged[e][a].same_aggregates(&rebuilt[e][a]),
                "bucket merge diverged from rebuild at entity {e} attr {a} under {qualifier}"
            );
            total += rebuilt[e][a].total;
        }
        let d_merged = db.attribute_degree_with_summaries(&merged, e, 0, "clean rooms");
        let d_rebuilt = db.attribute_degree_with_summaries(&rebuilt, e, 0, "clean rooms");
        assert_eq!(
            d_merged.to_bits(),
            d_rebuilt.to_bits(),
            "degree of entity {e}"
        );
    }
    total
}

/// Smoke-mode guard: a review-qualified SQL statement must route
/// through the bucket-merge path (filtered-summary counters fire) and
/// agree bit-for-bit with the raw-rebuild reference. Panics — failing
/// `cargo test --benches` and the CI smoke job — if the bucket merge
/// never fires.
fn qualified_smoke_guard() {
    let db = mixed_db(48);
    let report = db.cache_report();
    assert_eq!(report.filtered_summary_queries, 0);
    let sql = "select * from hotels where \"clean rooms\" \
               with reviews(year >= 2012, reviewer_min_count >= 3) limit 8";
    let out = db.query(sql).expect("qualified query runs");
    assert!(!out.result.rows.is_empty(), "qualified query found no rows");
    let report = db.cache_report();
    assert!(
        report.filtered_summary_queries > 0,
        "qualified query never took the bucket-merge path: {report:?}"
    );
    assert!(
        report.filtered_summaries.misses > 0,
        "filtered-summary cache never saw the merge: {report:?}"
    );
    // Answers must equal the raw-rebuild reference bit-for-bit (the
    // 3-review threshold cuts through the [2,4) log2 bucket, so this
    // also exercises the straddle refinement).
    let q = ReviewQualifier {
        min_year: Some(2012),
        max_year: None,
        min_reviewer_count: Some(3),
    };
    let rebuilt = db.summaries_with_review_filter(|m| {
        q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
    });
    for (row, score) in &out.result.rows {
        let entity = db.entity_id(row[0].as_str().unwrap()).unwrap();
        let reference = db.attribute_degree_with_summaries(&rebuilt, entity, 0, "clean rooms");
        assert_eq!(
            score.to_bits(),
            reference.to_bits(),
            "entity {entity}: qualified SQL answer diverged from the rebuild"
        );
    }
    println!(
        "qualified smoke guard ok: {} qualified queries, {} rows",
        report.filtered_summary_queries,
        out.result.rows.len()
    );
}

/// Smoke-mode guard: Block-Max WAND must return **bit-identical** top-k
/// answers to the exhaustive posting traversal AND actually skip blocks
/// on a skewed corpus (the `wand-smoke` CI guard). The corpus is
/// deterministic (LCG), so a silent regression in either property fails
/// `cargo test --benches` and the CI smoke job.
fn wand_smoke_guard() {
    let mut vocab = opine_text::Vocab::new();
    let mut index = InvertedIndex::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..4000 {
        let mut text = String::new();
        for _ in 0..(next() % 4) {
            text.push_str("clean ");
        }
        if next() % 2 == 0 {
            text.push_str("room ");
        }
        for f in 0..(next() % 6) {
            text.push_str(["lobby ", "stay ", "bed ", "desk ", "pool ", "bar "][f]);
        }
        text.push_str("hotel");
        index.add_document(&text, &mut vocab);
    }
    let terms: Vec<WordId> = ["clean", "room"]
        .iter()
        .map(|t| vocab.get(t).expect("corpus term"))
        .collect();
    let params = Bm25Params::default();
    let wand = index.search_terms(&terms, 10, &params);
    index.set_wand(false);
    let exhaustive = index.search_terms(&terms, 10, &params);
    index.set_wand(true);
    assert_eq!(wand.len(), exhaustive.len(), "same hit count");
    for (w, e) in wand.iter().zip(&exhaustive) {
        assert_eq!(w.doc, e.doc, "wand and exhaustive must rank identically");
        assert_eq!(w.score.to_bits(), e.score.to_bits(), "bit-identical scores");
    }
    let stats = index.retrieval_stats();
    assert!(stats.wand_queries > 0, "wand path must fire: {stats:?}");
    assert!(
        stats.blocks_skipped > 0,
        "cold top-10 over 4000 skewed docs must skip posting blocks: {stats:?}"
    );
    println!(
        "wand smoke guard ok: {} blocks skipped, {} bit-identical hits",
        stats.blocks_skipped,
        wand.len()
    );
}

/// Smoke-mode guard: live ingest must publish atomically and survive a
/// threshold merge — an inserted review is visible to the very next
/// select, repeated selects over the same epoch answer identically,
/// and the merge that freezes the delta keeps serving the same rows.
/// Panics — failing `cargo test --benches` and the CI smoke job — if
/// ingest loses rows or a merge changes the answer.
fn ingest_smoke_guard() {
    let db = mixed_db(48);
    let probe = "select * from reviews where reviewer_id = 910000";
    assert!(
        db.query(probe).expect("probe runs").result.rows.is_empty(),
        "marker reviewer band must start empty"
    );
    let insert = |text: &str| {
        format!(
            "INSERT INTO reviews (entity, text, year, reviewer_id) \
             VALUES ('{}', '{text}', 2021, 910000)",
            db.entity_key(0)
        )
    };
    let receipt = db
        .insert_sql(&insert("spotless clean rooms, lovely stay"))
        .expect("insert runs");
    assert_eq!(receipt.inserted, 1);
    assert_eq!(receipt.epoch, 1, "one batch = one published epoch");
    assert!(!receipt.merged, "below the default merge threshold");
    let first = db.query(probe).expect("probe runs");
    assert_eq!(
        first.result.rows.len(),
        1,
        "inserted row must be visible to the very next select"
    );
    let replay = db.query(probe).expect("probe runs");
    assert_eq!(
        first.result.rows, replay.result.rows,
        "two selects over the same epoch must answer identically"
    );
    // Crossing the threshold merges inline: the delta's rows move into
    // frozen posting blocks and per-year partials without dropping a
    // row on the serving path.
    db.set_merge_threshold(2);
    let receipt = db
        .insert_sql(&insert("clean rooms again, would return"))
        .expect("insert runs");
    assert!(receipt.merged, "second insert must cross the threshold");
    // The merge seals the delta's occurrences into frozen artifacts;
    // the rows themselves stay resident in the delta generation.
    assert_eq!(db.delta_reviews(), 2);
    let merged = db.query(probe).expect("probe runs");
    assert_eq!(merged.result.rows.len(), 2, "merged rows keep serving");
    let report = db.cache_report();
    assert_eq!(report.inserted_reviews, 2);
    assert!(report.delta_merges >= 1, "merge counter must fire");
    assert_eq!(report.failed_merges, 0);
    println!(
        "ingest smoke guard ok: epoch {} after {} inserts, {} merge",
        db.ingest_epoch(),
        report.inserted_reviews,
        report.delta_merges
    );
}

fn bench(c: &mut Criterion) {
    banner("PR 1: query hot path — interpretation cache, dense TA, parallel scoring");

    // Smoke invocation (`cargo test --benches` passes no `--bench`
    // flag): skip the manual measurement loops, the big db build, and
    // the BENCH_pr1.json overwrite — criterion itself also runs each
    // registered benchmark once, so shrink the fixture too.
    let measuring = std::env::args().any(|a| a == "--bench");

    // ---- layer 2: seed TA vs dense TA at 10k entities / 3 predicates ----
    let lists = synthetic_lists(
        if measuring { TOPK_ENTITIES } else { 500 },
        TOPK_PREDICATES,
        77,
    );
    let (columns, sorted) = densify(&lists);
    let expected = full_scan_topk_dense(&columns, TOPK_K);
    let got = threshold_topk_dense(&columns, &sorted, TOPK_K);
    assert_eq!(expected, got, "dense TA must agree with the full scan");
    if !measuring {
        println!("smoke mode: correctness checks only, no timings recorded");
        pushdown_smoke_guard();
        qualified_smoke_guard();
        wand_smoke_guard();
        ingest_smoke_guard();
        let mut group = c.benchmark_group("query_hotpath");
        group.bench_function("topk_seed_500", |b| {
            b.iter(|| seed_threshold_topk(black_box(&lists), TOPK_K))
        });
        group.bench_function("topk_dense_500", |b| {
            b.iter(|| threshold_topk_dense(black_box(&columns), black_box(&sorted), TOPK_K))
        });
        group.finish();
        return;
    }

    let t_seed = measure(30, || {
        black_box(seed_threshold_topk(black_box(&lists), TOPK_K));
    });
    let t_dense = measure(2000, || {
        black_box(threshold_topk_dense(
            black_box(&columns),
            black_box(&sorted),
            TOPK_K,
        ));
    });
    let t_scan = measure(200, || {
        black_box(full_scan_topk_dense(black_box(&columns), TOPK_K));
    });
    let topk_speedup = t_seed / t_dense;
    println!(
        "top-k @ {TOPK_ENTITIES} entities × {TOPK_PREDICATES} predicates, k={TOPK_K}:\n\
         \x20 seed TA   {:>10.1} µs\n\
         \x20 dense TA  {:>10.1} µs   ({topk_speedup:.1}x vs seed)\n\
         \x20 full scan {:>10.1} µs",
        t_seed * 1e6,
        t_dense * 1e6,
        t_scan * 1e6,
    );

    // ---- layers 1+3: end-to-end query latency, cold vs warm ----
    println!("building {DB_ENTITIES}-entity hotel db…");
    let db = hotpath_db();
    let run_query = || {
        black_box(db.query(REPEATED_QUERY).expect("query runs"));
    };
    // Cold: every iteration re-interprets the predicate and rebuilds its
    // degree column (caches cleared); warm: both replay from the caches.
    let t_cold = measure(15, || {
        db.clear_caches();
        run_query();
    });
    run_query();
    let t_warm = measure(200, run_query);
    let interp_speedup = t_cold / t_warm;
    let stats = db.interp_cache_stats();
    println!(
        "repeated-predicate query latency ({DB_ENTITIES} entities):\n\
         \x20 cold (caches cleared) {:>10.1} µs\n\
         \x20 warm (caches primed)  {:>10.1} µs   ({interp_speedup:.1}x)\n\
         \x20 interpretation memo: {} hits / {} misses",
        t_cold * 1e6,
        t_warm * 1e6,
        stats.hits,
        stats.misses,
    );

    // ---- layer 3 isolated: degree-column build, 1 thread vs all ----
    // Only the column cache is cleared per iteration: the interpretation
    // and phrase memos stay warm so the timing isolates the parallelized
    // membership-scoring stage rather than the serial interpreter.
    std::env::set_var("OPINE_THREADS", "1");
    let t_col_serial = measure(10, || {
        db.clear_degree_columns();
        black_box(db.degree_column("clean rooms"));
    });
    std::env::remove_var("OPINE_THREADS");
    let workers = opine_core::par::available_workers();
    let t_col_parallel = measure(10, || {
        db.clear_degree_columns();
        black_box(db.degree_column("clean rooms"));
    });
    let parallel_speedup = t_col_serial / t_col_parallel;
    println!(
        "degree-column build over {DB_ENTITIES} entities:\n\
         \x20 1 thread   {:>10.1} µs\n\
         \x20 {workers} threads {:>10.1} µs   ({parallel_speedup:.1}x)",
        t_col_serial * 1e6,
        t_col_parallel * 1e6,
    );

    // ---- PR 7: tracing ablation — disarmed ambient check vs armed ----
    // Every span site in the engine costs one relaxed atomic load when
    // no trace is armed; the acceptance bar is that the disarmed warm
    // path stays within 2% of the warm baseline. Direct wall-clock A/B
    // at this scale is hopeless on this container (paired adjacent
    // measurements of the *identical* closure differ by 10-40%), so
    // the assertion multiplies the probe count a warm query actually
    // executes (read off an armed span tree: span entries + counter
    // flushes + note sites, doubled for margin) by the directly
    // measured per-site disarmed cost, and requires that product to
    // fit in 2% of the interleaved warm latency. The wall-clock
    // disarmed/armed ratios are still recorded for the ablation.
    let run_armed = || {
        let ctx = opine_core::trace::TraceContext::new();
        opine_core::trace::with_trace(Some(ctx), || {
            black_box(db.query(REPEATED_QUERY).expect("query runs"));
        });
    };
    let mut t_baseline = f64::INFINITY;
    let mut t_disarmed = f64::INFINITY;
    let mut t_armed = f64::INFINITY;
    run_query();
    run_armed();
    for round in 0..15 {
        // Alternate the arm order each round so slow frequency drift
        // (this container's dominant noise source) cancels instead of
        // biasing whichever arm consistently runs first.
        if round % 2 == 0 {
            t_baseline = t_baseline.min(measure(400, run_query));
            t_disarmed = t_disarmed.min(measure(400, run_query));
        } else {
            t_disarmed = t_disarmed.min(measure(400, run_query));
            t_baseline = t_baseline.min(measure(400, run_query));
        }
        t_armed = t_armed.min(measure(400, run_armed));
    }
    // The raw cost of one disarmed span site: construct + drop a guard
    // with no ambient trace armed.
    let t_site = measure(1_000_000, || {
        let guard = opine_core::trace::span("ta_topk");
        black_box(&guard);
    });
    let disarmed_ratio = t_disarmed / t_baseline;
    let armed_ratio = t_armed / t_baseline;
    // One armed run for the record: which stages the span tree names.
    let sample_ctx = opine_core::trace::TraceContext::new();
    opine_core::trace::with_trace(Some(sample_ctx.clone()), || {
        black_box(db.query(REPEATED_QUERY).expect("query runs"));
    });
    let sample = sample_ctx.snapshot();
    // Probe sites a warm query hits: every span entry, every counter
    // flush, every note site — doubled as a safety margin for sites
    // the sample cannot see (declined branches, guard drops).
    let probes: u64 = 2
        * (sample.stages.iter().map(|s| s.calls).sum::<u64>()
            + sample
                .stages
                .iter()
                .map(|s| s.counters.len() as u64)
                .sum::<u64>()
            + sample.notes.len() as u64);
    let overhead = probes as f64 * t_site;
    println!(
        "tracing ablation (warm repeated query, {DB_ENTITIES} entities):\n\
         \x20 baseline (interleaved warm)    {:>9.1} µs\n\
         \x20 disarmed (ambient check only)  {:>9.1} µs   ({:.3}x wall-clock)\n\
         \x20 armed (full span collection)   {:>9.1} µs   ({:.3}x wall-clock)\n\
         \x20 disarmed probe cost: {probes} sites × {:.2} ns = {:.0} ns \
         ({:.2}% of warm; armed sample: {} stages, {} µs total)",
        t_baseline * 1e6,
        t_disarmed * 1e6,
        disarmed_ratio,
        t_armed * 1e6,
        armed_ratio,
        t_site * 1e9,
        overhead * 1e9,
        overhead / t_baseline * 100.0,
        sample.stages.len(),
        sample.total_us,
    );
    assert!(
        overhead <= 0.02 * t_baseline,
        "acceptance: disarmed tracing must stay within 2% of the warm \
         baseline ({probes} probe sites × {:.2} ns = {:.0} ns vs 2% of \
         {:.1} µs = {:.0} ns)",
        t_site * 1e9,
        overhead * 1e9,
        t_baseline * 1e6,
        0.02 * t_baseline * 1e9,
    );
    assert!(
        !sample.stages.is_empty(),
        "armed warm query must produce a non-empty span tree"
    );

    let pr7_json = format!(
        "{{\n  \"bench\": \"query_hotpath/trace_ablation\",\n  \"config\": {{\n    \"entities\": {DB_ENTITIES},\n    \"rounds\": 15,\n    \"iters_per_round\": 400,\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"query_warm_baseline\": {t_baseline:.9},\n    \"query_warm_disarmed\": {t_disarmed:.9},\n    \"query_warm_armed\": {t_armed:.9},\n    \"disarmed_span_site\": {t_site:.12}\n  }},\n  \"ratios\": {{\n    \"disarmed_vs_baseline\": {disarmed_ratio:.4},\n    \"armed_vs_baseline\": {armed_ratio:.4},\n    \"disarmed_probe_overhead_vs_baseline\": {:.6}\n  }},\n  \"trace_sample\": {{\n    \"stages_active\": {},\n    \"total_us\": {}\n  }}\n}}\n",
        overhead / t_baseline,
        sample.stages.len(),
        sample.total_us,
    );
    let pr7_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    std::fs::write(pr7_out, &pr7_json).expect("write BENCH_pr7.json");
    println!("wrote {pr7_out}");

    // ---- PR 3: mixed WHERE (objective pushdown into the TA path) ----
    let mixed_entities = std::env::var("OPINE_BENCH_MIXED_ENTITIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MIXED_ENTITIES);
    println!("building {mixed_entities}-entity hotel db for the mixed-WHERE scenario…");
    let build_start = Instant::now();
    let mdb = mixed_db(mixed_entities);
    println!("built in {:.1}s", build_start.elapsed().as_secs_f64());
    let prices = sorted_prices(&mdb);
    let quantile = |q: f64| prices[((prices.len() - 1) as f64 * q) as usize];
    let scenarios = [
        ("selective_5pct", quantile(0.05)),
        ("half_50pct", quantile(0.50)),
        ("non_selective", prices[prices.len() - 1] + 1.0),
    ];
    let mixed_sql = |t: f64| {
        format!(
            "select * from hotels where price_pn < {t} and \"clean rooms\" and \"friendly staff\" limit {MIXED_K}"
        )
    };

    // The vectorized objective scan in isolation: one `price_pn < τ`
    // comparison over the typed column (10k f64 → candidate bitmap).
    let price_col = {
        let table = mdb
            .catalog()
            .table(mdb.entity_table())
            .expect("entity table");
        table
            .schema()
            .column_index("price_pn")
            .expect("price column")
    };
    let t_bitmap_scan = {
        let table = mdb
            .catalog()
            .table(mdb.entity_table())
            .expect("entity table");
        let lit = opine_store::Value::Float(quantile(0.05));
        measure(3000, || {
            black_box(
                table
                    .column(price_col)
                    .compare_bitmap(opine_store::CmpOp::Lt, &lit),
            );
        })
    };
    println!(
        "vectorized objective scan: {:>9.2} µs for {mixed_entities} rows ({:.0}M rows/s)",
        t_bitmap_scan * 1e6,
        mixed_entities as f64 / t_bitmap_scan / 1e6,
    );

    // Interleaved rounds, min-of-rounds per scenario: this container is
    // single-core and noisy, and the pure-vs-mixed comparison below is
    // a ~µs-scale difference; the minimum mean over several rounds is
    // the standard robust latency estimate.
    let mut t_pure = f64::INFINITY;
    let mut t_push = [f64::INFINITY; 3];
    for _round in 0..7 {
        t_pure = t_pure.min(warm_latency(&mdb, PURE_QUERY, 150));
        for (i, (_, threshold)) in scenarios.iter().enumerate() {
            t_push[i] = t_push[i].min(warm_latency(&mdb, &mixed_sql(*threshold), 150));
        }
    }
    // Same min-of-rounds protocol for the row-at-a-time baseline, so
    // the recorded speedups compare like with like.
    let mut t_row = [f64::INFINITY; 3];
    mdb.set_objective_pushdown(false);
    for _round in 0..3 {
        for (i, (_, threshold)) in scenarios.iter().enumerate() {
            t_row[i] = t_row[i].min(warm_latency(&mdb, &mixed_sql(*threshold), 20));
        }
    }
    mdb.set_objective_pushdown(true);
    let results: Vec<(&str, f64, f64, f64)> = scenarios
        .iter()
        .enumerate()
        .map(|(i, (name, threshold))| (*name, *threshold, t_push[i], t_row[i]))
        .collect();
    println!(
        "mixed WHERE @ {mixed_entities} entities (warm, limit {MIXED_K}):\n\
         \x20 pure subjective            {:>10.1} µs",
        t_pure * 1e6
    );
    for (name, threshold, t_push, t_row) in &results {
        println!(
            "\x20 {name:<14} (τ={threshold:>6.1})  pushdown {:>9.1} µs   row-at-a-time {:>9.1} µs   ({:.1}x)",
            t_push * 1e6,
            t_row * 1e6,
            t_row / t_push,
        );
    }
    let report = mdb.cache_report();
    println!(
        "  ta_queries={} pushdown_queries={} column_bytes={}",
        report.ta_queries, report.pushdown_queries, report.column_bytes
    );
    assert!(report.pushdown_queries > 0, "pushdown path must fire");
    let (_, _, t_selective_push, t_selective_row) = results[0];
    assert!(
        t_selective_push < t_pure,
        "acceptance: a selective objective filter must make the query FASTER \
         than the unfiltered subjective query (selective {:.1} µs vs pure {:.1} µs)",
        t_selective_push * 1e6,
        t_pure * 1e6,
    );
    assert!(
        t_selective_push < t_selective_row,
        "pushdown must beat row-at-a-time residual scoring"
    );

    // Quantized degree columns (u16 + exact frontier rescoring): memory
    // cut and warm-latency cost.
    let exact_bytes = report.column_bytes;
    mdb.set_quantized_columns(true);
    let t_pure_quant = warm_latency(&mdb, PURE_QUERY, 100);
    let t_selective_quant = warm_latency(&mdb, &mixed_sql(results[0].1), 100);
    let quant_bytes = mdb.cache_report().column_bytes;
    mdb.set_quantized_columns(false);
    println!(
        "quantized columns: {} -> {} bytes ({:.1}x cut); pure {:>9.1} µs, selective {:>9.1} µs",
        exact_bytes,
        quant_bytes,
        exact_bytes as f64 / quant_bytes.max(1) as f64,
        t_pure_quant * 1e6,
        t_selective_quant * 1e6,
    );

    // ---- PR 4: review-qualified summaries (bucket merge vs rebuild) ----
    // A review-*heavy* corpus (the paper's setting: fewer entities,
    // many reviews each) — rebuild cost scales with raw occurrences,
    // bucket-merge cost with distinct (year, reviewer-degree) partials,
    // so this is where the partition pays. Cold rebuild re-aggregates
    // every occurrence per call (the pre-PR-4 behaviour of every
    // review-qualified query); cold bucket merge folds the build-time
    // partials; warm replays the merged set from the bounded
    // filtered-summary cache. Answers are asserted bit-identical before
    // any timing.
    let qualified_entities = std::env::var("OPINE_BENCH_QUALIFIED_ENTITIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUALIFIED_ENTITIES);
    println!(
        "building {qualified_entities}-entity hotel db ({QUALIFIED_REVIEWS} reviews/entity) \
         for the review-qualified scenario…"
    );
    let build_start = Instant::now();
    let qdb = reviews_db(qualified_entities, QUALIFIED_REVIEWS);
    println!("built in {:.1}s", build_start.elapsed().as_secs_f64());
    let rebuild_filter = |m: &opine_core::db::ReviewMeta| {
        QUALIFIER.accepts(m.year, qdb.reviewer_review_count(m.reviewer_id) as u32)
    };
    let filtered_mass = assert_merge_matches_rebuild(&qdb, &QUALIFIER);
    // Also verify a straddling (non-power-of-two) threshold once.
    assert_merge_matches_rebuild(
        &qdb,
        &ReviewQualifier {
            min_year: None,
            max_year: None,
            min_reviewer_count: Some(5),
        },
    );
    // Steady-state timing for both paths: each iteration constructs a
    // summary set and frees the previous one.
    let t_rebuild = measure(5, || {
        black_box(qdb.summaries_with_review_filter(rebuild_filter));
    });
    let t_merge = measure(15, || {
        qdb.clear_filtered_summaries();
        black_box(qdb.summaries_qualified(&QUALIFIER));
    });
    qdb.clear_filtered_summaries();
    let _ = qdb.summaries_qualified(&QUALIFIER);
    let t_filter_warm = measure(200, || {
        black_box(qdb.summaries_qualified(&QUALIFIER));
    });
    let qualified_sql = format!(
        "select * from hotels where \"clean rooms\" and \"friendly staff\" \
         with reviews(year >= 2012, reviewer_min_count >= 4) limit {MIXED_K}"
    );
    let t_qualified_cold_sql = measure(5, || {
        qdb.clear_filtered_summaries();
        black_box(qdb.query(&qualified_sql).expect("qualified query runs"));
    });
    let t_qualified_warm_sql = warm_latency(&qdb, &qualified_sql, 50);
    let t_unqualified_sql = warm_latency(&qdb, PURE_QUERY, 50);
    let rebuild_speedup = t_rebuild / t_merge;
    let warm_speedup = t_rebuild / t_filter_warm.max(1e-12);
    println!(
        "review-qualified summaries @ {qualified_entities} entities × {QUALIFIED_REVIEWS} reviews \
         ({QUALIFIER}, filtered mass {filtered_mass:.0}):\n\
         \x20 full rebuild (raw rescan)   {:>10.1} µs\n\
         \x20 bucket merge (cold)         {:>10.1} µs   ({rebuild_speedup:.1}x vs rebuild)\n\
         \x20 filtered-summary cache hit  {:>10.1} µs   ({warm_speedup:.0}x vs rebuild)\n\
         \x20 qualified SQL cold / warm   {:>10.1} µs / {:.1} µs (unqualified warm {:.1} µs)",
        t_rebuild * 1e6,
        t_merge * 1e6,
        t_filter_warm * 1e6,
        t_qualified_cold_sql * 1e6,
        t_qualified_warm_sql * 1e6,
        t_unqualified_sql * 1e6,
    );
    assert!(
        rebuild_speedup >= 10.0,
        "acceptance: bucket merge must be ≥ 10x faster than the full rebuild \
         (rebuild {:.1} µs vs merge {:.1} µs = {rebuild_speedup:.1}x)",
        t_rebuild * 1e6,
        t_merge * 1e6,
    );
    let qreport = qdb.cache_report();
    assert!(
        qreport.filtered_summary_queries > 0,
        "qualified SQL path must fire"
    );

    let pr4_json = format!(
        "{{\n  \"bench\": \"query_hotpath/review_qualified\",\n  \"config\": {{\n    \"entities\": {qualified_entities},\n    \"mean_reviews\": {QUALIFIED_REVIEWS},\n    \"limit\": {MIXED_K},\n    \"workers\": {workers},\n    \"qualifier\": \"{QUALIFIER}\"\n  }},\n  \"seconds\": {{\n    \"rebuild_raw_rescan\": {t_rebuild:.9},\n    \"bucket_merge_cold\": {t_merge:.9},\n    \"filtered_cache_warm\": {t_filter_warm:.9},\n    \"qualified_sql_cold\": {t_qualified_cold_sql:.9},\n    \"qualified_sql_warm\": {t_qualified_warm_sql:.9},\n    \"unqualified_sql_warm\": {t_unqualified_sql:.9}\n  }},\n  \"speedups\": {{\n    \"bucket_merge_vs_rebuild\": {rebuild_speedup:.2},\n    \"warm_cache_vs_rebuild\": {warm_speedup:.2}\n  }},\n  \"counters\": {{\n    \"filtered_summary_queries\": {},\n    \"filtered_summary_cache\": {{\"hits\": {}, \"misses\": {}}},\n    \"bit_identical_to_rebuild\": true\n  }}\n}}\n",
        qreport.filtered_summary_queries,
        qreport.filtered_summaries.hits,
        qreport.filtered_summaries.misses,
    );
    let pr4_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(pr4_out, &pr4_json).expect("write BENCH_pr4.json");
    println!("wrote {pr4_out}");

    let pr3_json = format!(
        "{{\n  \"bench\": \"query_hotpath/mixed_where\",\n  \"config\": {{\n    \"entities\": {mixed_entities},\n    \"limit\": {MIXED_K},\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"objective_scan\": {t_bitmap_scan:.9},\n    \"pure_subjective_warm\": {t_pure:.9},\n    \"selective_5pct_pushdown\": {:.9},\n    \"selective_5pct_row_at_a_time\": {:.9},\n    \"half_50pct_pushdown\": {:.9},\n    \"half_50pct_row_at_a_time\": {:.9},\n    \"non_selective_pushdown\": {:.9},\n    \"non_selective_row_at_a_time\": {:.9},\n    \"pure_subjective_quantized\": {t_pure_quant:.9},\n    \"selective_5pct_quantized\": {t_selective_quant:.9}\n  }},\n  \"speedups\": {{\n    \"selective_pushdown_vs_row_at_a_time\": {:.2},\n    \"selective_pushdown_vs_pure_subjective\": {:.2},\n    \"half_pushdown_vs_row_at_a_time\": {:.2}\n  }},\n  \"counters\": {{\n    \"ta_queries\": {},\n    \"pushdown_queries\": {},\n    \"degree_column_bytes_exact\": {exact_bytes},\n    \"degree_column_bytes_quantized\": {quant_bytes}\n  }}\n}}\n",
        results[0].2,
        results[0].3,
        results[1].2,
        results[1].3,
        results[2].2,
        results[2].3,
        t_selective_row / t_selective_push,
        t_pure / t_selective_push,
        results[1].3 / results[1].2,
        report.ta_queries,
        report.pushdown_queries,
    );
    let pr3_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json");
    std::fs::write(pr3_out, &pr3_json).expect("write BENCH_pr3.json");
    println!("wrote {pr3_out}");

    // ---- PR 5: Block-Max WAND retrieval on the cold interpretation path ----
    // The review-heavy corpus above doubles as the retrieval corpus
    // (its review index is what the co-occurrence stage searches). Two
    // shapes: the interpreter's own fan-out (top_k_reviews · 4 = 160)
    // and a tight top-10; both must be bit-identical to the exhaustive
    // posting traversal before any timing is recorded.
    let rindex = qdb.interpreter().review_index();
    let rvocab = qdb.vocab();
    // Concept predicates — the phrases stage 1 cannot map to a single
    // attribute, i.e. exactly the workload the co-occurrence retrieval
    // serves cold (direct attribute phrases are intercepted by the
    // word2vec stage). Mixed document frequencies, including an
    // out-of-vocabulary token, like real user queries.
    let wand_preds = [
        "romantic getaway",
        "good for business travelers",
        "kid friendly hotel",
        "anniversary celebration",
    ];
    let term_sets: Vec<Vec<WordId>> = wand_preds
        .iter()
        .map(|p| {
            opine_text::tokenize(p)
                .iter()
                .filter_map(|t| rvocab.get(t))
                .collect()
        })
        .collect();
    for (p, t) in wand_preds.iter().zip(&term_sets) {
        assert!(
            !t.is_empty(),
            "bench predicate {p:?} must have in-vocab terms"
        );
    }
    let params = Bm25Params::default();
    for terms in &term_sets {
        for k in [10, 160] {
            let w = rindex.search_terms(terms, k, &params);
            rindex.set_wand(false);
            let e = rindex.search_terms(terms, k, &params);
            rindex.set_wand(true);
            assert_eq!(w.len(), e.len(), "same hit count at k={k}");
            for (a, b) in w.iter().zip(&e) {
                assert_eq!(a.doc, b.doc, "identical ranking at k={k}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "bit-identical scores");
            }
        }
    }
    let skipped_before = rindex.retrieval_stats().blocks_skipped;
    let time_search = |k: usize, iters: usize| -> f64 {
        measure(iters, || {
            for terms in &term_sets {
                black_box(rindex.search_terms(black_box(terms), k, &params));
            }
        }) / term_sets.len() as f64
    };
    let t_wand_k10 = time_search(10, 300);
    let t_wand_k160 = time_search(160, 300);
    rindex.set_wand(false);
    let t_exh_k10 = time_search(10, 30);
    let t_exh_k160 = time_search(160, 30);
    rindex.set_wand(true);
    // The cold co-occurrence stage end-to-end: BM25 retrieval +
    // sentiment rescoring + digest co-occurrence scoring, no memo.
    let time_cooccur = |iters: usize| -> f64 {
        measure(iters, || {
            for p in &wand_preds {
                black_box(qdb.interpreter().cooccurrence_stage(black_box(p), rvocab));
            }
        }) / wand_preds.len() as f64
    };
    let t_cooccur_wand = time_cooccur(100);
    rindex.set_wand(false);
    let t_cooccur_exh = time_cooccur(30);
    rindex.set_wand(true);
    let rstats = rindex.retrieval_stats();
    assert!(
        rstats.blocks_skipped > skipped_before,
        "the measured scenario must skip posting blocks: {rstats:?}"
    );
    let speedup_k10 = t_exh_k10 / t_wand_k10;
    let speedup_k160 = t_exh_k160 / t_wand_k160;
    let speedup_cooccur = t_cooccur_exh / t_cooccur_wand;
    println!(
        "block-max WAND retrieval over {} reviews ({} predicates, bit-identical):\n\
         \x20 top-10   exhaustive {:>9.1} µs   wand {:>9.1} µs   ({speedup_k10:.1}x)\n\
         \x20 top-160  exhaustive {:>9.1} µs   wand {:>9.1} µs   ({speedup_k160:.1}x)\n\
         \x20 cold co-occurrence stage {:>9.1} µs -> {:>9.1} µs   ({speedup_cooccur:.1}x)\n\
         \x20 wand_queries={} blocks_skipped={}",
        rindex.num_docs(),
        wand_preds.len(),
        t_exh_k10 * 1e6,
        t_wand_k10 * 1e6,
        t_exh_k160 * 1e6,
        t_wand_k160 * 1e6,
        t_cooccur_exh * 1e6,
        t_cooccur_wand * 1e6,
        rstats.wand_queries,
        rstats.blocks_skipped,
    );
    assert!(
        speedup_k160 >= 5.0,
        "acceptance: the interpreter-shaped cold retrieval (k=160) must be \
         ≥ 5x faster than the exhaustive posting traversal, got {speedup_k160:.1}x \
         ({:.1} µs vs {:.1} µs)",
        t_exh_k160 * 1e6,
        t_wand_k160 * 1e6,
    );

    let pr5_json = format!(
        "{{\n  \"bench\": \"query_hotpath/wand_retrieval\",\n  \"config\": {{\n    \"reviews\": {},\n    \"entities\": {qualified_entities},\n    \"predicates\": {},\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"retrieval_top10_exhaustive\": {t_exh_k10:.9},\n    \"retrieval_top10_wand\": {t_wand_k10:.9},\n    \"retrieval_top160_exhaustive\": {t_exh_k160:.9},\n    \"retrieval_top160_wand\": {t_wand_k160:.9},\n    \"cooccur_stage_cold_exhaustive\": {t_cooccur_exh:.9},\n    \"cooccur_stage_cold_wand\": {t_cooccur_wand:.9}\n  }},\n  \"speedups\": {{\n    \"retrieval_top10\": {speedup_k10:.2},\n    \"retrieval_top160\": {speedup_k160:.2},\n    \"cooccur_stage_cold\": {speedup_cooccur:.2}\n  }},\n  \"counters\": {{\n    \"wand_queries\": {},\n    \"blocks_skipped\": {},\n    \"bit_identical_to_exhaustive\": true\n  }}\n}}\n",
        rindex.num_docs(),
        wand_preds.len(),
        rstats.wand_queries,
        rstats.blocks_skipped,
    );
    let pr5_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    std::fs::write(pr5_out, &pr5_json).expect("write BENCH_pr5.json");
    println!("wrote {pr5_out}");

    // ---- PR 10: live ingest — warm reads while a writer streams inserts ----
    // A writer thread feeds paced 25-row `INSERT` batches into the
    // 10k-entity mixed db (crossing the default merge threshold every
    // few batches, so frozen-artifact merges run mid-measurement) while
    // the reader measures the warm running-example query. Readers pin
    // one snapshot epoch per query and never take the writer lock, so
    // the acceptance bar is on the latency *floor*: on this single-core
    // container the mean inevitably folds in CPU time the scheduler
    // hands to the writer's own inserts and merges, but any iteration
    // that runs uninterrupted must cost within 1.2x of the read-only
    // floor — blocking (a reader waiting on the writer lock) or
    // per-query snapshot overhead would lift the floor itself.
    const INGEST_BATCH: usize = 25;
    println!("live-ingest scenario: streaming inserts into the {mixed_entities}-entity db…");
    let merges_before = mdb.cache_report().delta_merges;
    let epoch_before = mdb.ingest_epoch();
    let t_read_only_floor = latency_floor(&mdb, PURE_QUERY, 400);
    let t_read_only_mean = warm_latency(&mdb, PURE_QUERY, 200);
    let stop = AtomicBool::new(false);
    let (t_ingest_floor, t_ingest_mean, batches_written) = std::thread::scope(|scope| {
        let writer = {
            let mdb = &mdb;
            let stop = &stop;
            scope.spawn(move || {
                let mut batch = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let rows: Vec<String> = (0..INGEST_BATCH)
                        .map(|i| {
                            let n = batch * INGEST_BATCH + i;
                            // Stride the entity rotation so each batch
                            // dirties a fresh handful of entities — the
                            // reader's warm columns repair exactly
                            // those, never the other ~10k.
                            format!(
                                "('{}', 'clean rooms and friendly staff, stream row {n}', {}, {})",
                                mdb.entity_key((n * 131) % mdb.num_entities()),
                                2000 + (batch % 20),
                                920_000 + n
                            )
                        })
                        .collect();
                    let sql = format!(
                        "INSERT INTO reviews (entity, text, year, reviewer_id) VALUES {}",
                        rows.join(", ")
                    );
                    let receipt = mdb.insert_sql(&sql).expect("stream insert");
                    assert_eq!(receipt.inserted, INGEST_BATCH, "batches are all-or-nothing");
                    batch += 1;
                    // Paced feed: a steady stream, not a saturating one
                    // — the scenario measures serving during ingest,
                    // not the writer's own throughput ceiling.
                    std::thread::sleep(Duration::from_millis(2));
                }
                batch
            })
        };
        let floor = latency_floor(&mdb, PURE_QUERY, 400);
        let mean = warm_latency(&mdb, PURE_QUERY, 200);
        stop.store(true, Ordering::Release);
        let batches = writer.join().expect("writer thread");
        (floor, mean, batches)
    });
    // Quiesced floor after the stream: also read-only (the merged data
    // is now part of the frozen baseline), and taking the min of the
    // two baselines cancels the container's slow frequency drift.
    let t_quiesced_floor = latency_floor(&mdb, PURE_QUERY, 400);
    let baseline_floor = t_read_only_floor.min(t_quiesced_floor);
    let ingest_ratio = t_ingest_floor / baseline_floor;
    let ingest_report = mdb.cache_report();
    let streamed = mdb
        .query("select * from reviews where reviewer_id >= 920000")
        .expect("stream count runs");
    println!(
        "live ingest @ {mixed_entities} entities ({batches_written} × {INGEST_BATCH}-row batches, \
         {} merges, epoch {} -> {}):\n\
         \x20 read-only floor / mean  {:>9.1} µs / {:.1} µs\n\
         \x20 ingesting floor / mean  {:>9.1} µs / {:.1} µs   ({ingest_ratio:.3}x floor)\n\
         \x20 quiesced floor          {:>9.1} µs",
        ingest_report.delta_merges - merges_before,
        epoch_before,
        mdb.ingest_epoch(),
        t_read_only_floor * 1e6,
        t_read_only_mean * 1e6,
        t_ingest_floor * 1e6,
        t_ingest_mean * 1e6,
        t_quiesced_floor * 1e6,
    );
    assert!(
        batches_written >= 3,
        "the writer must actually stream during the measurement ({batches_written} batches)"
    );
    assert_eq!(
        streamed.result.rows.len(),
        batches_written * INGEST_BATCH,
        "every streamed row must be served after the run"
    );
    assert!(
        ingest_report.delta_merges > merges_before,
        "threshold merges must run mid-measurement: {ingest_report:?}"
    );
    assert_eq!(ingest_report.failed_merges, 0, "{ingest_report:?}");
    assert!(
        ingest_ratio <= 1.2,
        "acceptance: warm-read latency floor while ingest runs must stay within \
         1.2x of the read-only floor (ingesting {:.1} µs vs read-only {:.1} µs = \
         {ingest_ratio:.3}x)",
        t_ingest_floor * 1e6,
        baseline_floor * 1e6,
    );

    let pr10_json = format!(
        "{{\n  \"bench\": \"query_hotpath/live_ingest\",\n  \"config\": {{\n    \"entities\": {mixed_entities},\n    \"rows_per_batch\": {INGEST_BATCH},\n    \"batches_streamed\": {batches_written},\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"warm_floor_read_only\": {t_read_only_floor:.9},\n    \"warm_mean_read_only\": {t_read_only_mean:.9},\n    \"warm_floor_ingesting\": {t_ingest_floor:.9},\n    \"warm_mean_ingesting\": {t_ingest_mean:.9},\n    \"warm_floor_quiesced\": {t_quiesced_floor:.9}\n  }},\n  \"ratios\": {{\n    \"ingesting_floor_vs_read_only_floor\": {ingest_ratio:.4}\n  }},\n  \"counters\": {{\n    \"rows_streamed\": {},\n    \"delta_merges\": {},\n    \"failed_merges\": {},\n    \"epochs_published\": {}\n  }}\n}}\n",
        batches_written * INGEST_BATCH,
        ingest_report.delta_merges - merges_before,
        ingest_report.failed_merges,
        mdb.ingest_epoch() - epoch_before,
    );
    let pr10_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    std::fs::write(pr10_out, &pr10_json).expect("write BENCH_pr10.json");
    println!("wrote {pr10_out}");

    // ---- record for the PR ----
    let json = format!(
        "{{\n  \"bench\": \"query_hotpath\",\n  \"config\": {{\n    \"topk_entities\": {TOPK_ENTITIES},\n    \"topk_predicates\": {TOPK_PREDICATES},\n    \"topk_k\": {TOPK_K},\n    \"db_entities\": {DB_ENTITIES},\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"topk_seed\": {t_seed:.9},\n    \"topk_dense\": {t_dense:.9},\n    \"topk_full_scan\": {t_scan:.9},\n    \"query_cold\": {t_cold:.9},\n    \"query_warm\": {t_warm:.9},\n    \"degree_column_serial\": {t_col_serial:.9},\n    \"degree_column_parallel\": {t_col_parallel:.9}\n  }},\n  \"speedups\": {{\n    \"topk_dense_vs_seed\": {topk_speedup:.2},\n    \"repeated_predicate_warm_vs_cold\": {interp_speedup:.2},\n    \"degree_column_parallel_vs_serial\": {parallel_speedup:.2}\n  }}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(out, &json).expect("write BENCH_pr1.json");
    println!("wrote {out}");

    // ---- criterion samples of the same operations ----
    let mut group = c.benchmark_group("query_hotpath");
    group.sample_size(10);
    group.bench_function("topk_seed_10k", |b| {
        b.iter(|| seed_threshold_topk(black_box(&lists), TOPK_K))
    });
    group.bench_function("topk_dense_10k", |b| {
        b.iter(|| threshold_topk_dense(black_box(&columns), black_box(&sorted), TOPK_K))
    });
    group.bench_function("query_warm", |b| {
        b.iter(|| db.query(REPEATED_QUERY).expect("query runs"))
    });
    group.bench_function("query_cold", |b| {
        b.iter(|| {
            db.clear_caches();
            db.query(REPEATED_QUERY).expect("query runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
