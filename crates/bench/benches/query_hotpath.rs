//! **PR 1 hot-path bench** — measures the three query-path optimizations:
//!
//! 1. *Interpretation cache*: end-to-end Subjective SQL latency with the
//!    caches cleared every query (cold) vs primed (warm, the
//!    repeated-predicate case).
//! 2. *Dense threshold top-k*: the seed's `HashMap`-random-access,
//!    re-sort-per-depth TA (preserved verbatim below) vs the dense
//!    column + binary-heap TA, at 10 000 entities / 3 predicates.
//! 3. *Parallel membership scoring*: building a predicate's degree
//!    column single-threaded vs with all cores.
//!
//! Besides the Criterion timings, the measured means and speedups are
//! written to `BENCH_pr1.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_core::topk::{densify, full_scan_topk_dense, threshold_topk_dense};
use opine_core::{build, BuildConfig, OpineDb};
use opine_corpus::hotel::hotel_spec;
use opine_corpus::{Corpus, CorpusConfig};
use opine_embed::Word2VecConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::time::Instant;

const TOPK_ENTITIES: usize = 10_000;
const TOPK_PREDICATES: usize = 3;
const TOPK_K: usize = 10;
const DB_ENTITIES: usize = 1024;
const REPEATED_QUERY: &str = "select * from hotels where \"clean rooms\" limit 10";

/// The seed implementation of `threshold_topk`, kept verbatim as the
/// baseline: per-call `HashMap` random-access maps, `HashSet` seen
/// tracking, and a full re-sort of `best` at every depth.
fn seed_threshold_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() || k == 0 {
        return Vec::new();
    }
    let access: Vec<HashMap<usize, f64>> =
        lists.iter().map(|l| l.iter().copied().collect()).collect();
    let depth_max = lists.iter().map(Vec::len).max().unwrap_or(0);

    let mut seen: HashSet<usize> = HashSet::new();
    let mut best: Vec<(usize, f64)> = Vec::new();

    for depth in 0..depth_max {
        for list in lists {
            let Some(&(entity, _)) = list.get(depth) else {
                continue;
            };
            if !seen.insert(entity) {
                continue;
            }
            let combined: f64 = access
                .iter()
                .map(|m| m.get(&entity).copied().unwrap_or(0.0))
                .product();
            best.push((entity, combined));
        }
        best.sort_by(|a, b| b.1.total_cmp(&a.1));
        best.truncate(k.max(1));

        let threshold: f64 = lists
            .iter()
            .map(|l| l.get(depth).map(|&(_, d)| d).unwrap_or(0.0))
            .product();
        if best.len() >= k && best[k - 1].1 >= threshold {
            break;
        }
    }
    best
}

/// Correlated synthetic degree lists (real membership degrees cluster, so
/// a shared per-entity quality term keeps TA's early termination honest).
fn synthetic_lists(n: usize, predicates: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let quality: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    (0..predicates)
        .map(|_| {
            let mut list: Vec<(usize, f64)> = (0..n)
                .map(|e| {
                    let noise = rng.gen::<f64>();
                    (e, (0.6 * quality[e] + 0.4 * noise).clamp(0.0, 1.0))
                })
                .collect();
            list.sort_by(|a, b| b.1.total_cmp(&a.1));
            list
        })
        .collect()
}

/// A database large enough (≥ the parallel threshold of 512 entities)
/// that degree-column construction fans out across cores.
fn hotpath_db() -> OpineDb {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: DB_ENTITIES,
            mean_reviews: 6,
            seed: 11,
        },
    );
    build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 32,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 600,
            ..Default::default()
        },
    )
}

/// Mean seconds per iteration of `f` over `iters` runs.
fn measure<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn bench(c: &mut Criterion) {
    banner("PR 1: query hot path — interpretation cache, dense TA, parallel scoring");

    // Smoke invocation (`cargo test --benches` passes no `--bench`
    // flag): skip the manual measurement loops, the big db build, and
    // the BENCH_pr1.json overwrite — criterion itself also runs each
    // registered benchmark once, so shrink the fixture too.
    let measuring = std::env::args().any(|a| a == "--bench");

    // ---- layer 2: seed TA vs dense TA at 10k entities / 3 predicates ----
    let lists = synthetic_lists(
        if measuring { TOPK_ENTITIES } else { 500 },
        TOPK_PREDICATES,
        77,
    );
    let (columns, sorted) = densify(&lists);
    let expected = full_scan_topk_dense(&columns, TOPK_K);
    let got = threshold_topk_dense(&columns, &sorted, TOPK_K);
    assert_eq!(expected, got, "dense TA must agree with the full scan");
    if !measuring {
        println!("smoke mode: correctness checks only, no timings recorded");
        let mut group = c.benchmark_group("query_hotpath");
        group.bench_function("topk_seed_500", |b| {
            b.iter(|| seed_threshold_topk(black_box(&lists), TOPK_K))
        });
        group.bench_function("topk_dense_500", |b| {
            b.iter(|| threshold_topk_dense(black_box(&columns), black_box(&sorted), TOPK_K))
        });
        group.finish();
        return;
    }

    let t_seed = measure(30, || {
        black_box(seed_threshold_topk(black_box(&lists), TOPK_K));
    });
    let t_dense = measure(2000, || {
        black_box(threshold_topk_dense(
            black_box(&columns),
            black_box(&sorted),
            TOPK_K,
        ));
    });
    let t_scan = measure(200, || {
        black_box(full_scan_topk_dense(black_box(&columns), TOPK_K));
    });
    let topk_speedup = t_seed / t_dense;
    println!(
        "top-k @ {TOPK_ENTITIES} entities × {TOPK_PREDICATES} predicates, k={TOPK_K}:\n\
         \x20 seed TA   {:>10.1} µs\n\
         \x20 dense TA  {:>10.1} µs   ({topk_speedup:.1}x vs seed)\n\
         \x20 full scan {:>10.1} µs",
        t_seed * 1e6,
        t_dense * 1e6,
        t_scan * 1e6,
    );

    // ---- layers 1+3: end-to-end query latency, cold vs warm ----
    println!("building {DB_ENTITIES}-entity hotel db…");
    let db = hotpath_db();
    let run_query = || {
        black_box(db.query(REPEATED_QUERY).expect("query runs"));
    };
    // Cold: every iteration re-interprets the predicate and rebuilds its
    // degree column (caches cleared); warm: both replay from the caches.
    let t_cold = measure(15, || {
        db.clear_caches();
        run_query();
    });
    run_query();
    let t_warm = measure(200, run_query);
    let interp_speedup = t_cold / t_warm;
    let stats = db.interp_cache_stats();
    println!(
        "repeated-predicate query latency ({DB_ENTITIES} entities):\n\
         \x20 cold (caches cleared) {:>10.1} µs\n\
         \x20 warm (caches primed)  {:>10.1} µs   ({interp_speedup:.1}x)\n\
         \x20 interpretation memo: {} hits / {} misses",
        t_cold * 1e6,
        t_warm * 1e6,
        stats.hits,
        stats.misses,
    );

    // ---- layer 3 isolated: degree-column build, 1 thread vs all ----
    // Only the column cache is cleared per iteration: the interpretation
    // and phrase memos stay warm so the timing isolates the parallelized
    // membership-scoring stage rather than the serial interpreter.
    std::env::set_var("OPINE_THREADS", "1");
    let t_col_serial = measure(10, || {
        db.clear_degree_columns();
        black_box(db.degree_column("clean rooms"));
    });
    std::env::remove_var("OPINE_THREADS");
    let workers = opine_core::par::available_workers();
    let t_col_parallel = measure(10, || {
        db.clear_degree_columns();
        black_box(db.degree_column("clean rooms"));
    });
    let parallel_speedup = t_col_serial / t_col_parallel;
    println!(
        "degree-column build over {DB_ENTITIES} entities:\n\
         \x20 1 thread   {:>10.1} µs\n\
         \x20 {workers} threads {:>10.1} µs   ({parallel_speedup:.1}x)",
        t_col_serial * 1e6,
        t_col_parallel * 1e6,
    );

    // ---- record for the PR ----
    let json = format!(
        "{{\n  \"bench\": \"query_hotpath\",\n  \"config\": {{\n    \"topk_entities\": {TOPK_ENTITIES},\n    \"topk_predicates\": {TOPK_PREDICATES},\n    \"topk_k\": {TOPK_K},\n    \"db_entities\": {DB_ENTITIES},\n    \"workers\": {workers}\n  }},\n  \"seconds\": {{\n    \"topk_seed\": {t_seed:.9},\n    \"topk_dense\": {t_dense:.9},\n    \"topk_full_scan\": {t_scan:.9},\n    \"query_cold\": {t_cold:.9},\n    \"query_warm\": {t_warm:.9},\n    \"degree_column_serial\": {t_col_serial:.9},\n    \"degree_column_parallel\": {t_col_parallel:.9}\n  }},\n  \"speedups\": {{\n    \"topk_dense_vs_seed\": {topk_speedup:.2},\n    \"repeated_predicate_warm_vs_cold\": {interp_speedup:.2},\n    \"degree_column_parallel_vs_serial\": {parallel_speedup:.2}\n  }}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(out, &json).expect("write BENCH_pr1.json");
    println!("wrote {out}");

    // ---- criterion samples of the same operations ----
    let mut group = c.benchmark_group("query_hotpath");
    group.sample_size(10);
    group.bench_function("topk_seed_10k", |b| {
        b.iter(|| seed_threshold_topk(black_box(&lists), TOPK_K))
    });
    group.bench_function("topk_dense_10k", |b| {
        b.iter(|| threshold_topk_dense(black_box(&columns), black_box(&sorted), TOPK_K))
    });
    group.bench_function("query_warm", |b| {
        b.iter(|| db.query(REPEATED_QUERY).expect("query runs"))
    });
    group.bench_function("query_cold", |b| {
        b.iter(|| {
            db.clear_caches();
            db.query(REPEATED_QUERY).expect("query runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
