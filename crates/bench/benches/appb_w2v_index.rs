//! **Appendix B** — the word-substitution index: fraction of query
//! predicates resolved without the full k-d tree similarity search, and
//! the lookup speedup versus always running the full search.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus};
use opine_corpus::workload::hotel_workload;
use opine_embed::subst::LookupPath;
use opine_embed::{KdTree, SubstitutionIndex};
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    banner("Appendix B: w2v substitution index vs full similarity search");
    let corpus = hotel_corpus();
    let db = build_db(&corpus);
    let bank = hotel_workload(&corpus.spec);

    // Index every linguistic variation of every attribute.
    let mut phrases: Vec<(String, usize)> = Vec::new();
    for (attr, domain) in db.interpreter().domains().iter().enumerate() {
        for v in domain.variations() {
            phrases.push((v.phrase.clone(), attr));
        }
    }
    let index = SubstitutionIndex::build(&phrases, db.embedder(), db.vocab());

    // Plain k-d tree over the same phrases (the always-full-search path).
    let tree_items: Vec<(Vec<f32>, usize)> = phrases
        .iter()
        .map(|(p, attr)| {
            let mut rep = db.embedder().rep(p, db.vocab());
            opine_embed::normalize(&mut rep);
            (rep, *attr)
        })
        .collect();
    let tree = KdTree::build(tree_items);

    let mut exact = 0usize;
    let mut substituted = 0usize;
    let mut full = 0usize;
    let t0 = Instant::now();
    for p in &bank {
        match index.lookup(&p.text, db.embedder(), db.vocab()) {
            Some((_, LookupPath::Exact)) => exact += 1,
            Some((_, LookupPath::Substitution)) => substituted += 1,
            _ => full += 1,
        }
    }
    let indexed_time = t0.elapsed();

    let t1 = Instant::now();
    for p in &bank {
        let mut rep = db.embedder().rep(&p.text, db.vocab());
        opine_embed::normalize(&mut rep);
        black_box(tree.nearest(&rep));
    }
    let full_time = t1.elapsed();

    let n = bank.len() as f64;
    let avoided = 100.0 * (exact + substituted) as f64 / n;
    println!(
        "{} predicates over {} indexed variations:",
        bank.len(),
        phrases.len()
    );
    println!(
        "  exact dictionary hits: {exact}, one-word substitutions: {substituted}, full searches: {full}"
    );
    println!("  similarity searches avoided: {avoided:.1}%");
    println!(
        "  lookup time: indexed {:.2?} vs always-full-search {:.2?} ({:.1}% speedup)",
        indexed_time,
        full_time,
        100.0 * (1.0 - indexed_time.as_secs_f64() / full_time.as_secs_f64().max(1e-12))
    );

    let mut group = c.benchmark_group("appb");
    group.bench_function("indexed_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &bank[i % bank.len()];
            i += 1;
            black_box(index.lookup(&p.text, db.embedder(), db.vocab()))
        })
    });
    group.bench_function("full_kdtree_search", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &bank[i % bank.len()];
            i += 1;
            let mut rep = db.embedder().rep(&p.text, db.vocab());
            opine_embed::normalize(&mut rep);
            black_box(tree.nearest(&rep))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
