//! **PR 2 serving bench** — drives the `opine-server` subsystem over
//! loopback TCP with concurrent keep-alive clients and measures:
//!
//! 1. *Correctness*: every HTTP response body is byte-identical to the
//!    library-path serialization (`render_query_body` straight against
//!    the shared `OpineDb`).
//! 2. *Warm throughput*: N client threads issuing the paper's running
//!    example against the result cache (req/s).
//! 3. *Pipelined throughput*: the same with HTTP pipelining, which
//!    amortizes per-request round-trips.
//! 4. *Cold / uncached latency*: the result cache disabled, so every
//!    request executes the full query path.
//!
//! The measured numbers are written to `BENCH_pr2.json` at the workspace
//! root, including the worker count (ROADMAP multi-core validation).

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_core::{build, BuildConfig, OpineDb};
use opine_corpus::hotel::hotel_spec;
use opine_corpus::{Corpus, CorpusConfig};
use opine_embed::Word2VecConfig;
use opine_server::{render_query_body, HttpClient, OpineServer, ServerConfig};
use opine_store::parse_select;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DB_ENTITIES: usize = 512;
const CLIENTS: usize = 4;
const MEASURE_WINDOW: Duration = Duration::from_millis(1500);

const RUNNING_EXAMPLE: &str =
    "select * from hotels where price_pn < 150 and \"clean rooms\" limit 10";
const PURE_SUBJECTIVE: &str =
    "select * from hotels where \"clean rooms\" and \"friendly staff\" limit 10";
const PROJECTED: &str =
    "select hotelname, price_pn from hotels where price_pn < 200 order by price_pn asc limit 10";

fn serving_db(entities: usize) -> Arc<OpineDb> {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: entities,
            mean_reviews: 6,
            seed: 11,
        },
    );
    Arc::new(build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 32,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 600,
            ..Default::default()
        },
    ))
}

fn query_body(sql: &str) -> String {
    format!("{{\"sql\": {}}}", opine_server::json::escaped(sql))
}

/// One request, transparently reconnecting when the server closes the
/// connection at its keep-alive budget.
fn request_with_retry(
    client: &mut HttpClient,
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> opine_server::ClientResponse {
    loop {
        match client.request(method, path, body) {
            Ok(resp) => return resp,
            Err(_) => *client = HttpClient::connect(addr).expect("reconnect"),
        }
    }
}

/// Asserts the wire bytes equal the library-path serialization.
fn assert_byte_identical(db: &OpineDb, client: &mut HttpClient, sql: &str) {
    let resp = client.post("/query", &query_body(sql)).expect("request");
    assert_eq!(resp.status, 200, "{sql}: {}", resp.body);
    let select = parse_select(sql).expect("valid SQL");
    let reference = render_query_body(db, &select).expect("library path");
    assert_eq!(
        resp.body, reference,
        "{sql}: served bytes must equal library-path execution"
    );
}

/// Total requests served by `clients` keep-alive connections hammering
/// `sql` for `window`. Every response is checked for 200 + expected body.
fn drive(addr: std::net::SocketAddr, clients: usize, sql: &str, window: Duration) -> u64 {
    let body = query_body(sql);
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while Instant::now() < deadline {
                        // The server closes connections at its keep-alive
                        // budget; reconnect and retry like a real client.
                        match client.post("/query", &body) {
                            Ok(resp) => {
                                assert_eq!(resp.status, 200);
                                served += 1;
                            }
                            Err(_) => client = HttpClient::connect(addr).expect("reconnect"),
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Like [`drive`] but pipelining `depth` requests per round-trip.
fn drive_pipelined(
    addr: std::net::SocketAddr,
    clients: usize,
    sql: &str,
    depth: usize,
    window: Duration,
) -> u64 {
    let body = query_body(sql);
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while Instant::now() < deadline {
                        match client.pipeline("POST", "/query", &body, depth) {
                            Ok(responses) => {
                                assert!(responses.iter().all(|r| r.status == 200));
                                served += responses.len() as u64;
                            }
                            Err(_) => client = HttpClient::connect(addr).expect("reconnect"),
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench(c: &mut Criterion) {
    banner("PR 2: opine-server — concurrent loopback serving throughput");
    let measuring = std::env::args().any(|a| a == "--bench");

    let db = serving_db(if measuring { DB_ENTITIES } else { 32 });
    let server = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    let workers = server.workers();

    // ---- correctness first: wire bytes == library path, all shapes ----
    let mut checker = HttpClient::connect(addr).expect("connect");
    for sql in [RUNNING_EXAMPLE, PURE_SUBJECTIVE, PROJECTED] {
        assert_byte_identical(&db, &mut checker, sql);
    }
    println!("correctness: 3 query shapes byte-identical to library-path execution");

    if !measuring {
        println!("smoke mode: correctness checks only, no timings recorded");
        let mut group = c.benchmark_group("serve_throughput");
        group.bench_function("warm_query_http", |b| {
            b.iter(|| {
                black_box(
                    checker
                        .post("/query", &query_body(RUNNING_EXAMPLE))
                        .unwrap(),
                )
            })
        });
        group.finish();
        return;
    }

    // ---- warm throughput: result cache hot, N concurrent clients ----
    let warmup = drive(addr, CLIENTS, RUNNING_EXAMPLE, Duration::from_millis(300));
    assert!(warmup > 0);
    let warm_served = drive(addr, CLIENTS, RUNNING_EXAMPLE, MEASURE_WINDOW);
    let warm_rps = warm_served as f64 / MEASURE_WINDOW.as_secs_f64();

    let piped_served = drive_pipelined(addr, CLIENTS, RUNNING_EXAMPLE, 32, MEASURE_WINDOW);
    let piped_rps = piped_served as f64 / MEASURE_WINDOW.as_secs_f64();

    // ---- warm single-client latency ----
    let body = query_body(RUNNING_EXAMPLE);
    let iters = 500;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(request_with_retry(
            &mut checker,
            addr,
            "POST",
            "/query",
            Some(&body),
        ));
    }
    let warm_latency_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;

    // ---- uncached serving: every request runs the full query path ----
    let uncached = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
    .expect("bind uncached server");
    // Prime the *engine* caches so this measures execution + serialization,
    // not one-time interpretation.
    let _ = drive(
        uncached.local_addr(),
        1,
        RUNNING_EXAMPLE,
        Duration::from_millis(200),
    );
    let uncached_served = drive(
        uncached.local_addr(),
        CLIENTS,
        RUNNING_EXAMPLE,
        MEASURE_WINDOW,
    );
    let uncached_rps = uncached_served as f64 / MEASURE_WINDOW.as_secs_f64();
    uncached.shutdown();

    println!(
        "serving {DB_ENTITIES}-entity db, {workers} workers, {CLIENTS} clients:\n\
         \x20 warm (result cache)    {warm_rps:>10.0} req/s\n\
         \x20 warm pipelined (×32)   {piped_rps:>10.0} req/s\n\
         \x20 uncached execution     {uncached_rps:>10.0} req/s\n\
         \x20 warm latency           {warm_latency_us:>10.1} µs/req (single client)",
    );
    assert!(
        warm_rps >= 1000.0,
        "acceptance: warm serving must exceed 1k req/s, got {warm_rps:.0}"
    );

    // ---- record for the PR ----
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"config\": {{\n    \"db_entities\": {DB_ENTITIES},\n    \"workers\": {workers},\n    \"clients\": {CLIENTS},\n    \"pipeline_depth\": 32,\n    \"measure_window_secs\": {:.3}\n  }},\n  \"requests_per_second\": {{\n    \"warm_result_cache\": {warm_rps:.1},\n    \"warm_pipelined\": {piped_rps:.1},\n    \"uncached_execution\": {uncached_rps:.1}\n  }},\n  \"latency\": {{\n    \"warm_single_client_us\": {warm_latency_us:.1}\n  }}\n}}\n",
        MEASURE_WINDOW.as_secs_f64()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(out, &json).expect("write BENCH_pr2.json");
    println!("wrote {out}");

    // ---- criterion samples ----
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.bench_function("warm_query_http", |b| {
        b.iter(|| {
            black_box(request_with_retry(
                &mut checker,
                addr,
                "POST",
                "/query",
                Some(&body),
            ))
        })
    });
    group.bench_function("stats_endpoint", |b| {
        b.iter(|| {
            black_box(request_with_retry(
                &mut checker,
                addr,
                "GET",
                "/stats",
                None,
            ))
        })
    });
    group.finish();

    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
