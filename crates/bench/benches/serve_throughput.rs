//! **PR 2 serving bench** — drives the `opine-server` subsystem over
//! loopback TCP with concurrent keep-alive clients and measures:
//!
//! 1. *Correctness*: every HTTP response body is byte-identical to the
//!    library-path serialization (`render_query_body` straight against
//!    the shared `OpineDb`).
//! 2. *Warm throughput*: N client threads issuing the paper's running
//!    example against the result cache (req/s).
//! 3. *Pipelined throughput*: the same with HTTP pipelining, which
//!    amortizes per-request round-trips.
//! 4. *Cold / uncached latency*: the result cache disabled, so every
//!    request executes the full query path.
//! 5. *Overload (PR 6)*: a deliberately small admission budget driven at
//!    2× its sustained capacity — excess arrivals must shed with
//!    taxonomy 503s while the p99 of *admitted* requests stays within
//!    5× of its uncontended value.
//!
//! The measured numbers are written to `BENCH_pr2.json` (throughput) and
//! `BENCH_pr6.json` (overload) at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_core::{build, BuildConfig, OpineDb};
use opine_corpus::hotel::hotel_spec;
use opine_corpus::{Corpus, CorpusConfig};
use opine_embed::Word2VecConfig;
use opine_server::{render_query_body, HttpClient, OpineServer, ServerConfig};
use opine_store::parse_select;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DB_ENTITIES: usize = 512;
const CLIENTS: usize = 4;
const MEASURE_WINDOW: Duration = Duration::from_millis(1500);

const RUNNING_EXAMPLE: &str =
    "select * from hotels where price_pn < 150 and \"clean rooms\" limit 10";
const PURE_SUBJECTIVE: &str =
    "select * from hotels where \"clean rooms\" and \"friendly staff\" limit 10";
const PROJECTED: &str =
    "select hotelname, price_pn from hotels where price_pn < 200 order by price_pn asc limit 10";

fn serving_db(entities: usize) -> Arc<OpineDb> {
    let corpus = Corpus::generate(
        hotel_spec(),
        &CorpusConfig {
            num_entities: entities,
            mean_reviews: 6,
            seed: 11,
        },
    );
    Arc::new(build(
        &corpus,
        &BuildConfig {
            w2v: Word2VecConfig {
                dim: 32,
                epochs: 1,
                ..Default::default()
            },
            membership_tuples: 600,
            ..Default::default()
        },
    ))
}

fn query_body(sql: &str) -> String {
    format!("{{\"sql\": {}}}", opine_server::json::escaped(sql))
}

/// One request, transparently reconnecting when the server closes the
/// connection at its keep-alive budget.
fn request_with_retry(
    client: &mut HttpClient,
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> opine_server::ClientResponse {
    loop {
        match client.request(method, path, body) {
            Ok(resp) => return resp,
            Err(_) => *client = HttpClient::connect(addr).expect("reconnect"),
        }
    }
}

/// Asserts the wire bytes equal the library-path serialization.
fn assert_byte_identical(db: &OpineDb, client: &mut HttpClient, sql: &str) {
    let resp = client.post("/query", &query_body(sql)).expect("request");
    assert_eq!(resp.status, 200, "{sql}: {}", resp.body);
    let select = parse_select(sql).expect("valid SQL");
    let reference = render_query_body(db, &select).expect("library path");
    assert_eq!(
        resp.body, reference,
        "{sql}: served bytes must equal library-path execution"
    );
}

/// Total requests served by `clients` keep-alive connections hammering
/// `sql` for `window`. Every response is checked for 200 + expected body.
fn drive(addr: std::net::SocketAddr, clients: usize, sql: &str, window: Duration) -> u64 {
    let body = query_body(sql);
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while Instant::now() < deadline {
                        // The server closes connections at its keep-alive
                        // budget; reconnect and retry like a real client.
                        match client.post("/query", &body) {
                            Ok(resp) => {
                                assert_eq!(resp.status, 200);
                                served += 1;
                            }
                            Err(_) => client = HttpClient::connect(addr).expect("reconnect"),
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Like [`drive`] but pipelining `depth` requests per round-trip.
fn drive_pipelined(
    addr: std::net::SocketAddr,
    clients: usize,
    sql: &str,
    depth: usize,
    window: Duration,
) -> u64 {
    let body = query_body(sql);
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while Instant::now() < deadline {
                        match client.pipeline("POST", "/query", &body, depth) {
                            Ok(responses) => {
                                assert!(responses.iter().all(|r| r.status == 200));
                                served += responses.len() as u64;
                            }
                            Err(_) => client = HttpClient::connect(addr).expect("reconnect"),
                        }
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Hammers an admission-limited server: every client loops blocking
/// requests for `window`, recording admitted-request latencies (µs) and
/// counting shed 503s. Any status besides 200/503, any 503 without the
/// `shed` taxonomy code, or any admitted body differing from `reference`
/// panics the driving thread.
fn drive_overload(
    addr: std::net::SocketAddr,
    clients: usize,
    sql: &str,
    reference: &str,
    window: Duration,
) -> (Vec<u64>, u64) {
    let body = query_body(sql);
    let deadline = Instant::now() + window;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    let mut shed = 0u64;
                    while Instant::now() < deadline {
                        let start = Instant::now();
                        match client.post("/query", &body) {
                            Ok(resp) if resp.status == 200 => {
                                assert_eq!(resp.body, reference, "admitted answers must not drift");
                                latencies.push(start.elapsed().as_micros() as u64);
                            }
                            Ok(resp) => {
                                assert_eq!(resp.status, 503, "only 503 may refuse: {}", resp.body);
                                assert!(
                                    resp.body.contains("\"code\":\"shed\""),
                                    "503 must carry the shed taxonomy code: {}",
                                    resp.body
                                );
                                assert!(
                                    resp.header("retry-after").is_some(),
                                    "shed responses must set Retry-After"
                                );
                                shed += 1;
                            }
                            Err(_) => client = HttpClient::connect(addr).expect("reconnect"),
                        }
                    }
                    (latencies, shed)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut shed = 0u64;
        for h in handles {
            let (lat, s) = h.join().unwrap();
            all.extend(lat);
            shed += s;
        }
        (all, shed)
    })
}

/// p99 by sort (the sample sizes here are a few thousand at most).
fn p99_us(latencies: &mut [u64]) -> u64 {
    assert!(!latencies.is_empty(), "no admitted requests sampled");
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.saturating_sub(1)]
}

fn bench(c: &mut Criterion) {
    banner("PR 2: opine-server — concurrent loopback serving throughput");
    let measuring = std::env::args().any(|a| a == "--bench");

    let db = serving_db(if measuring { DB_ENTITIES } else { 32 });
    let server = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            // Throughput scenarios measure the serving path, not
            // admission: keep the budget above the client count so no
            // request sheds (the overload scenario below does the
            // opposite on purpose).
            max_in_flight: CLIENTS * 4,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    let workers = server.workers();

    // ---- correctness first: wire bytes == library path, all shapes ----
    let mut checker = HttpClient::connect(addr).expect("connect");
    for sql in [RUNNING_EXAMPLE, PURE_SUBJECTIVE, PROJECTED] {
        assert_byte_identical(&db, &mut checker, sql);
    }
    println!("correctness: 3 query shapes byte-identical to library-path execution");

    if !measuring {
        println!("smoke mode: correctness checks only, no timings recorded");
        let mut group = c.benchmark_group("serve_throughput");
        group.bench_function("warm_query_http", |b| {
            b.iter(|| {
                black_box(
                    checker
                        .post("/query", &query_body(RUNNING_EXAMPLE))
                        .unwrap(),
                )
            })
        });
        group.finish();
        return;
    }

    // ---- warm throughput: result cache hot, N concurrent clients ----
    let warmup = drive(addr, CLIENTS, RUNNING_EXAMPLE, Duration::from_millis(300));
    assert!(warmup > 0);
    let warm_served = drive(addr, CLIENTS, RUNNING_EXAMPLE, MEASURE_WINDOW);
    let warm_rps = warm_served as f64 / MEASURE_WINDOW.as_secs_f64();

    let piped_served = drive_pipelined(addr, CLIENTS, RUNNING_EXAMPLE, 32, MEASURE_WINDOW);
    let piped_rps = piped_served as f64 / MEASURE_WINDOW.as_secs_f64();

    // ---- warm single-client latency ----
    let body = query_body(RUNNING_EXAMPLE);
    let iters = 500;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(request_with_retry(
            &mut checker,
            addr,
            "POST",
            "/query",
            Some(&body),
        ));
    }
    let warm_latency_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;

    // ---- uncached serving: every request runs the full query path ----
    let uncached = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            max_in_flight: CLIENTS * 4,
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
    .expect("bind uncached server");
    // Prime the *engine* caches so this measures execution + serialization,
    // not one-time interpretation.
    let _ = drive(
        uncached.local_addr(),
        1,
        RUNNING_EXAMPLE,
        Duration::from_millis(200),
    );
    let uncached_served = drive(
        uncached.local_addr(),
        CLIENTS,
        RUNNING_EXAMPLE,
        MEASURE_WINDOW,
    );
    let uncached_rps = uncached_served as f64 / MEASURE_WINDOW.as_secs_f64();
    uncached.shutdown();

    // ---- overload: 2× sustained capacity against a small admission
    // budget. Shedding must absorb the excess (taxonomy 503s) and the
    // p99 of *admitted* requests must stay within 5× of uncontended.
    const OVERLOAD_BUDGET: usize = 2;
    let overload = OpineServer::bind(
        "127.0.0.1:0",
        db.clone(),
        ServerConfig {
            workers: CLIENTS,
            max_in_flight: OVERLOAD_BUDGET,
            // Uncached so every admitted request pays real execution —
            // a cache-hit overload test would measure nothing.
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
    .expect("bind overload server");
    let overload_addr = overload.local_addr();
    let select = parse_select(RUNNING_EXAMPLE).expect("valid SQL");
    let reference = render_query_body(&db, &select).expect("library path");
    // Prime engine caches, then measure uncontended p99 at exactly the
    // admission budget (no shedding, no queueing).
    let _ = drive(
        overload_addr,
        1,
        RUNNING_EXAMPLE,
        Duration::from_millis(200),
    );
    // On a single-core container, blocking clients serialize naturally
    // and requests never overlap in execution — no offered load would
    // ever shed. A delay-only failpoint pins each admitted execution at
    // 5 ms (sleeping, so workers genuinely overlap), giving the budget
    // a real sustained capacity to drive past. Armed for *both* the
    // uncontended and the 2× measurement so the p99 comparison is
    // apples to apples.
    opine_core::faults::configure("pre_ta=delay:5@1.0", 11).expect("valid overload spec");
    let (mut base_lat, base_shed) = drive_overload(
        overload_addr,
        OVERLOAD_BUDGET,
        RUNNING_EXAMPLE,
        &reference,
        MEASURE_WINDOW,
    );
    let base_p99_us = p99_us(&mut base_lat);
    assert_eq!(base_shed, 0, "at-capacity load must not shed");
    // Now 2× the budget: half the offered concurrency is excess.
    let (mut over_lat, over_shed) = drive_overload(
        overload_addr,
        OVERLOAD_BUDGET * 2,
        RUNNING_EXAMPLE,
        &reference,
        MEASURE_WINDOW,
    );
    let over_p99_us = p99_us(&mut over_lat);
    let admitted = over_lat.len() as u64;
    opine_core::faults::clear();
    overload.shutdown();
    assert!(
        over_shed > 0,
        "2× overload must shed the excess, served all {admitted} instead"
    );
    assert!(
        over_p99_us <= base_p99_us.max(1) * 5,
        "admitted p99 under overload ({over_p99_us} µs) must stay within 5× of \
         uncontended ({base_p99_us} µs) — admission control is not isolating load"
    );

    println!(
        "serving {DB_ENTITIES}-entity db, {workers} workers, {CLIENTS} clients:\n\
         \x20 warm (result cache)    {warm_rps:>10.0} req/s\n\
         \x20 warm pipelined (×32)   {piped_rps:>10.0} req/s\n\
         \x20 uncached execution     {uncached_rps:>10.0} req/s\n\
         \x20 warm latency           {warm_latency_us:>10.1} µs/req (single client)\n\
         \x20 overload (budget {OVERLOAD_BUDGET}, 2×): p99 {base_p99_us} µs → {over_p99_us} µs, \
         {admitted} admitted, {over_shed} shed",
    );
    assert!(
        warm_rps >= 1000.0,
        "acceptance: warm serving must exceed 1k req/s, got {warm_rps:.0}"
    );

    // ---- record for the PR ----
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"config\": {{\n    \"db_entities\": {DB_ENTITIES},\n    \"workers\": {workers},\n    \"clients\": {CLIENTS},\n    \"pipeline_depth\": 32,\n    \"measure_window_secs\": {:.3}\n  }},\n  \"requests_per_second\": {{\n    \"warm_result_cache\": {warm_rps:.1},\n    \"warm_pipelined\": {piped_rps:.1},\n    \"uncached_execution\": {uncached_rps:.1}\n  }},\n  \"latency\": {{\n    \"warm_single_client_us\": {warm_latency_us:.1}\n  }}\n}}\n",
        MEASURE_WINDOW.as_secs_f64()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(out, &json).expect("write BENCH_pr2.json");
    println!("wrote {out}");

    let overload_json = format!(
        "{{\n  \"bench\": \"serve_overload\",\n  \"config\": {{\n    \"db_entities\": {DB_ENTITIES},\n    \"workers\": {CLIENTS},\n    \"max_in_flight\": {OVERLOAD_BUDGET},\n    \"offered_clients\": {},\n    \"result_cache\": false,\n    \"measure_window_secs\": {:.3}\n  }},\n  \"uncontended\": {{\n    \"clients\": {OVERLOAD_BUDGET},\n    \"p99_us\": {base_p99_us},\n    \"admitted\": {},\n    \"shed\": {base_shed}\n  }},\n  \"overload_2x\": {{\n    \"p99_us\": {over_p99_us},\n    \"admitted\": {admitted},\n    \"shed\": {over_shed},\n    \"p99_ratio_vs_uncontended\": {:.2},\n    \"acceptance_p99_within_5x\": true\n  }}\n}}\n",
        OVERLOAD_BUDGET * 2,
        MEASURE_WINDOW.as_secs_f64(),
        base_lat.len(),
        over_p99_us as f64 / base_p99_us.max(1) as f64,
    );
    let out6 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(out6, &overload_json).expect("write BENCH_pr6.json");
    println!("wrote {out6}");

    // ---- criterion samples ----
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.bench_function("warm_query_http", |b| {
        b.iter(|| {
            black_box(request_with_retry(
                &mut checker,
                addr,
                "POST",
                "/query",
                Some(&body),
            ))
        })
    });
    group.bench_function("stats_endpoint", |b| {
        b.iter(|| {
            black_box(request_with_retry(
                &mut checker,
                addr,
                "GET",
                "/stats",
                None,
            ))
        })
    });
    group.finish();

    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
