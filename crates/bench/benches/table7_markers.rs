//! **Table 7** — marker summaries vs no markers: membership-function
//! (LR) accuracy, result quality, and runtime per 100 queries, plus the
//! marker-count (10 vs 4) and Threshold-Algorithm ablations from
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus, opine_rank, restaurant_corpus};
use opine_core::membership::{marker_features, scan_features};
use opine_core::topk::{full_scan_topk, threshold_topk};
use opine_core::OpineDb;
use opine_corpus::workload::{build_workload, hotel_workload, restaurant_workload};
use opine_corpus::Corpus;
use opine_eval::{generate_queries, workload_quality, EvalQuery, ObjectiveFilter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const TOP_K: usize = 10;
const QUERIES: usize = 50;

/// Held-out LR accuracy of both membership models, on fresh tuples.
fn lr_accuracy(db: &OpineDb, corpus: &Corpus, seed: u64) -> (f64, f64) {
    let bank = build_workload(&corpus.spec, 150);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut marker_tuples = Vec::new();
    let mut scan_tuples = Vec::new();
    for _ in 0..400 {
        let e = rng.gen_range(0..corpus.entities.len());
        let p = &bank[rng.gen_range(0..bank.len())];
        let label = p.satisfied_by(&corpus.entities[e], &corpus.spec);
        let mut q_rep = db.embedder().rep(&p.text, db.vocab());
        opine_embed::normalize(&mut q_rep);
        let q_sent = db.sentiment().score(&p.text);
        marker_tuples.push((
            marker_features(
                db.summary(e, p.gold_aspect),
                db.marker_set(p.gold_aspect),
                &q_rep,
                q_sent,
            ),
            label,
        ));
        let phrases = db.raw_phrases(e, p.gold_aspect);
        scan_tuples.push((scan_features(&phrases, &q_rep, q_sent), label));
    }
    (
        db.membership_markers().accuracy(&marker_tuples),
        db.membership_scan().accuracy(&scan_tuples),
    )
}

fn run_set(db: &OpineDb, corpus: &Corpus, queries: &[EvalQuery], label: &str) {
    // Warm the interpretation cache so both timed runs measure degree
    // computation (the thing markers accelerate), not one-off
    // interpretation that would otherwise bill to whichever runs first.
    for q in queries {
        for p in &q.predicates {
            db.interpret(&p.text);
        }
    }
    db.set_degree_cache(false);

    db.set_use_markers(true);
    let t0 = Instant::now();
    let quality_mk = workload_quality(queries, corpus, TOP_K, |q| opine_rank(db, q, TOP_K));
    let time_mk = t0.elapsed().as_secs_f64() * (100.0 / queries.len() as f64);

    db.set_use_markers(false);
    let t1 = Instant::now();
    let quality_scan = workload_quality(queries, corpus, TOP_K, |q| opine_rank(db, q, TOP_K));
    let time_scan = t1.elapsed().as_secs_f64() * (100.0 / queries.len() as f64);
    db.set_use_markers(true);
    db.set_degree_cache(true);

    let (acc_mk, acc_scan) = lr_accuracy(db, corpus, 77);
    println!(
        "{:<12} | 10-mkrs: LR-acc {:.2} NDCG@10 {:.2} runtime {:>7.2}s | no-mkrs: LR-acc {:.2} NDCG@10 {:.2} runtime {:>7.2}s | speedup {:.2}x",
        label, acc_mk, quality_mk, time_mk, acc_scan, quality_scan, time_scan,
        time_scan / time_mk.max(1e-9)
    );
}

fn bench(c: &mut Criterion) {
    banner("Table 7: marker summaries (10-mkrs) vs no markers (runtime per 100 queries)");
    let hotels = hotel_corpus();
    let hotel_db = build_db(&hotels);
    let h_bank = hotel_workload(&hotels.spec);
    run_set(
        &hotel_db,
        &hotels,
        &generate_queries(&h_bank, QUERIES, 4, ObjectiveFilter::LondonUnder300, 7),
        "London",
    );
    run_set(
        &hotel_db,
        &hotels,
        &generate_queries(&h_bank, QUERIES, 4, ObjectiveFilter::Amsterdam, 8),
        "Amsterdam",
    );
    let restaurants = restaurant_corpus();
    let rest_db = build_db(&restaurants);
    let r_bank = restaurant_workload(&restaurants.spec);
    run_set(
        &rest_db,
        &restaurants,
        &generate_queries(&r_bank, QUERIES, 4, ObjectiveFilter::LowPrice, 9),
        "Low-Price",
    );
    run_set(
        &rest_db,
        &restaurants,
        &generate_queries(&r_bank, QUERIES, 4, ObjectiveFilter::Japanese, 10),
        "JP Cuisine",
    );

    // Ablation: 4 markers instead of 10.
    let mut small_cfg = opine_bench::bench_build_config();
    small_cfg.markers_per_attribute = 4;
    let small_db = opine_core::build(&hotels, &small_cfg);
    let queries = generate_queries(&h_bank, QUERIES, 4, ObjectiveFilter::LondonUnder300, 7);
    let q4 = workload_quality(&queries, &hotels, TOP_K, |q| {
        opine_rank(&small_db, q, TOP_K)
    });
    let q10 = workload_quality(&queries, &hotels, TOP_K, |q| {
        opine_rank(&hotel_db, q, TOP_K)
    });
    println!("marker-count ablation (London medium): k=4 NDCG {q4:.2} vs k=10 NDCG {q10:.2}");

    // Ablation: Fagin's Threshold Algorithm vs full scan for fuzzy top-k.
    let preds = ["clean rooms", "friendly staff", "quiet room"];
    let lists: Vec<Vec<(usize, f64)>> = preds
        .iter()
        .map(|p| {
            let mut l: Vec<(usize, f64)> = (0..hotel_db.num_entities())
                .map(|e| (e, hotel_db.degree(e, p)))
                .collect();
            l.sort_by(|a, b| b.1.total_cmp(&a.1));
            l
        })
        .collect();
    let ta = threshold_topk(&lists, TOP_K);
    let fs = full_scan_topk(&lists, TOP_K);
    assert_eq!(
        ta.iter().map(|x| x.0).collect::<Vec<_>>(),
        fs.iter().map(|x| x.0).collect::<Vec<_>>()
    );
    println!("threshold-algorithm top-{TOP_K} matches full scan on 3-predicate conjunction ✓");

    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    group.bench_function("degree_with_markers", |b| {
        hotel_db.set_degree_cache(false);
        b.iter(|| black_box(hotel_db.degree(3, "clean rooms")));
        hotel_db.set_degree_cache(true);
    });
    group.bench_function("degree_no_markers_scan", |b| {
        hotel_db.set_degree_cache(false);
        hotel_db.set_use_markers(false);
        b.iter(|| black_box(hotel_db.degree(3, "clean rooms")));
        hotel_db.set_use_markers(true);
        hotel_db.set_degree_cache(true);
    });
    group.bench_function("threshold_topk", |b| {
        b.iter(|| black_box(threshold_topk(&lists, TOP_K)))
    });
    group.bench_function("full_scan_topk", |b| {
        b.iter(|| black_box(full_scan_topk(&lists, TOP_K)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
