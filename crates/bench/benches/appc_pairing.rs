//! **Appendix C** — pairing models of the opinion extractor: the
//! unsupervised rule-based linker vs the supervised classifier, on 1 000
//! train / 1 000 test sentence–phrase pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_corpus::hotel::hotel_spec;
use opine_corpus::pairing::pairing_dataset;
use opine_extract::PairingModel;
use opine_ml::LogRegConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner("Appendix C: pairing — rule-based vs supervised classifier");
    let spec = hotel_spec();
    let train = pairing_dataset(&spec, 1000, 41);
    let test = pairing_dataset(&spec, 1000, 43);

    // Rule-based: an (aspect, opinion) pair is accepted when separated by
    // at most the copula (gap ≤ 1 token).
    let rule_acc = test
        .iter()
        .filter(|e| {
            let gap = if e.aspect_span.1 <= e.opinion_span.0 {
                e.opinion_span.0 - e.aspect_span.1
            } else {
                e.aspect_span.0.saturating_sub(e.opinion_span.1)
            };
            (gap <= 1) == e.label
        })
        .count() as f64
        / test.len() as f64;

    let model = PairingModel::train(&train, &LogRegConfig::default());
    let sup_acc = model.accuracy(&test);

    println!("1000 train / 1000 test sentence-phrase pairs (hotel reviews):");
    println!(
        "  rule-based (parse-distance heuristic): {:.2}%",
        rule_acc * 100.0
    );
    println!(
        "  supervised classifier:                 {:.2}%",
        sup_acc * 100.0
    );
    println!(
        "-> the paper reports 83.87% for its supervised (BERT) model and notes the \
         rule-based method achieves comparable performance"
    );

    let mut group = c.benchmark_group("appc");
    group.sample_size(10);
    group.bench_function("train_pairing_model", |b| {
        b.iter(|| black_box(PairingModel::train(&train, &LogRegConfig::default())))
    });
    group.bench_function("classify_1000_pairs", |b| {
        b.iter(|| {
            let correct = test.iter().filter(|e| model.predict(e) == e.label).count();
            black_box(correct)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
