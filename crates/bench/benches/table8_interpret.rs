//! **Table 8** — predicate-interpretation accuracy: word2vec alone,
//! co-occurrence alone, and combined with the fallback threshold, plus the
//! θ1 threshold sweep from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus, restaurant_corpus};
use opine_core::{Interpretation, OpineDb};
use opine_corpus::workload::{hotel_workload, restaurant_workload, WorkloadPredicate};
use std::hint::black_box;

/// Top-1 attribute of an interpretation, if any.
fn top_attribute(interp: &Interpretation) -> Option<usize> {
    match interp {
        Interpretation::Direct { attribute, .. } => Some(*attribute),
        Interpretation::CoOccur { terms, .. } => terms.first().map(|&(a, _)| a),
        Interpretation::TextFallback => None,
    }
}

fn accuracies(db: &OpineDb, bank: &[WorkloadPredicate], fallback_theta: f32) -> (f64, f64, f64) {
    let mut w2v_ok = 0usize;
    let mut co_ok = 0usize;
    let mut combined_ok = 0usize;
    for p in bank {
        let w2v = db
            .interpreter()
            .word2vec_stage(&p.text, db.embedder(), db.vocab());
        if w2v.as_ref().and_then(top_attribute) == Some(p.gold_aspect) {
            w2v_ok += 1;
        }
        let co = db.interpreter().cooccurrence_stage(&p.text, db.vocab());
        if co.as_ref().and_then(top_attribute) == Some(p.gold_aspect) {
            co_ok += 1;
        }
        // Combined: accept the w2v answer only above the fallback
        // threshold, otherwise use the co-occurrence answer.
        let combined = match &w2v {
            Some(Interpretation::Direct { similarity, .. }) if *similarity >= fallback_theta => {
                w2v.clone()
            }
            _ => co.clone().or(w2v),
        };
        if combined.as_ref().and_then(top_attribute) == Some(p.gold_aspect) {
            combined_ok += 1;
        }
    }
    let n = bank.len() as f64;
    (
        100.0 * w2v_ok as f64 / n,
        100.0 * co_ok as f64 / n,
        100.0 * combined_ok as f64 / n,
    )
}

fn bench(c: &mut Criterion) {
    banner("Table 8: query-predicate interpretation accuracy (%)");
    let hotels = hotel_corpus();
    let hotel_db = build_db(&hotels);
    let restaurants = restaurant_corpus();
    let rest_db = build_db(&restaurants);
    let h_bank = hotel_workload(&hotels.spec);
    let r_bank = restaurant_workload(&restaurants.spec);

    println!(
        "{:<22} {:>5} {:>8} {:>10} {:>14}",
        "Query set", "size", "w2v", "co-occur", "w2v+co-occur"
    );
    for (label, db, bank) in [
        ("Hotel queries", &hotel_db, &h_bank),
        ("Restaurant queries", &rest_db, &r_bank),
    ] {
        let (w, co, comb) = accuracies(db, bank, 0.8);
        println!(
            "{label:<22} {:>5} {w:>7.2} {co:>9.2} {comb:>13.2}",
            bank.len()
        );
    }

    println!("\nθ1 fallback-threshold sweep (hotel queries, combined accuracy):");
    for theta in [0.5f32, 0.65, 0.8, 0.9] {
        let (_, _, comb) = accuracies(&hotel_db, &h_bank, theta);
        println!("  θ1 = {theta:.2} -> {comb:.2}%");
    }

    let mut group = c.benchmark_group("table8");
    group.sample_size(10);
    group.bench_function("interpret_bank_of_190", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in h_bank.iter().take(20) {
                if hotel_db
                    .interpreter()
                    .word2vec_stage(&p.text, hotel_db.embedder(), hotel_db.vocab())
                    .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
