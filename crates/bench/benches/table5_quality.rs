//! **Table 5** — query result quality (sat-normalized NDCG@10) of OpineDB
//! vs the GZ12 IR baseline, ByPrice, ByRating, and the 1-/2-attribute
//! oracle, over easy/medium/hard query sets × two objective variants per
//! domain. Also prints the product-vs-Gödel t-norm ablation called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus, opine_rank, restaurant_corpus};
use opine_core::OpineDb;
use opine_corpus::workload::{hotel_workload, restaurant_workload};
use opine_corpus::Corpus;
use opine_eval::{
    generate_queries, rank_by_price, rank_by_rating, workload_quality, EvalQuery, IrBaseline,
    KAttributeOracle, ObjectiveFilter,
};
use std::hint::black_box;

const QUERIES_PER_SET: usize = 60;
const TOP_K: usize = 10;

fn run_domain(corpus: &Corpus, db: &OpineDb, filters: [ObjectiveFilter; 2], bank_label: &str) {
    let bank = if corpus.spec.name == "hotel" {
        hotel_workload(&corpus.spec)
    } else {
        restaurant_workload(&corpus.spec)
    };
    let ir = IrBaseline::build(corpus, 7);
    let one_attr = KAttributeOracle::new(corpus, 1);
    let two_attr = KAttributeOracle::new(corpus, 2);

    println!("\n{bank_label}: quality (sat / sat-max) of the top-{TOP_K} result");
    println!(
        "{:<18} {:>22} {:>22}",
        "Method",
        format!("{} e/m/h", filters[0].label()),
        format!("{} e/m/h", filters[1].label())
    );

    let mut sets: Vec<(ObjectiveFilter, usize, Vec<EvalQuery>)> = Vec::new();
    for &f in &filters {
        for conjuncts in [2usize, 4, 7] {
            sets.push((
                f,
                conjuncts,
                generate_queries(
                    &bank,
                    QUERIES_PER_SET,
                    conjuncts,
                    f,
                    1000 + conjuncts as u64,
                ),
            ));
        }
    }

    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    type RankFn<'a> = Box<dyn Fn(&EvalQuery) -> Vec<usize> + 'a>;
    let methods: Vec<(&str, RankFn)> = vec![
        (
            "GZ12 (IR-based)",
            Box::new(|q: &EvalQuery| ir.rank(q, corpus)),
        ),
        (
            "ByPrice",
            Box::new(|q: &EvalQuery| rank_by_price(q, corpus)),
        ),
        (
            "ByRating",
            Box::new(|q: &EvalQuery| rank_by_rating(q, corpus)),
        ),
        (
            "1-Attribute",
            Box::new(|q: &EvalQuery| one_attr.rank(q, corpus, TOP_K)),
        ),
        (
            "2-Attribute",
            Box::new(|q: &EvalQuery| two_attr.rank(q, corpus, TOP_K)),
        ),
        (
            "OpineDB",
            Box::new(|q: &EvalQuery| opine_rank(db, q, TOP_K)),
        ),
    ];
    for (name, rank) in &methods {
        let scores: Vec<f64> = sets
            .iter()
            .map(|(_, _, queries)| workload_quality(queries, corpus, TOP_K, |q| rank(q)))
            .collect();
        rows.push((name, scores));
    }
    for (name, scores) in &rows {
        println!(
            "{:<18} {:>6.2} {:>6.2} {:>6.2}   {:>6.2} {:>6.2} {:>6.2}",
            name, scores[0], scores[1], scores[2], scores[3], scores[4], scores[5]
        );
    }

    // Ablation: Gödel (min/max) t-norm on the first medium set.
    let medium = &sets[1].2;
    let godel = workload_quality(medium, corpus, TOP_K, |q| {
        let sql = q.to_sql(db.entity_table(), TOP_K);
        db.query_with_algebra(&sql, opine_store::FuzzyAlgebra::Godel)
            .map(|out| {
                out.result
                    .rows
                    .iter()
                    .filter_map(|(row, _)| row[0].as_str().and_then(|k| db.entity_id(k)))
                    .collect()
            })
            .unwrap_or_default()
    });
    let product = workload_quality(medium, corpus, TOP_K, |q| opine_rank(db, q, TOP_K));
    println!(
        "t-norm ablation ({} medium): product = {product:.2}, godel(min/max) = {godel:.2}",
        sets[1].0.label()
    );
}

fn bench(c: &mut Criterion) {
    banner("Table 5: result quality — OpineDB vs baselines");
    let hotels = hotel_corpus();
    let hotel_db = build_db(&hotels);
    run_domain(
        &hotels,
        &hotel_db,
        [ObjectiveFilter::LondonUnder300, ObjectiveFilter::Amsterdam],
        "booking.com-style hotel dataset",
    );
    let restaurants = restaurant_corpus();
    let rest_db = build_db(&restaurants);
    run_domain(
        &restaurants,
        &rest_db,
        [ObjectiveFilter::LowPrice, ObjectiveFilter::Japanese],
        "yelp-style restaurant dataset",
    );

    // Criterion measurement: one hard OpineDB query end to end.
    let bank = hotel_workload(&hotels.spec);
    let queries = generate_queries(&bank, 10, 7, ObjectiveFilter::LondonUnder300, 99);
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("opinedb_hard_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(opine_rank(&hotel_db, q, TOP_K))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
