//! **Table 3** — percentage of subjective search criteria per domain,
//! from the (simulated) 30-worker × 7-criteria user survey.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_corpus::survey::run_survey;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner("Table 3: subjective attributes in different domains (simulated survey)");
    println!("{:<12} {:>10}   Some examples", "Domain", "%Subj.");
    for row in run_survey(30, 7, 42) {
        println!(
            "{:<12} {:>9.1}%   {}",
            row.domain,
            row.pct_subjective,
            row.examples.join(", ")
        );
    }

    let mut group = c.benchmark_group("table3");
    group.sample_size(20);
    group.bench_function("run_survey", |b| {
        b.iter(|| black_box(run_survey(30, 7, 42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
