//! **Figure 8 (Appendix D)** — the `room_quietness` marker summaries of
//! the top hotel returned by the IR baseline vs the one returned by
//! OpineDB for the query "quiet room": the IR winner matches the keyword
//! often but with mixed polarity; OpineDB's winner is concentrated on the
//! quiet markers.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, build_db, hotel_corpus, opine_rank};
use opine_core::OpineDb;
use opine_corpus::hotel::aspect::QUIETNESS;
use opine_corpus::workload::hotel_workload;
use opine_corpus::Corpus;
use opine_eval::{EvalQuery, IrBaseline, ObjectiveFilter};
use std::hint::black_box;

fn print_histogram(db: &OpineDb, corpus: &Corpus, entity: usize, label: &str) {
    let set = db.marker_set(QUIETNESS);
    let summary = db.summary(entity, QUIETNESS);
    println!(
        "{label}: {} (latent quietness θ = {:.2})",
        db.entity_key(entity),
        corpus.entities[entity].quality[QUIETNESS]
    );
    for (marker, count) in set.markers.iter().zip(summary.counts()) {
        let bar = "#".repeat((count as usize).min(60));
        println!("  {:<16} {:>5.1} {bar}", marker.phrase, count);
    }
}

fn bench(c: &mut Criterion) {
    banner("Figure 8: quietness summaries — IR baseline winner vs OpineDB winner");
    let corpus = hotel_corpus();
    let db = build_db(&corpus);
    let bank = hotel_workload(&corpus.spec);
    let quiet_pred = bank
        .iter()
        .find(|p| p.text == "quiet room")
        .expect("quiet room predicate")
        .clone();
    let query = EvalQuery {
        predicates: vec![quiet_pred],
        filter: ObjectiveFilter::None,
    };

    let ir = IrBaseline::build(&corpus, 7);
    let ir_top = ir.rank(&query, &corpus)[0];
    let opine_top = opine_rank(&db, &query, 10)[0];

    print_histogram(&db, &corpus, ir_top, "IR-based top-1");
    print_histogram(&db, &corpus, opine_top, "OpineDB top-1");
    println!(
        "-> OpineDB's winner should concentrate its histogram on the quiet/peaceful markers; \
         the IR winner merely *mentions* quietness often, whatever the polarity"
    );
    assert!(
        corpus.entities[opine_top].quality[QUIETNESS]
            >= corpus.entities[ir_top].quality[QUIETNESS] - 0.15,
        "OpineDB's winner must not be clearly noisier than IR's"
    );

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("quiet_room_query", |b| {
        b.iter(|| black_box(opine_rank(&db, &query, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
