//! **Figure 7 (Appendix A)** — fuzzy constraints vs hard constraints:
//! the iso-score curve `A1 ⊗ A2 = 0.06` vs the hard box
//! `A1 > 0.2 ∧ A2 > 0.3`, and how many candidate entities each admits.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::banner;
use opine_store::FuzzyAlgebra;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner("Figure 7: fuzzy (x·y ≥ 0.06) vs hard constraints (x > 0.2 ∧ y > 0.3)");
    let algebra = FuzzyAlgebra::Product;

    println!("iso-score boundary points of the fuzzy region (x, y = 0.06/x):");
    let mut series = Vec::new();
    for i in 1..=9 {
        let x = 0.1 * i as f64;
        let y = 0.06 / x;
        if y <= 1.0 {
            series.push((x, y));
        }
    }
    let rendered: Vec<String> = series
        .iter()
        .map(|(x, y)| format!("({x:.1}, {y:.2})"))
        .collect();
    println!("  {}", rendered.join(" "));

    // Count grid points admitted by each semantics.
    let mut fuzzy_only = 0usize;
    let mut both = 0usize;
    let mut hard_only = 0usize;
    let grid = 100usize;
    for ix in 0..grid {
        for iy in 0..grid {
            let x = (ix as f64 + 0.5) / grid as f64;
            let y = (iy as f64 + 0.5) / grid as f64;
            let fuzzy = algebra.and(x, y) >= 0.06;
            let hard = x > 0.2 && y > 0.3;
            match (fuzzy, hard) {
                (true, true) => both += 1,
                (true, false) => fuzzy_only += 1,
                (false, true) => hard_only += 1,
                _ => {}
            }
        }
    }
    println!(
        "grid of {grid}×{grid} candidates: both = {both}, fuzzy-only = {fuzzy_only}, hard-only = {hard_only}"
    );
    println!(
        "-> the fuzzy semantics admits {fuzzy_only} near-boundary candidates the hard \
         constraints discard (e.g. x = 0.19, y = 0.9), and loses only the {hard_only} \
         low-product corner points"
    );
    assert!(fuzzy_only > 0, "fuzzy region must extend beyond the box");

    let mut group = c.benchmark_group("fig7");
    group.bench_function("product_tnorm_grid", |b| {
        b.iter(|| {
            let mut admitted = 0usize;
            for ix in 0..100 {
                for iy in 0..100 {
                    let x = (ix as f64 + 0.5) / 100.0;
                    let y = (iy as f64 + 0.5) / 100.0;
                    if algebra.and(x, y) >= 0.06 {
                        admitted += 1;
                    }
                }
            }
            black_box(admitted)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
