//! **Table 6** — extractor quality: our embedding-feature tagger ("BERT
//! stand-in") vs the lexical-only prior-SOTA tagger on four labelled
//! datasets of the paper's sizes. Also prints the Sec. 4.2 attribute
//! classifier accuracies (seed expansion → weak supervision).

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, bench_build_config, hotel_corpus, restaurant_corpus};
use opine_corpus::absa::absa_datasets;
use opine_corpus::Corpus;
use opine_embed::{PhraseEmbedder, Word2Vec};
use opine_extract::seeds::seeds_from_spec;
use opine_extract::{expand_seeds, AttributeClassifier, EmbeddingClusters, Extractor};
use opine_ml::{LogRegConfig, TaggerConfig};
use opine_text::{split_sentences, tokenize, IdfModel, Vocab};
use std::hint::black_box;

/// Pre-trains word2vec on a corpus's unlabeled review text and clusters it.
fn pretrain_clusters(corpus: &Corpus, k: usize) -> (Vocab, Word2Vec) {
    let mut vocab = Vocab::new();
    let mut sentences = Vec::new();
    for review in &corpus.reviews {
        for s in split_sentences(&review.text) {
            sentences.push(vocab.intern_all(&tokenize(s)));
        }
    }
    let w2v = Word2Vec::train(&sentences, vocab.len(), &bench_build_config().w2v);
    let _ = k;
    (vocab, w2v)
}

fn bench(c: &mut Criterion) {
    banner("Table 6: extractor F1 (combined aspect/opinion) — SOTA vs ours");
    let hotels = hotel_corpus();
    let restaurants = restaurant_corpus();
    let (h_vocab, h_w2v) = pretrain_clusters(&hotels, 40);
    let (r_vocab, r_w2v) = pretrain_clusters(&restaurants, 40);
    let h_clusters = EmbeddingClusters::build(&h_w2v, &h_vocab, 40, 3);
    let r_clusters = EmbeddingClusters::build(&r_w2v, &r_vocab, 40, 3);

    println!(
        "{:<24} {:>6} {:>6} {:>12} {:>12}",
        "Dataset", "Train", "Test", "SOTA F1", "Our F1"
    );
    let datasets = absa_datasets(2024);
    let mut small_train_gap = None;
    for ds in &datasets {
        let clusters = if ds.name.contains("Hotel") {
            &h_clusters
        } else {
            &r_clusters
        };
        let cfg = TaggerConfig {
            epochs: 5,
            seed: 11,
        };
        let sota = Extractor::train(&ds.train, None, &cfg);
        let ours = Extractor::train(&ds.train, Some(clusters.clone()), &cfg);
        let f_sota = sota.combined_f1(&ds.test) * 100.0;
        let f_ours = ours.combined_f1(&ds.test) * 100.0;
        println!(
            "{:<24} {:>6} {:>6} {:>11.2}% {:>11.2}%",
            ds.name,
            ds.train.len(),
            ds.test.len(),
            f_sota,
            f_ours
        );
        if ds.name.contains("Hotel") {
            small_train_gap = Some(f_ours - f_sota);
        }
    }
    if let Some(gap) = small_train_gap {
        println!(
            "(pre-training margin on the smallest dataset: {gap:+.2} points — the paper's \
             transfer-learning effect)"
        );
    }

    // Sec. 4.2: attribute classifier accuracy from seed expansion.
    println!("\nAttribute classifier (weak supervision via seed expansion):");
    for (corpus, vocab, w2v) in [
        (&hotels, &h_vocab, &h_w2v),
        (&restaurants, &r_vocab, &r_w2v),
    ] {
        let mut idf = IdfModel::new(vocab);
        for review in &corpus.reviews {
            let toks: Vec<_> = tokenize(&review.text)
                .iter()
                .filter_map(|t| vocab.get(t))
                .collect();
            idf.add_document(&toks);
        }
        let embedder = PhraseEmbedder::new(w2v.clone(), idf);
        let seeds = seeds_from_spec(&corpus.spec, 0.6);
        let seed_count: usize = seeds
            .iter()
            .map(|s| s.aspect_terms.len() + s.opinion_terms.len())
            .sum();
        let records = expand_seeds(&seeds, w2v, vocab, 3, 0.35, 5000);
        let clf = AttributeClassifier::train(
            &records,
            corpus.spec.aspects.len(),
            &embedder,
            vocab,
            &LogRegConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        // Test on gold extraction pairs from the corpus (held-out labels).
        let test: Vec<(String, usize)> = corpus
            .reviews
            .iter()
            .take(400)
            .flat_map(|r| {
                r.gold
                    .iter()
                    .map(|g| (format!("{} {}", g.aspect_term, g.opinion_term), g.aspect))
                    .collect::<Vec<_>>()
            })
            .take(1000)
            .collect();
        let acc = clf.accuracy(&test, &embedder, vocab) * 100.0;
        println!(
            "  {:<12} {} attributes, {} seeds -> {} weak records, accuracy {:.2}%",
            corpus.spec.name,
            corpus.spec.aspects.len(),
            seed_count,
            records.len(),
            acc
        );
    }

    let ds_small = &datasets[3];
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("train_hotel_extractor", |b| {
        b.iter(|| {
            black_box(Extractor::train(
                &ds_small.train,
                None,
                &TaggerConfig { epochs: 2, seed: 1 },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
