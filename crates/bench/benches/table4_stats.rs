//! **Table 4** — review statistics per objective selection: number of
//! entities, reviews, average words per review, and average polarity.

use criterion::{criterion_group, criterion_main, Criterion};
use opine_bench::{banner, hotel_corpus, restaurant_corpus};
use opine_corpus::Corpus;
use opine_eval::ObjectiveFilter;
use opine_sentiment::SentimentAnalyzer;
use std::hint::black_box;

fn stats_row(corpus: &Corpus, filter: ObjectiveFilter, senti: &SentimentAnalyzer) {
    let entities: Vec<usize> = corpus
        .entities
        .iter()
        .filter(|e| filter.accepts(e))
        .map(|e| e.id)
        .collect();
    let reviews: Vec<&opine_corpus::Review> = corpus
        .reviews
        .iter()
        .filter(|r| entities.contains(&r.entity_id))
        .collect();
    let avg_words = reviews
        .iter()
        .map(|r| r.text.split_whitespace().count())
        .sum::<usize>() as f64
        / reviews.len().max(1) as f64;
    let avg_polarity =
        reviews.iter().map(|r| senti.score(&r.text)).sum::<f64>() / reviews.len().max(1) as f64;
    println!(
        "{:<16} {:>9} {:>9} {:>11.2} {:>13.2}",
        filter.label(),
        entities.len(),
        reviews.len(),
        avg_words,
        avg_polarity
    );
}

fn bench(c: &mut Criterion) {
    banner("Table 4: review statistics per selection");
    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>13}",
        "Selection", "#Entities", "#Reviews", "avg #words", "avg polarity"
    );
    let senti = SentimentAnalyzer::new();
    let hotels = hotel_corpus();
    stats_row(&hotels, ObjectiveFilter::LondonUnder300, &senti);
    stats_row(&hotels, ObjectiveFilter::Amsterdam, &senti);
    let restaurants = restaurant_corpus();
    stats_row(&restaurants, ObjectiveFilter::LowPrice, &senti);
    stats_row(&restaurants, ObjectiveFilter::Japanese, &senti);

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("sentiment_scoring_100_reviews", |b| {
        b.iter(|| {
            let total: f64 = hotels
                .reviews
                .iter()
                .take(100)
                .map(|r| senti.score(&r.text))
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
