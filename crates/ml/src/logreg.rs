//! Logistic regression trained with stochastic gradient descent.
//!
//! The binary model's probability output is used directly as a degree of
//! truth in OpineDB's membership functions: "we can directly use the
//! probability output as the membership function" (Sec. 3.3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed; training is deterministic for a given seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 17,
        }
    }
}

/// A binary logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Trains on `(features, label)` pairs; every feature vector must have
    /// the same length. Returns a zero model for an empty training set.
    pub fn train(data: &[(Vec<f64>, bool)], config: &LogRegConfig) -> Self {
        let dim = data.first().map(|(x, _)| x.len()).unwrap_or(0);
        assert!(
            data.iter().all(|(x, _)| x.len() == dim),
            "all feature vectors must have equal length"
        );
        let mut model = Self {
            weights: vec![0.0; dim],
            bias: 0.0,
        };
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = &data[i];
                let target = if *y { 1.0 } else { 0.0 };
                let p = model.predict_proba(x);
                let err = target - p;
                for (w, xi) in model.weights.iter_mut().zip(x) {
                    *w += config.learning_rate * (err * xi - config.l2 * *w);
                }
                model.bias += config.learning_rate * err;
            }
        }
        model
    }

    /// `P(label = true | x)` — a value in `(0, 1)`.
    ///
    /// A model trained on an empty set has no weights and returns 0.5 for
    /// any input; extra feature dimensions beyond the trained width are
    /// ignored.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard decision at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Learned weights (for inspection / tests).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fraction of correctly classified examples.
    pub fn accuracy(&self, data: &[(Vec<f64>, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }
}

/// One-vs-rest multiclass logistic regression.
#[derive(Debug, Clone)]
pub struct MulticlassLogReg {
    models: Vec<LogisticRegression>,
}

impl MulticlassLogReg {
    /// Trains `num_classes` one-vs-rest binary models.
    pub fn train(data: &[(Vec<f64>, usize)], num_classes: usize, config: &LogRegConfig) -> Self {
        let models = (0..num_classes)
            .map(|class| {
                let binary: Vec<(Vec<f64>, bool)> =
                    data.iter().map(|(x, y)| (x.clone(), *y == class)).collect();
                LogisticRegression::train(&binary, config)
            })
            .collect();
        Self { models }
    }

    /// The class with the highest one-vs-rest probability.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.scores(x)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Per-class probabilities (not normalized across classes).
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.predict_proba(x)).collect()
    }

    /// Fraction of correctly classified examples.
    pub fn accuracy(&self, data: &[(Vec<f64>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Vec<(Vec<f64>, bool)> {
        // y = x0 > x1
        let mut data = Vec::new();
        for i in 0..40 {
            let a = i as f64 / 40.0;
            data.push((vec![a + 1.0, a], true));
            data.push((vec![a, a + 1.0], false));
        }
        data
    }

    #[test]
    fn learns_separable_data() {
        let data = linearly_separable();
        let model = LogisticRegression::train(&data, &LogRegConfig::default());
        assert!(model.accuracy(&data) > 0.98);
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let data = linearly_separable();
        let model = LogisticRegression::train(&data, &LogRegConfig::default());
        for (x, _) in &data {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn confident_examples_get_extreme_probabilities() {
        let data = linearly_separable();
        let model = LogisticRegression::train(&data, &LogRegConfig::default());
        assert!(model.predict_proba(&[5.0, 0.0]) > 0.9);
        assert!(model.predict_proba(&[0.0, 5.0]) < 0.1);
    }

    #[test]
    fn empty_training_set_is_neutral() {
        let model = LogisticRegression::train(&[], &LogRegConfig::default());
        assert_eq!(model.predict_proba(&[]), 0.5);
    }

    #[test]
    fn training_is_deterministic() {
        let data = linearly_separable();
        let a = LogisticRegression::train(&data, &LogRegConfig::default());
        let b = LogisticRegression::train(&data, &LogRegConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn multiclass_learns_three_clusters() {
        let mut data = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.02;
            data.push((vec![1.0 + jitter, 0.0, 0.0], 0usize));
            data.push((vec![0.0, 1.0 + jitter, 0.0], 1));
            data.push((vec![0.0, 0.0, 1.0 + jitter], 2));
        }
        let model = MulticlassLogReg::train(&data, 3, &LogRegConfig::default());
        assert!(model.accuracy(&data) > 0.98);
        assert_eq!(model.predict(&[0.9, 0.1, 0.0]), 0);
        assert_eq!(model.predict(&[0.0, 0.9, 0.1]), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_features_panic() {
        let data = vec![(vec![1.0], true), (vec![1.0, 2.0], false)];
        let _ = LogisticRegression::train(&data, &LogRegConfig::default());
    }
}
