//! K-means clustering with k-means++ initialization.
//!
//! Used by OpineDB to suggest markers for *categorical* linguistic domains:
//! "OpineDB performs k-means clustering on the linguistic domain.
//! Afterwards, OpineDB suggests a set of markers by selecting the linguistic
//! variations that correspond to the centroid of each cluster" (Sec. 4.2.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clustering hyper-parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iters: 50,
            seed: 23,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
    assignments: Vec<usize>,
}

impl KMeans {
    /// Clusters `points` into at most `config.k` groups.
    ///
    /// If there are fewer points than `k`, every point becomes its own
    /// cluster. Returns an empty result for no points.
    pub fn fit(points: &[Vec<f32>], config: &KMeansConfig) -> Self {
        if points.is_empty() {
            return Self {
                centroids: Vec::new(),
                assignments: Vec::new(),
            };
        }
        let k = config.k.min(points.len()).max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];

        for _ in 0..config.max_iters {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = nearest_centroid(p, &centroids);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids as cluster means.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                counts[assignments[i]] += 1;
                for (s, x) in sums[assignments[i]].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.iter().map(|s| s / *count as f32).collect();
                }
            }
            if !changed {
                break;
            }
        }

        Self {
            centroids,
            assignments,
        }
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Cluster index assigned to each input point, in input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Number of clusters actually produced.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the input point closest to each centroid — the "linguistic
    /// variation that corresponds to the centroid" used as a marker.
    pub fn medoid_indices(&self, points: &[Vec<f32>]) -> Vec<usize> {
        self.centroids
            .iter()
            .map(|c| {
                points
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| sq_dist(a, c).total_cmp(&sq_dist(b, c)))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

fn kmeanspp_init(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        // Sample proportional to squared distance from nearest centroid.
        let dists: Vec<f32> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let total: f32 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[0].clone());
            continue;
        }
        let mut target = rng.gen::<f32>() * total;
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

fn nearest_centroid(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| sq_dist(p, a).total_cmp(&sq_dist(p, b)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let j = i as f32 * 0.01;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 0.0]);
            pts.push(vec![0.0 + j, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = three_blobs();
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(km.k(), 3);
        // Points 0,3,6,... (first blob) must share a cluster.
        let first = km.assignments()[0];
        for i in (0..30).step_by(3) {
            assert_eq!(km.assignments()[i], first);
        }
        // And differ from the second blob's cluster.
        assert_ne!(km.assignments()[0], km.assignments()[1]);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let km = KMeans::fit(&[], &KMeansConfig::default());
        assert_eq!(km.k(), 0);
        assert!(km.assignments().is_empty());
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let pts = three_blobs();
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        for (cluster, &medoid) in km.medoid_indices(&pts).iter().enumerate() {
            assert_eq!(km.assignments()[medoid], cluster);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = three_blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let a = KMeans::fit(&pts, &cfg);
        let b = KMeans::fit(&pts, &cfg);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let km = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(km.k() >= 1);
    }
}
