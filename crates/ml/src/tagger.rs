//! Averaged structured perceptron for sequence tagging with Viterbi decode.
//!
//! This is OpineDB's CPU stand-in for the BERT+BiLSTM+CRF tagging model of
//! Sec. 4.1: a globally-normalized linear model over per-token features and
//! tag-transition weights, trained with the averaged perceptron update
//! (Collins 2002). "Pre-training" enters through the caller's features —
//! `opine-extract` adds embedding-cluster features from a word2vec model
//! trained on the unlabeled review corpus, mirroring BERT's transfer
//! learning; the prior-SOTA baseline omits them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TaggerConfig {
    /// Training epochs (passes over the shuffled data).
    pub epochs: usize,
    /// Shuffle seed; training is deterministic for a given seed.
    pub seed: u64,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            seed: 29,
        }
    }
}

/// A trained sequence tagger.
///
/// Tags are dense `usize` ids chosen by the caller (e.g. BIO tags);
/// features are arbitrary strings, interned internally.
#[derive(Debug, Clone)]
pub struct SequenceTagger {
    num_tags: usize,
    feature_index: HashMap<String, usize>,
    /// Flat `[feature][tag]` emission weights.
    weights: Vec<f64>,
    /// `[prev_tag][tag]` transition weights; row `num_tags` is the start.
    transitions: Vec<f64>,
}

/// One training sentence: per-token feature strings plus gold tags.
pub type TaggedSentence = (Vec<Vec<String>>, Vec<usize>);

impl SequenceTagger {
    /// Trains on `sentences` with tags in `0..num_tags`.
    pub fn train(sentences: &[TaggedSentence], num_tags: usize, config: &TaggerConfig) -> Self {
        assert!(num_tags > 0, "need at least one tag");
        for (feats, tags) in sentences {
            assert_eq!(feats.len(), tags.len(), "feature/tag length mismatch");
            assert!(tags.iter().all(|&t| t < num_tags), "tag out of range");
        }

        // Intern all features up front so weight vectors are flat arrays.
        let mut feature_index: HashMap<String, usize> = HashMap::new();
        for (feats, _) in sentences {
            for token_feats in feats {
                for f in token_feats {
                    let next = feature_index.len();
                    feature_index.entry(f.clone()).or_insert(next);
                }
            }
        }
        let num_features = feature_index.len();

        let mut model = Self {
            num_tags,
            feature_index,
            weights: vec![0.0; num_features * num_tags],
            transitions: vec![0.0; (num_tags + 1) * num_tags],
        };

        // Averaged-perceptron accumulators (lazy-averaging trick).
        let mut w_totals = vec![0.0; model.weights.len()];
        let mut w_stamps = vec![0u64; model.weights.len()];
        let mut t_totals = vec![0.0; model.transitions.len()];
        let mut t_stamps = vec![0u64; model.transitions.len()];
        let mut step: u64 = 1;

        let mut order: Vec<usize> = (0..sentences.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (feats, gold) = &sentences[i];
                if feats.is_empty() {
                    continue;
                }
                let feat_ids = model.intern_features(feats);
                let predicted = model.viterbi(&feat_ids);
                if &predicted != gold {
                    model.update(
                        &feat_ids,
                        gold,
                        &predicted,
                        step,
                        &mut w_totals,
                        &mut w_stamps,
                        &mut t_totals,
                        &mut t_stamps,
                    );
                }
                step += 1;
            }
        }

        // Finalize averaging.
        for (idx, w) in model.weights.iter_mut().enumerate() {
            w_totals[idx] += (step - w_stamps[idx]) as f64 * *w;
            *w = w_totals[idx] / step as f64;
        }
        for (idx, t) in model.transitions.iter_mut().enumerate() {
            t_totals[idx] += (step - t_stamps[idx]) as f64 * *t;
            *t = t_totals[idx] / step as f64;
        }

        model
    }

    /// Predicts a tag per token given per-token feature strings.
    pub fn predict(&self, features: &[Vec<String>]) -> Vec<usize> {
        if features.is_empty() {
            return Vec::new();
        }
        let feat_ids = self.intern_features(features);
        self.viterbi(&feat_ids)
    }

    /// Number of distinct features seen at training time.
    pub fn num_features(&self) -> usize {
        self.feature_index.len()
    }

    fn intern_features(&self, features: &[Vec<String>]) -> Vec<Vec<usize>> {
        features
            .iter()
            .map(|token_feats| {
                token_feats
                    .iter()
                    .filter_map(|f| self.feature_index.get(f).copied())
                    .collect()
            })
            .collect()
    }

    fn emission(&self, feat_ids: &[usize], tag: usize) -> f64 {
        feat_ids
            .iter()
            .map(|&f| self.weights[f * self.num_tags + tag])
            .sum()
    }

    #[inline]
    fn trans(&self, prev: usize, tag: usize) -> f64 {
        self.transitions[prev * self.num_tags + tag]
    }

    fn viterbi(&self, feat_ids: &[Vec<usize>]) -> Vec<usize> {
        let n = feat_ids.len();
        let t = self.num_tags;
        let start = t; // start row in the transition matrix
        let mut score = vec![f64::NEG_INFINITY; n * t];
        let mut back = vec![0usize; n * t];

        for (tag, slot) in score.iter_mut().enumerate().take(t) {
            *slot = self.trans(start, tag) + self.emission(&feat_ids[0], tag);
        }
        for pos in 1..n {
            for tag in 0..t {
                let emit = self.emission(&feat_ids[pos], tag);
                let mut best = f64::NEG_INFINITY;
                let mut best_prev = 0;
                for prev in 0..t {
                    let s = score[(pos - 1) * t + prev] + self.trans(prev, tag);
                    if s > best {
                        best = s;
                        best_prev = prev;
                    }
                }
                score[pos * t + tag] = best + emit;
                back[pos * t + tag] = best_prev;
            }
        }

        let mut last = (0..t)
            .max_by(|&a, &b| score[(n - 1) * t + a].total_cmp(&score[(n - 1) * t + b]))
            .unwrap_or(0);
        let mut tags = vec![0usize; n];
        tags[n - 1] = last;
        for pos in (1..n).rev() {
            last = back[pos * t + last];
            tags[pos - 1] = last;
        }
        tags
    }

    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        feat_ids: &[Vec<usize>],
        gold: &[usize],
        predicted: &[usize],
        step: u64,
        w_totals: &mut [f64],
        w_stamps: &mut [u64],
        t_totals: &mut [f64],
        t_stamps: &mut [u64],
    ) {
        let t = self.num_tags;
        let mut bump_w = |weights: &mut [f64], idx: usize, delta: f64| {
            w_totals[idx] += (step - w_stamps[idx]) as f64 * weights[idx];
            w_stamps[idx] = step;
            weights[idx] += delta;
        };
        for (pos, feats) in feat_ids.iter().enumerate() {
            if gold[pos] == predicted[pos] {
                continue;
            }
            for &f in feats {
                bump_w(&mut self.weights, f * t + gold[pos], 1.0);
                bump_w(&mut self.weights, f * t + predicted[pos], -1.0);
            }
        }
        let mut bump_t = |transitions: &mut [f64], idx: usize, delta: f64| {
            t_totals[idx] += (step - t_stamps[idx]) as f64 * transitions[idx];
            t_stamps[idx] = step;
            transitions[idx] += delta;
        };
        let start = t;
        for pos in 0..gold.len() {
            let gold_prev = if pos == 0 { start } else { gold[pos - 1] };
            let pred_prev = if pos == 0 { start } else { predicted[pos - 1] };
            let g = gold_prev * t + gold[pos];
            let p = pred_prev * t + predicted[pos];
            if g != p {
                bump_t(&mut self.transitions, g, 1.0);
                bump_t(&mut self.transitions, p, -1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tags: 0 = O, 1 = NOUN-ish, 2 = ADJ-ish, driven by suffix features.
    fn toy_data() -> Vec<TaggedSentence> {
        let mk = |words: &[(&str, usize)]| -> TaggedSentence {
            let feats = words
                .iter()
                .map(|(w, _)| vec![format!("w={w}"), format!("suf={}", &w[w.len().min(2)..])])
                .collect();
            let tags = words.iter().map(|(_, t)| *t).collect();
            (feats, tags)
        };
        vec![
            mk(&[("the", 0), ("room", 1), ("clean", 2)]),
            mk(&[("the", 0), ("bed", 1), ("soft", 2)]),
            mk(&[("a", 0), ("room", 1), ("dirty", 2)]),
            mk(&[("a", 0), ("bed", 1), ("clean", 2)]),
            mk(&[("the", 0), ("staff", 1), ("kind", 2)]),
        ]
    }

    #[test]
    fn learns_training_data() {
        let data = toy_data();
        let tagger = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        for (feats, gold) in &data {
            assert_eq!(&tagger.predict(feats), gold);
        }
    }

    #[test]
    fn generalizes_via_shared_features() {
        let data = toy_data();
        let tagger = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        // "the staff clean": "staff" and "clean" were seen with tags 1 and 2.
        let feats: Vec<Vec<String>> = ["the", "staff", "clean"]
            .iter()
            .map(|w| vec![format!("w={w}")])
            .collect();
        assert_eq!(tagger.predict(&feats), vec![0, 1, 2]);
    }

    #[test]
    fn empty_sentence_predicts_empty() {
        let data = toy_data();
        let tagger = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        assert!(tagger.predict(&[]).is_empty());
    }

    #[test]
    fn unknown_features_fall_back_to_transitions() {
        let data = toy_data();
        let tagger = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        let feats = vec![vec!["w=zzz".to_string()]; 3];
        let tags = tagger.predict(&feats);
        assert_eq!(tags.len(), 3);
        assert!(tags.iter().all(|&t| t < 3));
    }

    #[test]
    fn deterministic_for_seed() {
        let data = toy_data();
        let a = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        let b = SequenceTagger::train(&data, 3, &TaggerConfig::default());
        let feats: Vec<Vec<String>> = ["the", "room", "soft"]
            .iter()
            .map(|w| vec![format!("w={w}")])
            .collect();
        assert_eq!(a.predict(&feats), b.predict(&feats));
    }

    #[test]
    #[should_panic(expected = "tag out of range")]
    fn out_of_range_tag_panics() {
        let data = vec![(vec![vec!["a".to_string()]], vec![5usize])];
        let _ = SequenceTagger::train(&data, 3, &TaggerConfig::default());
    }

    #[test]
    fn viterbi_respects_learned_transitions() {
        // Train with a strict 0→1 alternation and ambiguous emissions.
        let mut data = Vec::new();
        for _ in 0..20 {
            data.push((
                vec![vec!["x".to_string()], vec!["x".to_string()]],
                vec![0usize, 1],
            ));
        }
        let tagger = SequenceTagger::train(&data, 2, &TaggerConfig::default());
        assert_eq!(
            tagger.predict(&[vec!["x".to_string()], vec!["x".to_string()]]),
            vec![0, 1]
        );
    }
}
