//! Evaluation metrics: span-exact F1, accuracy, and discounted gain.

use std::collections::HashSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanScore {
    /// Fraction of predicted spans that are correct.
    pub precision: f64,
    /// Fraction of gold spans that were predicted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Exact-match span F1, as used for the extractor evaluation (Sec. 5.4.1):
/// "an aspect/opinion term is considered correctly extracted only when the
/// extracted term matches exactly with the ground truth term".
///
/// Spans are `(start, end)` token ranges, end exclusive. Inputs are
/// per-sentence span sets; sentences are aligned by position.
pub fn span_f1(gold: &[Vec<(usize, usize)>], predicted: &[Vec<(usize, usize)>]) -> SpanScore {
    assert_eq!(gold.len(), predicted.len(), "sentence counts must match");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fneg = 0usize;
    for (g, p) in gold.iter().zip(predicted) {
        let gset: HashSet<_> = g.iter().collect();
        let pset: HashSet<_> = p.iter().collect();
        tp += gset.intersection(&pset).count();
        fp += pset.difference(&gset).count();
        fneg += gset.difference(&pset).count();
    }
    let precision = safe_div(tp as f64, (tp + fp) as f64);
    let recall = safe_div(tp as f64, (tp + fneg) as f64);
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    SpanScore {
        precision,
        recall,
        f1,
    }
}

/// Classification accuracy over `(predicted, gold)` pairs.
pub fn accuracy<T: PartialEq>(pairs: &[(T, T)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs.iter().filter(|(p, g)| p == g).count();
    correct as f64 / pairs.len() as f64
}

/// Discounted cumulative gain at `k`: `Σ_j gain[j] / log2(j + 2)`.
///
/// `gains[j]` is the gain of the item at rank `j` (0-based), matching the
/// paper's `1/log2(j+1)` for 1-based ranks in the sat(Q,E) metric.
pub fn dcg_at_k(gains: &[f64], k: usize) -> f64 {
    gains
        .iter()
        .take(k)
        .enumerate()
        .map(|(j, g)| g / ((j as f64 + 2.0).log2()))
        .sum()
}

fn safe_div(n: f64, d: f64) -> f64 {
    if d == 0.0 {
        0.0
    } else {
        n / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let gold = vec![vec![(0, 2), (3, 4)]];
        let s = span_f1(&gold, &gold);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn partial_overlap_counts_as_miss() {
        let gold = vec![vec![(0, 2)]];
        let pred = vec![vec![(0, 3)]];
        let s = span_f1(&gold, &pred);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn half_right_prediction() {
        let gold = vec![vec![(0, 1), (2, 3)]];
        let pred = vec![vec![(0, 1)]];
        let s = span_f1(&gold, &pred);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_everything_is_zero() {
        let s = span_f1(&[vec![]], &[vec![]]);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let pairs = vec![(1, 1), (2, 3), (4, 4), (5, 5)];
        assert_eq!(accuracy(&pairs), 0.75);
        let empty: Vec<(u8, u8)> = vec![];
        assert_eq!(accuracy(&empty), 0.0);
    }

    #[test]
    fn dcg_discounts_by_rank() {
        // gain 1 at rank 0 → 1/log2(2) = 1; at rank 1 → 1/log2(3).
        let d = dcg_at_k(&[1.0, 1.0], 2);
        assert!((d - (1.0 + 1.0 / 3f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn dcg_truncates_at_k() {
        assert_eq!(dcg_at_k(&[1.0, 1.0, 1.0], 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "sentence counts")]
    fn mismatched_sentence_counts_panic() {
        let _ = span_f1(&[vec![]], &[]);
    }
}
