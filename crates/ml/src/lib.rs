//! Machine-learning substrate for OpineDB, implemented from scratch.
//!
//! * [`LogisticRegression`] — binary logistic regression trained with SGD;
//!   the paper uses its probability output directly as a fuzzy membership
//!   function (Sec. 3.3) and as the supervised pairing model (Appendix C).
//! * [`MulticlassLogReg`] — one-vs-rest wrapper used by the attribute
//!   classifier (Sec. 4.2).
//! * [`KMeans`] — k-means++ clustering used to suggest categorical markers
//!   (Sec. 4.2.1).
//! * [`tagger`] — an averaged structured perceptron with Viterbi decoding;
//!   OpineDB's stand-in for the BERT+BiLSTM+CRF tagging model (Sec. 4.1).
//! * [`metrics`] — span F1, accuracy, and NDCG used throughout Sec. 5.

pub mod kmeans;
pub mod logreg;
pub mod metrics;
pub mod tagger;

pub use kmeans::{KMeans, KMeansConfig};
pub use logreg::{LogRegConfig, LogisticRegression, MulticlassLogReg};
pub use metrics::{accuracy, dcg_at_k, span_f1, SpanScore};
pub use tagger::{SequenceTagger, TaggerConfig};
