//! Fixture-corpus regression tests: each lint rule has a planted-violation
//! fixture that must fail with a pointed diagnostic, and an annotated twin
//! that must pass clean. Fixtures live under `crates/lint/fixtures/` —
//! outside any `src/`, so the production workspace walk never sees them —
//! and are fed through the same `Workspace` the CLI uses, under synthetic
//! paths that put them in each rule's scope.

use opine_lint::{run_all, run_rule, Finding, Workspace};

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    )
}

fn rule_findings(path: &str, src: &str, rule: &str) -> Vec<Finding> {
    run_rule(&ws(&[(path, src)]), rule)
}

/// Every finding must point somewhere actionable: real path, nonzero
/// line, the rule name, and a non-empty hint.
fn assert_pointed(findings: &[Finding], path: &str, rule: &str) {
    assert!(!findings.is_empty(), "expected at least one {rule} finding");
    for f in findings {
        assert_eq!(f.path, path);
        assert!(f.line > 0, "finding must carry a line: {f}");
        assert_eq!(f.rule, rule);
        assert!(!f.hint.is_empty(), "finding must carry a hint: {f}");
    }
}

#[test]
fn relaxed_hygiene_fixture_pair() {
    let path = "crates/core/src/flags.rs";
    let bad = rule_findings(
        path,
        include_str!("../fixtures/relaxed_hygiene_bad.rs"),
        "relaxed_hygiene",
    );
    assert_pointed(&bad, path, "relaxed_hygiene");
    assert_eq!(
        bad.len(),
        2,
        "one Relaxed + one Release violation: {bad:#?}"
    );
    assert!(bad[0].message.contains("dirty.store(Ordering::Relaxed)"));
    assert!(bad[1].message.contains("Ordering::Release"));

    let ok = rule_findings(
        path,
        include_str!("../fixtures/relaxed_hygiene_ok.rs"),
        "relaxed_hygiene",
    );
    assert!(ok.is_empty(), "annotated twin must pass: {ok:#?}");
}

#[test]
fn checkpoint_coverage_fixture_pair() {
    // The rule only applies to registered hot-path files.
    let path = "crates/core/src/topk.rs";
    let bad_src = include_str!("../fixtures/checkpoint_coverage_bad.rs");
    let bad = rule_findings(path, bad_src, "checkpoint_coverage");
    assert_pointed(&bad, path, "checkpoint_coverage");
    assert_eq!(bad.len(), 2, "outer and inner loop both flagged: {bad:#?}");

    // The same source under a cold-path filename is out of scope.
    let cold = rule_findings("crates/corpus/src/gen.rs", bad_src, "checkpoint_coverage");
    assert!(cold.is_empty(), "cold files are exempt: {cold:#?}");

    let ok = rule_findings(
        path,
        include_str!("../fixtures/checkpoint_coverage_ok.rs"),
        "checkpoint_coverage",
    );
    assert!(
        ok.is_empty(),
        "checkpointed + annotated twin must pass: {ok:#?}"
    );
}

#[test]
fn no_panic_in_serve_fixture_pair() {
    let path = "crates/server/src/respond.rs";
    let bad_src = include_str!("../fixtures/no_panic_in_serve_bad.rs");
    let bad = rule_findings(path, bad_src, "no_panic_in_serve");
    assert_pointed(&bad, path, "no_panic_in_serve");
    assert_eq!(bad.len(), 3, "indexing + unwrap + panic!: {bad:#?}");
    let messages: Vec<&str> = bad.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("headers[..]")));
    assert!(messages.iter().any(|m| m.contains(".unwrap()")));
    assert!(messages.iter().any(|m| m.contains("panic!")));

    // The same source outside the server tree is out of scope.
    let cold = rule_findings("crates/core/src/respond.rs", bad_src, "no_panic_in_serve");
    assert!(cold.is_empty(), "non-server files are exempt: {cold:#?}");

    let ok = rule_findings(
        path,
        include_str!("../fixtures/no_panic_in_serve_ok.rs"),
        "no_panic_in_serve",
    );
    assert!(ok.is_empty(), "hardened twin must pass: {ok:#?}");
}

#[test]
fn counter_parity_fixture_pair() {
    // The rule reads fields() from the registered db path.
    let path = "crates/core/src/db.rs";
    let bad = rule_findings(
        path,
        include_str!("../fixtures/counter_parity_bad.rs"),
        "counter_parity",
    );
    assert_pointed(&bad, path, "counter_parity");
    assert_eq!(bad.len(), 1, "{bad:#?}");
    assert!(bad[0].message.contains("`misses`"));
    assert!(bad[0].message.contains("never incremented"));

    let ok = rule_findings(
        path,
        include_str!("../fixtures/counter_parity_ok.rs"),
        "counter_parity",
    );
    assert!(
        ok.is_empty(),
        "twin with both increments must pass: {ok:#?}"
    );
}

#[test]
fn counter_parity_catches_renderer_drift() {
    // /metrics hand-rolls its output instead of walking fields().
    let workspace = ws(&[
        (
            "crates/core/src/db.rs",
            include_str!("../fixtures/counter_parity_ok.rs"),
        ),
        (
            "crates/server/src/service.rs",
            r#"
fn render_stats(state: &ServerState) -> String {
    let mut out = String::new();
    for (name, _field) in state.db.cache_report().fields() {
        out.push_str(name);
    }
    out
}

fn render_prometheus(_state: &ServerState) -> String {
    String::from("hand-rolled output that will drift")
}
"#,
        ),
    ]);
    let findings = run_rule(&workspace, "counter_parity");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0]
        .message
        .contains("`render_prometheus` does not render from CacheReport::fields()"));
}

#[test]
fn counter_parity_catches_unopened_trace_stage() {
    let workspace = ws(&[
        (
            "crates/trace/src/lib.rs",
            r#"pub const STAGES: &[&str] = &["parse", "rank"];"#,
        ),
        (
            "crates/core/src/topk.rs",
            r#"
pub fn run(ctx: &TraceContext) {
    let _span = ctx.span("parse");
}
"#,
        ),
    ]);
    let findings = run_rule(&workspace, "counter_parity");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("\"rank\""));
    assert!(findings[0].message.contains("never opened"));
}

#[test]
fn taxonomy_fixture_pair() {
    // The rule anchors on the service module path.
    let path = "crates/server/src/service.rs";
    let bad = rule_findings(
        path,
        include_str!("../fixtures/taxonomy_bad.rs"),
        "taxonomy_exhaustiveness",
    );
    assert_pointed(&bad, path, "taxonomy_exhaustiveness");
    assert_eq!(bad.len(), 2, "{bad:#?}");
    let messages: Vec<&str> = bad.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("418")), "{messages:?}");
    assert!(
        messages.iter().any(|m| m.contains("\"gone\"")),
        "{messages:?}"
    );

    let ok = rule_findings(
        path,
        include_str!("../fixtures/taxonomy_ok.rs"),
        "taxonomy_exhaustiveness",
    );
    assert!(ok.is_empty(), "covering twin must pass: {ok:#?}");
}

#[test]
fn lock_hold_fixture_pair() {
    let path = "crates/core/src/cache.rs";
    let bad = rule_findings(
        path,
        include_str!("../fixtures/lock_hold_bad.rs"),
        "lock_hold",
    );
    assert_pointed(&bad, path, "lock_hold");
    assert_eq!(bad.len(), 1, "{bad:#?}");
    assert!(bad[0].message.contains("guard `from`"));

    let ok = rule_findings(
        path,
        include_str!("../fixtures/lock_hold_ok.rs"),
        "lock_hold",
    );
    assert!(
        ok.is_empty(),
        "scoped / dropped / annotated twins must pass: {ok:#?}"
    );
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let src = r#"
pub fn f(a: &Mutex<u64>, b: &Mutex<u64>) {
    let first = a.lock().unwrap();
    // lint:allow(lock_hold)
    let second = b.lock().unwrap();
    *second = *first;
}
"#;
    let findings = run_all(&ws(&[("crates/core/src/cache.rs", src)]));
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "annotation" && f.message.contains("reason")),
        "a reason-less allow must be rejected: {findings:#?}"
    );
    // And the malformed allow must NOT suppress the underlying finding.
    assert!(
        findings.iter().any(|f| f.rule == "lock_hold"),
        "{findings:#?}"
    );
}

#[test]
fn allow_with_unknown_rule_name_is_a_finding() {
    let src = r#"
// lint:allow(lock_hodl, reason = "typo'd rule names must not silently disable nothing")
pub fn f() {}
"#;
    let findings = run_all(&ws(&[("crates/core/src/cache.rs", src)]));
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "annotation");
    assert!(findings[0].message.contains("lock_hodl"));
}

#[test]
fn the_real_workspace_is_clean() {
    // The repo itself must lint clean — this is the same invariant CI
    // enforces via `opine-lint --deny-all`, kept here too so plain
    // `cargo test` catches a regression without the extra CI step.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let workspace = Workspace::load(&root).expect("walk workspace sources");
    assert!(
        workspace.files.len() > 50,
        "workspace walk looks truncated: {} files",
        workspace.files.len()
    );
    let findings = run_all(&workspace);
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
