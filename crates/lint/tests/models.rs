//! Model-checker regression tests: the correct protocol models must pass
//! exhaustively (the bounded state space is fully explored), the broken
//! mutants must produce a counterexample trace, and verdicts must not
//! depend on the exploration seed.

use opine_lint::model::check;
use opine_lint::models::{CacheModel, HistogramModel, PermitModel, SnapshotCellModel};

const SEEDS: [u64; 4] = [1, 7, 99, 0xDEAD_BEEF];

#[test]
fn permit_cas_never_over_admits() {
    for seed in SEEDS {
        let stats = check(&PermitModel::correct(), seed)
            .unwrap_or_else(|v| panic!("unexpected counterexample (seed {seed}): {}", v.reason));
        assert!(
            stats.states > 1_000,
            "state space looks truncated: {} states",
            stats.states
        );
    }
}

#[test]
fn permit_cas_three_threads_four_cycles_exhaustive() {
    // The issue's acceptance bound: 3 threads each doing 4 acquire /
    // release (or shed) rounds against a budget of 2.
    let model = PermitModel {
        threads: 3,
        limit: 2,
        cycles: 4,
        broken: false,
    };
    let stats =
        check(&model, 1).unwrap_or_else(|v| panic!("unexpected counterexample: {}", v.reason));
    assert!(
        stats.states > 10_000,
        "3 threads x 4 cycles should dwarf the default bound, got {} states",
        stats.states
    );
}

#[test]
fn permit_blind_store_mutant_is_counterexampled() {
    for seed in SEEDS {
        let v = check(&PermitModel::broken(), seed)
            .expect_err("check-then-act permit mutant must over-admit");
        assert!(!v.trace.is_empty(), "counterexample must carry a trace");
        assert!(
            v.reason.contains("in_flight") || v.reason.contains("admission"),
            "pointed reason expected, got: {}",
            v.reason
        );
    }
}

#[test]
fn bounded_cache_is_never_torn() {
    for seed in SEEDS {
        check(&CacheModel::correct(), seed)
            .unwrap_or_else(|v| panic!("unexpected counterexample (seed {seed}): {}", v.reason));
    }
    let v = check(&CacheModel::broken(), 1)
        .expect_err("lockless two-slot write mutant must produce a torn read");
    assert!(v.reason.contains("torn"), "{}", v.reason);
    assert!(!v.trace.is_empty());
}

#[test]
fn histogram_snapshot_guard_is_load_bearing() {
    // With the count-recheck fallback (what metrics.rs::quantile_us
    // does), torn snapshots are detected and discarded: passes.
    check(&HistogramModel::guarded(), 1)
        .unwrap_or_else(|v| panic!("guarded histogram must pass: {}", v.reason));
    // Without it, the checker finds the torn (count, buckets) view —
    // validating that the model is strong enough to notice.
    let v =
        check(&HistogramModel::torn(), 1).expect_err("unguarded snapshot must be counterexampled");
    assert!(v.reason.contains("torn"), "{}", v.reason);
}

#[test]
fn snapshot_cell_is_linearizable_at_bounds() {
    for seed in SEEDS {
        let stats = check(&SnapshotCellModel::correct(), seed)
            .unwrap_or_else(|v| panic!("unexpected counterexample (seed {seed}): {}", v.reason));
        assert!(stats.states > 100, "{} states", stats.states);
    }
    let v = check(&SnapshotCellModel::broken(), 1)
        .expect_err("unlocked two-step publish must be counterexampled");
    assert!(v.reason.contains("torn"), "{}", v.reason);
}

#[test]
fn verdicts_are_seed_independent() {
    // The seed may only permute exploration order; with exhaustive
    // search the verdict — and the reachable state count — must agree.
    let baseline = check(&CacheModel::correct(), 1).expect("passes");
    for seed in SEEDS {
        let stats = check(&CacheModel::correct(), seed).expect("passes at every seed");
        assert_eq!(stats.states, baseline.states, "seed {seed}");
        assert_eq!(stats.transitions, baseline.transitions, "seed {seed}");
    }
}
