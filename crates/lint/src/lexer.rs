//! A minimal Rust lexer for opine-lint.
//!
//! This is not a conforming Rust lexer; it is just faithful enough for
//! token-pattern lints: identifiers, integer/float literals, string and
//! char literals (including raw and byte strings), lifetimes, single-char
//! punctuation, and — crucially — comments, which carry the annotation
//! grammar (`lint:allow(...)` / `sync: ...`). Every token records the
//! 1-based line it starts on so diagnostics stay clickable.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    /// String or char literal; `text` holds the raw contents without quotes.
    Str,
    Lifetime,
    /// Single ASCII punctuation character in `text`.
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] as char == ch
    }

    /// Integer value for plain decimal literals (ignoring `_` and a type
    /// suffix). Returns `None` for hex/octal/binary — the only numeric
    /// values lints inspect are HTTP status codes, which are decimal.
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokKind::Int {
            return None;
        }
        let digits: String = self
            .text
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .filter(|c| *c != '_')
            .collect();
        if digits.is_empty()
            || self.text.starts_with("0x")
            || self.text.starts_with("0b")
            || self.text.starts_with("0o")
        {
            return None;
        }
        digits.parse().ok()
    }
}

#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//` / `/* */` markers (and without any
    /// doc-comment `/`/`!` prefix), trimmed.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether anything other than whitespace has appeared on the
    // current line yet, so comments can be classified as own-line or EOL.
    let mut line_clean = true;

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            line_clean = true;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i + 2;
            let mut end = start;
            while end < bytes.len() && bytes[end] != b'\n' {
                end += 1;
            }
            let mut body = &src[start..end];
            // Strip doc-comment markers (`///`, `//!`).
            while body.starts_with('/') || body.starts_with('!') {
                body = &body[1..];
            }
            comments.push(Comment {
                text: body.trim().to_string(),
                line,
                own_line: line_clean,
            });
            line_clean = false;
            i = end;
            continue;
        }

        // Block comment (nested, possibly multi-line).
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            let own = line_clean;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'\n' {
                    line += 1;
                    j += 1;
                } else if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            let mut body = &src[start..end.min(src.len())];
            while body.starts_with('*') || body.starts_with('!') {
                body = &body[1..];
            }
            comments.push(Comment {
                text: body.trim().to_string(),
                line: start_line,
                own_line: own,
            });
            line_clean = false;
            i = j;
            continue;
        }

        line_clean = false;

        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < bytes.len() && bytes[j] == b'r' {
                j += 1;
            }
            let raw = c == 'r' || (j > i + 1);
            let mut hashes = 0usize;
            if raw {
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if j < bytes.len() && bytes[j] == b'"' && (raw || c == 'b') {
                let content_start = j + 1;
                let mut k = content_start;
                let start_line = line;
                'scan: while k < bytes.len() {
                    if bytes[k] == b'\n' {
                        line += 1;
                        k += 1;
                        continue;
                    }
                    if !raw && bytes[k] == b'\\' {
                        k += 2;
                        continue;
                    }
                    if bytes[k] == b'"' {
                        if hashes == 0 {
                            break 'scan;
                        }
                        let mut h = 0usize;
                        while k + 1 + h < bytes.len() && bytes[k + 1 + h] == b'#' && h < hashes {
                            h += 1;
                        }
                        if h == hashes {
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                let content_end = k.min(src.len());
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: src[content_start.min(src.len())..content_end].to_string(),
                    line: start_line,
                });
                i = (k + 1 + hashes).min(bytes.len());
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: src[start..j].to_string(),
                line,
            });
            i = j;
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            let mut is_float = false;
            if c == '0' && j < bytes.len() && matches!(bytes[j], b'x' | b'b' | b'o') {
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
            } else {
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                    j += 1;
                }
                // Fraction — but not the start of a `..` range.
                if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                        j += 1;
                    }
                }
                // Exponent.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (u64, f32, usize, ...).
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    if bytes[j] == b'f' {
                        is_float = true;
                    }
                    j += 1;
                }
            }
            tokens.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: src[start..j].to_string(),
                line,
            });
            i = j;
            continue;
        }

        // String literal.
        if c == '"' {
            let start_line = line;
            let content_start = i + 1;
            let mut j = content_start;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == b'\n' {
                    line += 1;
                }
                if bytes[j] == b'"' {
                    break;
                }
                j += 1;
            }
            tokens.push(Token {
                kind: TokKind::Str,
                text: src[content_start.min(src.len())..j.min(src.len())].to_string(),
                line: start_line,
            });
            i = j + 1;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let j = i + 1;
            if j < bytes.len() {
                let next = bytes[j] as char;
                if next.is_ascii_alphabetic() || next == '_' {
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_')
                    {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k] == b'\'' && k == j + 1 {
                        // 'a' — single-char literal.
                        tokens.push(Token {
                            kind: TokKind::Str,
                            text: src[j..k].to_string(),
                            line,
                        });
                        i = k + 1;
                        continue;
                    }
                    // Lifetime: 'a, 'static, '_ ...
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[j..k].to_string(),
                        line,
                    });
                    i = k;
                    continue;
                }
                // Escaped or punctuation char literal: '\n', '\\', '\'', '{', ...
                let mut k = j;
                if bytes[k] == b'\\' {
                    k += 2;
                    // \u{...}
                    if k <= bytes.len() && k >= 1 && bytes[k - 1] == b'{' {
                        while k < bytes.len() && bytes[k] != b'}' {
                            k += 1;
                        }
                        k += 1;
                    }
                } else {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'\'' {
                    tokens.push(Token {
                        kind: TokKind::Str,
                        text: src[j..k].to_string(),
                        line,
                    });
                    i = k + 1;
                    continue;
                }
            }
            // Stray quote — treat as punctuation and move on.
            tokens.push(Token {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            });
            i += 1;
            continue;
        }

        tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_paths() {
        let toks = kinds("Ordering::Relaxed");
        assert_eq!(toks[0], (TokKind::Ident, "Ordering".into()));
        assert_eq!(toks[1], (TokKind::Punct, ":".into()));
        assert_eq!(toks[2], (TokKind::Punct, ":".into()));
        assert_eq!(toks[3], (TokKind::Ident, "Relaxed".into()));
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|t| *t == (TokKind::Int, "0".into())));
        assert!(toks.iter().any(|t| *t == (TokKind::Int, "10".into())));
        assert!(!toks.iter().any(|t| t.0 == TokKind::Float));
    }

    #[test]
    fn floats_and_suffixes() {
        let toks = kinds("1.5 2e3 404u16 0xff");
        assert_eq!(toks[0].0, TokKind::Float);
        assert_eq!(toks[1].0, TokKind::Float);
        assert_eq!(toks[2], (TokKind::Int, "404u16".into()));
        let lexed = lex("404u16 404 0x194");
        assert_eq!(lexed.tokens[0].int_value(), Some(404));
        assert_eq!(lexed.tokens[1].int_value(), Some(404));
        assert_eq!(lexed.tokens[2].int_value(), None);
        assert_eq!(toks[3], (TokKind::Int, "0xff".into()));
    }

    #[test]
    fn strings_raw_strings_chars_lifetimes() {
        let toks = kinds(
            r####"let s = "a\"b"; let r = r#"raw "quoted""#; let c = 'x'; let nl = '\n'; fn f<'a>() {}"####,
        );
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Str)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(strs, vec![r#"a\"b"#, r#"raw "quoted""#, "x", r"\n"]);
        assert!(toks.iter().any(|t| *t == (TokKind::Lifetime, "a".into())));
    }

    #[test]
    fn comments_capture_and_own_line() {
        let lexed = lex("let x = 1; // eol note\n// own line\nlet y = 2;\n/* block */ let z = 3;");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].text, "eol note");
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].text, "own line");
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[2].text, "block");
        assert!(lexed.comments[2].own_line);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let lexed = lex("/* outer /* inner */ still */\nlet a = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn doc_comment_markers_stripped() {
        let lexed = lex("/// docs here\n//! inner docs\ncode();");
        assert_eq!(lexed.comments[0].text, "docs here");
        assert_eq!(lexed.comments[1].text, "inner docs");
    }

    #[test]
    fn byte_strings() {
        let toks = kinds(r##"b"bytes" br#"raw bytes"# x"##);
        assert_eq!(toks[0], (TokKind::Str, "bytes".into()));
        assert_eq!(toks[1], (TokKind::Str, "raw bytes".into()));
    }
}
