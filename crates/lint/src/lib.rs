//! opine-lint: workspace invariant lints + a bounded-interleaving model
//! checker for the opinedb workspace's lock-free protocols.
//!
//! The lint pass enforces, deny-by-default, the invariants the serving
//! and query paths established by convention:
//!
//! * `relaxed_hygiene` — every `Ordering::Relaxed` is a registered
//!   monotonic counter or justified; stronger orderings state what they
//!   pair with.
//! * `checkpoint_coverage` — data-proportional loops on the query path
//!   call `Deadline::checkpoint()` so 504s stay honest.
//! * `counter_parity` — every `CacheReport::fields()` counter has an
//!   increment site and both /stats and /metrics render from `fields()`;
//!   every declared trace stage is opened.
//! * `no_panic_in_serve` — no unannotated unwrap/expect/panic!/indexing
//!   in server request-handling modules.
//! * `taxonomy_exhaustiveness` — emitted HTTP statuses and the JSON
//!   error taxonomy cover each other exactly.
//! * `lock_hold` — no lock guard held across another lock acquisition.
//!
//! Escape hatch: `// lint:allow(<rule>, reason = "...")`. EOL placement
//! covers that line; own-line placement covers the next construct
//! through its block. Ordering sites may instead carry
//! `// sync: <what this orders>`.

pub mod lexer;
pub mod model;
pub mod models;
pub mod registry;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use scan::FileScan;

#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

pub struct Workspace {
    pub files: Vec<FileScan>,
}

impl Workspace {
    /// Build a workspace from in-memory sources — the fixture corpus and
    /// tests feed synthetic files through the same path production uses.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<FileScan> = sources
            .into_iter()
            .map(|(path, src)| FileScan::new(path, &src))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Load every `.rs` under `crates/*/src`, `shims/*/src`, and the
    /// facade `src/` of the workspace root. Fixture corpora (anything
    /// outside `src/`) are deliberately not walked.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources = Vec::new();
        for group in ["crates", "shims"] {
            let dir = root.join(group);
            if !dir.is_dir() {
                continue;
            }
            let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for krate in entries {
                let src = krate.join("src");
                if src.is_dir() {
                    collect_rs(&src, root, &mut sources)?;
                }
            }
        }
        let facade = root.join("src");
        if facade.is_dir() {
            collect_rs(&facade, root, &mut sources)?;
        }
        Ok(Workspace::from_sources(sources))
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Run every rule plus annotation validation over the workspace.
/// Output is stable: sorted by (path, line, rule, message).
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.files {
        findings.extend(f.bad_annotations.iter().cloned());
        // Unknown rule names in allow annotations are themselves findings
        // (a typo would otherwise silently disable nothing).
        for a in &f.allows {
            if !rules::RULES.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: a.lo,
                    rule: "annotation",
                    message: format!("lint:allow references unknown rule `{}`", a.rule),
                    hint: format!("known rules: {}", rules::RULES.join(", ")),
                });
            }
        }
        findings.extend(rules::relaxed_hygiene(f));
        findings.extend(rules::checkpoint_coverage(f));
        findings.extend(rules::no_panic_in_serve(f));
        findings.extend(rules::lock_hold(f));
    }
    findings.extend(rules::counter_parity(ws));
    findings.extend(rules::taxonomy_exhaustiveness(ws));
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings
}

/// Findings restricted to one rule — fixture self-tests use this.
pub fn run_rule(ws: &Workspace, rule: &str) -> Vec<Finding> {
    run_all(ws).into_iter().filter(|f| f.rule == rule).collect()
}
