//! Project-specific knowledge the rules consult: which atomics are
//! registered monotonic counters, where the hot data-proportional loops
//! live, which modules serve requests, and how metric names map to the
//! fields that back them.

/// Atomics that are pure monotonic counters or saturating gauges:
/// `Relaxed` `fetch_add`/`fetch_max`/`load` on these needs no
/// justification, because no other memory is published through them —
/// readers only ever see a possibly-stale count.
pub const MONOTONIC_COUNTERS: &[&str] = &[
    // core::cache::BoundedCache
    "hits",
    "misses",
    // core::db::Db query-class counters
    "ta_queries",
    "pushdown_queries",
    "qualified_queries",
    "timed_out_queries",
    // ir::index WAND counters
    "wand_queries",
    "exhaustive_queries",
    "blocks_skipped",
    // faults crate injection counter
    "INJECTED",
    // core::db ingest counters (writer-side bumps, reader-side report)
    "inserted_reviews",
    "delta_merges",
    "failed_merges",
    // server::service counters
    "shed_requests",
    "caught_panics",
    "next_conn_id",
    // server::metrics histogram cells (monotone per-cell; torn snapshots
    // are handled explicitly by HistogramSnapshot::quantile_us)
    "buckets",
    "count",
    "sum_us",
    "max_us",
    "requests",
    "errors",
    "connections",
    // trace::StageAgg accumulation cells
    "calls",
    "elapsed_us",
    "counters",
];

/// Atomic methods that are read-only or pure accumulation: safe under
/// `Relaxed` when the receiver is a registered monotonic counter.
pub const COUNTER_METHODS: &[&str] = &["fetch_add", "fetch_max", "load"];

/// Metric name → field identifier, where they differ. Counter-parity
/// resolves a `fields()` metric name to the identifier its increments
/// use before searching for bump sites.
pub const COUNTER_ALIASES: &[(&str, &str)] = &[
    ("filtered_summary_queries", "qualified_queries"),
    ("faults_injected", "INJECTED"),
];

/// Files whose loops are data-proportional (per-document / per-block /
/// per-posting work): top-k pivoting, WAND block skipping, summary
/// merging, rescoring, and the parallel worker shim. Loops of
/// consequence here must hit `Deadline::checkpoint()`.
pub const HOT_LOOP_FILES: &[&str] = &[
    "crates/core/src/topk.rs",
    "crates/core/src/summary.rs",
    "crates/core/src/db.rs",
    "crates/core/src/ingest.rs",
    "crates/core/src/par.rs",
    "crates/ir/src/index.rs",
];

/// Loop bodies spanning fewer lines than this are assumed
/// O(small-constant) setup work and exempt from checkpoint-coverage.
pub const CHECKPOINT_MIN_BODY_LINES: u32 = 5;

/// Server modules on the request path: a panic here is a 500 (or a
/// ragged connection) for a customer, so unwrap/expect/panic!/indexing
/// must be annotated or removed.
pub const SERVE_PATH_PREFIX: &str = "crates/server/src/";

/// Panicking macros flagged by no-panic-in-serve. `debug_assert*` is
/// exempt: compiled out of release builds.
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Where the JSON error taxonomy lives and which file may emit statuses.
pub const TAXONOMY_FILE_SUFFIX: &str = "server/src/service.rs";
pub const TAXONOMY_CONST: &str = "ERROR_TAXONOMY";

/// The metrics-definition sites counter-parity parses.
pub const FIELDS_FILE_SUFFIX: &str = "core/src/db.rs";
pub const STAGES_FILE_SUFFIX: &str = "trace/src/lib.rs";
pub const SERVICE_FILE_SUFFIX: &str = "server/src/service.rs";

/// Lock-acquiring method names (parking_lot shim + std Mutex): a `let`
/// guard bound from one of these must not outlive a call into another.
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
