//! The six invariant lints. Each rule is deny-by-default; escape hatches
//! are `// lint:allow(<rule>, reason = "...")` (EOL for one line,
//! own-line for the following construct) and, for ordering sites,
//! `// sync: <what this orders>`.

use std::collections::HashSet;

use crate::lexer::{TokKind, Token};
use crate::registry::*;
use crate::scan::FileScan;
use crate::{Finding, Workspace};

pub const RULES: &[&str] = &[
    "relaxed_hygiene",
    "checkpoint_coverage",
    "counter_parity",
    "no_panic_in_serve",
    "taxonomy_exhaustiveness",
    "lock_hold",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Walk back from `from` to the opening `(` of the call the token at
/// `from` is an argument of. Returns the index of that `(`, or None if a
/// statement boundary is hit first (e.g. a `use` import of an Ordering
/// variant is not a call site).
fn enclosing_call_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                return if t.is_punct('(') { Some(j) } else { None };
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return None;
        }
    }
    None
}

/// Given the index of a call's opening `(`, extract `(receiver, method)`
/// for a `recv.method(...)` chain. The receiver is the nearest field or
/// binding identifier, skipping back over `[idx]` / `(args)` links.
fn call_receiver_method(toks: &[Token], open: usize) -> (String, String) {
    if open == 0 || toks[open - 1].kind != TokKind::Ident {
        return ("?".into(), "?".into());
    }
    let method = toks[open - 1].text.clone();
    let mut r = open.wrapping_sub(2);
    if open < 2 || !toks[r].is_punct('.') {
        return ("?".into(), method);
    }
    // toks[r] is the '.', step to what precedes it.
    if r == 0 {
        return ("?".into(), method);
    }
    r -= 1;
    // Skip balanced `)`/`]` groups (chained calls, index expressions).
    loop {
        if toks[r].is_punct(')') || toks[r].is_punct(']') {
            let mut depth = 0usize;
            loop {
                let t = &toks[r];
                if t.is_punct(')') || t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if r == 0 {
                    return ("?".into(), method);
                }
                r -= 1;
            }
            if r == 0 {
                return ("?".into(), method);
            }
            r -= 1;
            // A call like `registry().lock()` → the ident before `(` is
            // the receiver-producing function; fall through to ident.
            continue;
        }
        break;
    }
    if toks[r].kind == TokKind::Ident {
        (toks[r].text.clone(), method)
    } else {
        ("?".into(), method)
    }
}

/// relaxed-hygiene: every `Ordering::Relaxed` site must be a registered
/// monotonic counter or carry a `// sync:` justification; every
/// Acquire/Release/AcqRel/SeqCst site must state what it orders.
pub fn relaxed_hygiene(f: &FileScan) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: HashSet<(u32, String, String)> = HashSet::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !ORDERINGS.contains(&t.text.as_str()) {
            continue;
        }
        // Qualified `Ordering::<Variant>` — the only unambiguous form;
        // `std::cmp::Ordering` variants (Less/Equal/Greater) never collide.
        let qualified = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Ordering");
        // Bare variant in argument position, for files that
        // `use ...::Ordering::Relaxed` directly (e.g. ir::index).
        let bare = !qualified
            && i >= 1
            && i + 1 < toks.len()
            && (toks[i - 1].is_punct('(') || toks[i - 1].is_punct(','))
            && (toks[i + 1].is_punct(')') || toks[i + 1].is_punct(','));
        if !qualified && !bare {
            continue;
        }
        if f.in_test(t.line) {
            continue;
        }
        let anchor = if qualified { i - 3 } else { i };
        let open = match enclosing_call_open(toks, anchor) {
            Some(o) => o,
            None => continue, // `use` import or const position, not a call site
        };
        let (receiver, method) = call_receiver_method(toks, open);
        if !seen.insert((t.line, t.text.clone(), method.clone())) {
            continue;
        }
        let lo = f.stmt_start_line(i);
        let hi = t.line;
        if f.allowed("relaxed_hygiene", lo, hi) {
            continue;
        }
        if t.text == "Relaxed" {
            let counter_ok = COUNTER_METHODS.contains(&method.as_str())
                && MONOTONIC_COUNTERS.contains(&receiver.as_str());
            if counter_ok || f.synced(lo, hi) {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "relaxed_hygiene",
                message: format!(
                    "`{receiver}.{method}(Ordering::Relaxed)` is not a registered monotonic counter and has no justification"
                ),
                hint: "register the field in registry::MONOTONIC_COUNTERS if it is a pure counter, add `// sync: <why relaxed is safe>`, or use a stronger ordering".into(),
            });
        } else {
            if f.synced(lo, hi) {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "relaxed_hygiene",
                message: format!(
                    "`{receiver}.{method}(Ordering::{})` does not state what it synchronizes",
                    t.text
                ),
                hint: "add `// sync: <what this pairs with>` on the statement or the line above"
                    .into(),
            });
        }
    }
    out
}

/// checkpoint-coverage: data-proportional loops in the hot files must
/// contain a `Deadline::checkpoint()` so request deadlines stay honest.
pub fn checkpoint_coverage(f: &FileScan) -> Vec<Finding> {
    if !HOT_LOOP_FILES
        .iter()
        .any(|h| f.path == *h || f.path.ends_with(h))
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        let is_loop_kw = t.is_ident("for") || t.is_ident("while") || t.is_ident("loop");
        if !is_loop_kw || f.in_test(t.line) {
            continue;
        }
        // `impl Trait for Type` — not a loop.
        if t.is_ident("for")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct('>'))
        {
            continue;
        }
        // Find the body's opening brace at bracket depth 0.
        let mut depth = 0isize;
        let mut open = None;
        for (off, u) in toks[i + 1..].iter().enumerate() {
            if u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && u.is_punct('{') {
                open = Some(i + 1 + off);
                break;
            } else if depth == 0 && u.is_punct(';') {
                break;
            }
        }
        let open = match open {
            Some(o) => o,
            None => continue,
        };
        let close = f.matching_brace(open);
        let body_lines = toks[close].line.saturating_sub(toks[open].line);
        if body_lines < CHECKPOINT_MIN_BODY_LINES {
            continue;
        }
        let has_checkpoint = toks[open..close]
            .iter()
            .any(|u| u.is_ident("checkpoint") || u.is_ident("checkpoint_now"));
        if has_checkpoint || f.allowed("checkpoint_coverage", t.line, t.line) {
            continue;
        }
        out.push(Finding {
            path: f.path.clone(),
            line: t.line,
            rule: "checkpoint_coverage",
            message: format!(
                "data-proportional loop (body spans {body_lines} lines) without Deadline::checkpoint()"
            ),
            hint: "call `deadline.checkpoint()` (or checkpoint_now) inside the loop, or annotate with lint:allow(checkpoint_coverage, reason = \"...\") if the trip count is bounded".into(),
        });
    }
    out
}

/// no-panic-in-serve: unwrap/expect/panicking macros/indexing in the
/// server's request-handling modules must be annotated or removed —
/// a panic there is a customer-visible 500.
pub fn no_panic_in_serve(f: &FileScan) -> Vec<Finding> {
    if !f.path.contains(SERVE_PATH_PREFIX) && !f.path.contains("server/src/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test(t.line) {
            continue;
        }
        let lo = f.stmt_start_line(i);
        let hi = t.line;
        // `.unwrap()` / `.expect(`
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            if f.allowed("no_panic_in_serve", lo, hi) {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "no_panic_in_serve",
                message: format!("`.{}()` can panic on the request path", t.text),
                hint: "return a typed error (taxonomy-mapped) instead, or annotate with lint:allow(no_panic_in_serve, reason = \"...\") if the invariant is locally provable".into(),
            });
            continue;
        }
        // panicking macros (debug_assert* is compiled out of release)
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
        {
            if f.allowed("no_panic_in_serve", lo, hi) {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "no_panic_in_serve",
                message: format!("`{}!` panics on the request path", t.text),
                hint: "convert to a typed error or debug_assert!, or annotate with a reason".into(),
            });
            continue;
        }
        // indexing: `expr[...]` — panics on out-of-bounds
        if t.is_punct('[')
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
        {
            if f.allowed("no_panic_in_serve", lo, hi) {
                continue;
            }
            let what = if toks[i - 1].kind == TokKind::Ident {
                format!("`{}[..]`", toks[i - 1].text)
            } else {
                "indexing".to_string()
            };
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "no_panic_in_serve",
                message: format!("{what} can panic on out-of-bounds access on the request path"),
                hint: "use .get()/.get_mut() with explicit handling, or annotate with the bounds argument".into(),
            });
        }
    }
    out
}

/// Parse the `CacheReport::fields()` body in core/db.rs, returning
/// `(metric name, kind ident, line)` triples.
fn parse_fields(db: &FileScan) -> Vec<(String, String, u32)> {
    let toks = &db.tokens;
    let mut out = Vec::new();
    let Some(fn_idx) = toks
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("fields"))
    else {
        return out;
    };
    let Some(open_off) = toks[fn_idx..].iter().position(|t| t.is_punct('{')) else {
        return out;
    };
    let open = fn_idx + open_off;
    let close = db.matching_brace(open);
    for j in open..close.saturating_sub(3) {
        if toks[j].kind == TokKind::Str
            && toks[j + 1].is_punct(',')
            && toks[j + 2].kind == TokKind::Ident
            && matches!(
                toks[j + 2].text.as_str(),
                "Counter" | "Gauge" | "Flag" | "Cache"
            )
            && toks[j + 3].is_punct('(')
        {
            out.push((toks[j].text.clone(), toks[j + 2].text.clone(), toks[j].line));
        }
    }
    out
}

/// counter-parity: every `CacheReport::fields()` counter has ≥1
/// increment site; /stats and /metrics both render from `fields()`;
/// every declared trace stage is opened somewhere.
pub fn counter_parity(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();

    if let Some(db) = ws
        .files
        .iter()
        .find(|f| f.path.ends_with(FIELDS_FILE_SUFFIX))
    {
        let fields = parse_fields(db);
        for (name, kind, line) in &fields {
            if kind != "Counter" {
                continue;
            }
            let field = COUNTER_ALIASES
                .iter()
                .find(|(metric, _)| metric == name)
                .map(|(_, f)| *f)
                .unwrap_or(name.as_str());
            let bumped = ws.files.iter().any(|f| {
                f.tokens.windows(3).any(|w| {
                    w[0].is_ident(field)
                        && w[1].is_punct('.')
                        && w[2].is_ident("fetch_add")
                        && !f.in_test(w[0].line)
                })
            });
            if bumped || db.allowed("counter_parity", *line, *line) {
                continue;
            }
            out.push(Finding {
                path: db.path.clone(),
                line: *line,
                rule: "counter_parity",
                message: format!(
                    "counter `{name}` is declared in CacheReport::fields() but never incremented (no `{field}.fetch_add` site)"
                ),
                hint: "bump the counter where the event happens, or delete the dead metric".into(),
            });
        }

        // Both renderers must walk fields() so /stats and /metrics can
        // never drift apart.
        if let Some(svc) = ws
            .files
            .iter()
            .find(|f| f.path.ends_with(SERVICE_FILE_SUFFIX))
        {
            for renderer in ["render_stats", "render_prometheus"] {
                let Some(fn_idx) = svc
                    .tokens
                    .windows(2)
                    .position(|w| w[0].is_ident("fn") && w[1].is_ident(renderer))
                else {
                    out.push(Finding {
                        path: svc.path.clone(),
                        line: 1,
                        rule: "counter_parity",
                        message: format!("expected a `{renderer}` function rendering CacheReport::fields()"),
                        hint: "render both /stats and /metrics from the single fields() source of truth".into(),
                    });
                    continue;
                };
                let Some(open_off) = svc.tokens[fn_idx..].iter().position(|t| t.is_punct('{'))
                else {
                    continue;
                };
                let open = fn_idx + open_off;
                let close = svc.matching_brace(open);
                let walks_fields = svc.tokens[open..close]
                    .windows(3)
                    .any(|w| w[0].is_punct('.') && w[1].is_ident("fields") && w[2].is_punct('('));
                if !walks_fields
                    && !svc.allowed(
                        "counter_parity",
                        svc.tokens[fn_idx].line,
                        svc.tokens[fn_idx].line,
                    )
                {
                    out.push(Finding {
                        path: svc.path.clone(),
                        line: svc.tokens[fn_idx].line,
                        rule: "counter_parity",
                        message: format!("`{renderer}` does not render from CacheReport::fields()"),
                        hint: "iterate report.fields() so /stats and /metrics stay in lockstep"
                            .into(),
                    });
                }
            }
        }
    }

    // Every declared trace stage must be opened by a span() somewhere.
    if let Some(tr) = ws
        .files
        .iter()
        .find(|f| f.path.ends_with(STAGES_FILE_SUFFIX))
    {
        let toks = &tr.tokens;
        if let Some(decl) = toks.iter().position(|t| t.is_ident("STAGES")) {
            let mut stages: Vec<(String, u32)> = Vec::new();
            let mut j = decl;
            // Scan to the initializer `[` after `=`, then collect strings.
            while j < toks.len() && !toks[j].is_punct('=') {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct('[') {
                j += 1;
            }
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct(']') {
                if toks[k].kind == TokKind::Str {
                    stages.push((toks[k].text.clone(), toks[k].line));
                }
                k += 1;
            }
            for (stage, line) in stages {
                let opened = ws.files.iter().any(|f| {
                    !f.path.ends_with(STAGES_FILE_SUFFIX)
                        && f.tokens.windows(3).any(|w| {
                            w[0].is_ident("span")
                                && w[1].is_punct('(')
                                && w[2].kind == TokKind::Str
                                && w[2].text == stage
                                && !f.in_test(w[2].line)
                        })
                });
                if opened || tr.allowed("counter_parity", line, line) {
                    continue;
                }
                out.push(Finding {
                    path: tr.path.clone(),
                    line,
                    rule: "counter_parity",
                    message: format!("trace stage \"{stage}\" is declared but never opened by a span() call"),
                    hint: "open the stage on the query path (ctx.span(\"...\")) or remove it from STAGES".into(),
                });
            }
        }
    }

    out
}

/// taxonomy-exhaustiveness: every HTTP status emitted by the server
/// appears in the JSON error taxonomy, and every taxonomy code is
/// actually emitted somewhere.
pub fn taxonomy_exhaustiveness(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(svc) = ws
        .files
        .iter()
        .find(|f| f.path.ends_with(TAXONOMY_FILE_SUFFIX))
    else {
        return out;
    };
    let toks = &svc.tokens;
    let Some(decl) = toks.iter().position(|t| t.is_ident(TAXONOMY_CONST)) else {
        out.push(Finding {
            path: svc.path.clone(),
            line: 1,
            rule: "taxonomy_exhaustiveness",
            message: format!("no `{TAXONOMY_CONST}` const found in the service module"),
            hint: "declare `pub const ERROR_TAXONOMY: &[(u16, &str)]` listing every error status and its JSON code".into(),
        });
        return out;
    };
    // Collect (status, code) pairs up to the terminating `;`.
    let mut pairs: Vec<(u64, String, u32)> = Vec::new();
    let mut end = decl;
    for j in decl..toks.len() {
        if toks[j].is_punct(';') {
            end = j;
            break;
        }
        if j + 2 < toks.len()
            && toks[j].kind == TokKind::Int
            && toks[j + 1].is_punct(',')
            && toks[j + 2].kind == TokKind::Str
        {
            if let Some(v) = toks[j].int_value() {
                pairs.push((v, toks[j + 2].text.clone(), toks[j].line));
            }
        }
    }
    let taxonomy_span = (toks[decl].line, toks[end].line);
    let statuses: HashSet<u64> = pairs.iter().map(|p| p.0).collect();

    // Forward: every emitted status is in the taxonomy.
    let mut reported: HashSet<(String, u64)> = HashSet::new();
    for f in ws.files.iter().filter(|f| f.path.contains("server/src/")) {
        for (i, t) in f.tokens.iter().enumerate() {
            let Some(v) = t.int_value() else { continue };
            if !(400..=599).contains(&v) || f.in_test(t.line) {
                continue;
            }
            if f.path == svc.path && t.line >= taxonomy_span.0 && t.line <= taxonomy_span.1 {
                continue;
            }
            let lo = f.stmt_start_line(i);
            if statuses.contains(&v)
                || f.allowed("taxonomy_exhaustiveness", lo, t.line)
                || !reported.insert((f.path.clone(), v))
            {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: t.line,
                rule: "taxonomy_exhaustiveness",
                message: format!("HTTP status {v} is emitted but missing from {TAXONOMY_CONST}"),
                hint: "add the status and its JSON error code to ERROR_TAXONOMY, or annotate if this literal is not a status".into(),
            });
        }
    }

    // Reverse: every taxonomy code is emitted somewhere outside the const.
    for (status, code, line) in &pairs {
        let emitted = ws
            .files
            .iter()
            .filter(|f| f.path.contains("server/src/"))
            .any(|f| {
                f.tokens.iter().any(|t| {
                    t.kind == TokKind::Str
                        && t.text == *code
                        && !(f.path == svc.path
                            && t.line >= taxonomy_span.0
                            && t.line <= taxonomy_span.1)
                        && !f.in_test(t.line)
                })
            });
        if emitted || svc.allowed("taxonomy_exhaustiveness", *line, *line) {
            continue;
        }
        out.push(Finding {
            path: svc.path.clone(),
            line: *line,
            rule: "taxonomy_exhaustiveness",
            message: format!(
                "taxonomy code \"{code}\" (status {status}) is declared but never emitted"
            ),
            hint:
                "emit it via error_body(...) on the matching path, or drop the dead taxonomy entry"
                    .into(),
        });
    }

    out
}

/// lock-hold hygiene: a `let` guard bound from `.lock()`/`.read()`/
/// `.write()` must not still be live across another zero-argument
/// lock-acquisition call — nested acquisition orders deadlock.
pub fn lock_hold(f: &FileScan) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &f.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let") || f.in_test(toks[i].line) {
            i += 1;
            continue;
        }
        // Find the end of the let statement (`;` with all brackets closed).
        let mut depth = 0isize;
        let mut end = None;
        for (off, t) in toks[i + 1..].iter().enumerate() {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                end = Some(i + 1 + off);
                break;
            }
        }
        let Some(end) = end else {
            i += 1;
            continue;
        };
        // Does the initializer's trailing call chain end in a
        // zero-argument lock acquisition (possibly followed by
        // unwrap / unwrap_or_else / expect)?
        let mut m = end; // index of ';'
        let mut guard_line = None;
        let mut lock_method = String::new();
        loop {
            if m == 0 || !toks[m - 1].is_punct(')') {
                break;
            }
            // Find the matching '('.
            let mut d = 0usize;
            let mut p = m - 1;
            loop {
                if toks[p].is_punct(')') {
                    d += 1;
                } else if toks[p].is_punct('(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if p == 0 {
                    break;
                }
                p -= 1;
            }
            if p == 0 || toks[p - 1].kind != TokKind::Ident {
                break;
            }
            let name = toks[p - 1].text.as_str();
            if LOCK_METHODS.contains(&name) && m - 1 == p + 1 {
                // Zero-arg lock call terminates the chain → guard.
                guard_line = Some(toks[p - 1].line);
                lock_method = name.to_string();
                break;
            }
            if matches!(name, "unwrap" | "unwrap_or_else" | "expect") {
                // Peel the wrapper: step past its `.` so the next loop
                // iteration sees the `)` of the call it was chained on.
                if p >= 2 && toks[p - 2].is_punct('.') {
                    m = p - 2;
                    continue;
                }
            }
            break;
        }
        let Some(guard_line) = guard_line else {
            i = end + 1;
            continue;
        };
        // Guard binding name (skip destructuring patterns).
        let mut g = i + 1;
        if g < toks.len() && toks[g].is_ident("mut") {
            g += 1;
        }
        let guard_name = if g < toks.len() && toks[g].kind == TokKind::Ident {
            toks[g].text.clone()
        } else {
            i = end + 1;
            continue;
        };
        // Scan the rest of the enclosing block while the guard is live.
        let mut depth = 0isize;
        let mut k = end + 1;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            // Early drop ends the guard's liveness.
            if t.is_ident("drop")
                && k + 2 < toks.len()
                && toks[k + 1].is_punct('(')
                && toks[k + 2].is_ident(&guard_name)
            {
                break;
            }
            if t.is_punct('.')
                && k + 3 < toks.len()
                && toks[k + 1].kind == TokKind::Ident
                && LOCK_METHODS.contains(&toks[k + 1].text.as_str())
                && toks[k + 2].is_punct('(')
                && toks[k + 3].is_punct(')')
                && !f.in_test(toks[k + 1].line)
            {
                let line = toks[k + 1].line;
                let lo = f.stmt_start_line(k);
                if !f.allowed("lock_hold", lo, line) {
                    out.push(Finding {
                        path: f.path.clone(),
                        line,
                        rule: "lock_hold",
                        message: format!(
                            "`.{}()` acquired while guard `{guard_name}` (from `.{lock_method}()` on line {guard_line}) is still held",
                            toks[k + 1].text
                        ),
                        hint: format!(
                            "drop({guard_name}) first or scope the guard with a block; annotate with lint:allow(lock_hold, reason = \"...\") if the acquisition order is deliberate"
                        ),
                    });
                }
            }
            k += 1;
        }
        i = end + 1;
    }
    out
}
