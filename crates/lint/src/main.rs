//! opine-lint CLI: run the invariant lints over the workspace sources
//! and the bounded-interleaving model suite.
//!
//! Exit status: 0 when clean; 1 when `--deny-all` and any lint finding,
//! or whenever a model that should pass has a counterexample (that is a
//! real protocol bug regardless of flags).

use std::path::PathBuf;
use std::process::ExitCode;

use opine_lint::{model, models, rules, run_all, Workspace};

const USAGE: &str = "\
opine-lint — workspace invariant lints + bounded-interleaving model checker

USAGE: opine-lint [OPTIONS]

OPTIONS:
    --deny-all      exit non-zero if any lint finding remains
    --no-models     skip the model-checking suite
    --models-only   run only the model-checking suite
    --seed <N>      exploration-order seed for the checker (default 1)
    --root <DIR>    workspace root (default: walk up from cwd)
    --list-rules    print the rule catalog and exit
";

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut no_models = false;
    let mut models_only = false;
    let mut seed: u64 = 1;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--no-models" => no_models = true,
            "--models-only" => models_only = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    let mut n_findings = 0usize;

    if !models_only {
        let root = match root
            .clone()
            .or_else(|| std::env::current_dir().ok().and_then(find_root))
        {
            Some(r) => r,
            None => {
                eprintln!("could not locate a workspace root (pass --root)");
                return ExitCode::from(2);
            }
        };
        let ws = match Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("failed to load workspace sources: {e}");
                return ExitCode::from(2);
            }
        };
        let findings = run_all(&ws);
        n_findings = findings.len();
        for f in &findings {
            println!("{f}");
        }
        println!(
            "opine-lint: {} finding{} across {} source files",
            n_findings,
            if n_findings == 1 { "" } else { "s" },
            ws.files.len()
        );
        if deny_all && n_findings > 0 {
            failed = true;
        }
    }

    if !no_models {
        println!("model suite (seed {seed}):");
        for (m, expect_violation) in models::suite() {
            match model::check(m.as_ref(), seed) {
                Ok(stats) => {
                    if expect_violation {
                        println!(
                            "  FAIL {name}: expected a counterexample, none found in {states} states — the checker is not exploring this protocol",
                            name = m.name(),
                            states = stats.states,
                        );
                        failed = true;
                    } else {
                        println!(
                            "  pass {name}: exhaustive over {states} states / {transitions} transitions",
                            name = m.name(),
                            states = stats.states,
                            transitions = stats.transitions,
                        );
                    }
                }
                Err(v) => {
                    if expect_violation {
                        println!(
                            "  pass {name}: counterexample found as expected ({} steps): {}",
                            v.trace.len(),
                            v.reason,
                            name = m.name(),
                        );
                    } else {
                        println!(
                            "  FAIL {name}: {reason}",
                            name = m.name(),
                            reason = v.reason
                        );
                        println!("    counterexample trace:");
                        for step in &v.trace {
                            println!("      {step}");
                        }
                        println!("    violating state: shared={:?}", v.state.shared);
                        failed = true;
                    }
                }
            }
        }
    }

    if failed {
        if deny_all && n_findings > 0 {
            eprintln!("opine-lint: failing (--deny-all with findings)");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
