//! A small bounded-interleaving model checker: exhaustive explicit-state
//! DFS over every schedule of a fixed set of threads, each of whose
//! steps is atomic. Deterministic and seedable — the seed permutes the
//! order in which thread steps are *explored* (so different seeds
//! surface different counterexamples first) without changing the set of
//! states visited. No wall-clock anywhere: seeding follows the xorshift
//! idiom the `faults` crate uses for failpoint draws.

use std::collections::HashSet;

pub type Val = i64;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadState {
    pub pc: u32,
    pub regs: Vec<Val>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    pub shared: Vec<Val>,
    pub threads: Vec<ThreadState>,
}

impl State {
    pub fn new(shared: Vec<Val>, nthreads: usize, nregs: usize) -> State {
        State {
            shared,
            threads: vec![
                ThreadState {
                    pc: 0,
                    regs: vec![0; nregs],
                };
                nthreads
            ],
        }
    }
}

/// A micro-model of a concurrent protocol. Each `step` is one atomic
/// action of one thread; the checker owns the interleaving.
pub trait Model {
    fn name(&self) -> &'static str;
    fn initial(&self) -> State;
    /// One atomic step of thread `tid`, or None if it is done or blocked.
    fn step(&self, st: &State, tid: usize) -> Option<(State, String)>;
    /// True when the thread has run to completion (used to tell a
    /// finished system apart from a deadlocked one).
    fn is_done(&self, st: &State, tid: usize) -> bool;
    /// Safety invariant, checked at every reachable state.
    fn invariant(&self, st: &State) -> Result<(), String>;
    /// Checked in every terminal state where all threads completed.
    fn final_check(&self, _st: &State) -> Result<(), String> {
        Ok(())
    }
}

#[derive(Debug)]
pub struct Violation {
    pub reason: String,
    /// Step labels from the initial state to the violating state.
    pub trace: Vec<String>,
    pub state: State,
}

#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub states: usize,
    pub transitions: usize,
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Exhaustively explore all interleavings of `model` from its initial
/// state. Returns exploration stats, or the first violation found (in
/// the seed-determined exploration order) with its full trace.
pub fn check(model: &dyn Model, seed: u64) -> Result<Stats, Box<Violation>> {
    let initial = model.initial();
    let nthreads = initial.threads.len();
    let mut rng = seed | 1; // never let the xorshift state be zero

    // Arena of (parent, label) for counterexample reconstruction.
    let mut nodes: Vec<(usize, String)> = vec![(usize::MAX, String::new())];
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack: Vec<(State, usize)> = vec![(initial.clone(), 0)];
    visited.insert(initial);
    let mut transitions = 0usize;

    let trace_of = |nodes: &[(usize, String)], mut idx: usize| -> Vec<String> {
        let mut trace = Vec::new();
        while idx != 0 {
            trace.push(nodes[idx].1.clone());
            idx = nodes[idx].0;
        }
        trace.reverse();
        trace
    };

    while let Some((st, node)) = stack.pop() {
        if let Err(reason) = model.invariant(&st) {
            return Err(Box::new(Violation {
                reason,
                trace: trace_of(&nodes, node),
                state: st,
            }));
        }

        // Seed-permuted exploration order over threads.
        let mut order: Vec<usize> = (0..nthreads).collect();
        let rot = (xorshift64(&mut rng) as usize) % nthreads.max(1);
        order.rotate_left(rot);

        let mut stepped = false;
        for &tid in &order {
            if let Some((next, label)) = model.step(&st, tid) {
                stepped = true;
                transitions += 1;
                if visited.insert(next.clone()) {
                    nodes.push((node, format!("t{tid}: {label}")));
                    stack.push((next, nodes.len() - 1));
                }
            }
        }

        if !stepped {
            let all_done = (0..nthreads).all(|tid| model.is_done(&st, tid));
            if !all_done {
                return Err(Box::new(Violation {
                    reason: "deadlock: no thread can step but not all are done".to_string(),
                    trace: trace_of(&nodes, node),
                    state: st,
                }));
            }
            if let Err(reason) = model.final_check(&st) {
                return Err(Box::new(Violation {
                    reason,
                    trace: trace_of(&nodes, node),
                    state: st,
                }));
            }
        }
    }

    Ok(Stats {
        states: visited.len(),
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each do `shared[0] += 1` non-atomically (load then
    /// store): the classic lost update. The checker must find it.
    struct LostUpdate;

    impl Model for LostUpdate {
        fn name(&self) -> &'static str {
            "lost-update"
        }
        fn initial(&self) -> State {
            State::new(vec![0], 2, 1)
        }
        fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
            let t = &st.threads[tid];
            let mut next = st.clone();
            match t.pc {
                0 => {
                    next.threads[tid].regs[0] = st.shared[0];
                    next.threads[tid].pc = 1;
                    Some((next, "load".into()))
                }
                1 => {
                    next.shared[0] = st.threads[tid].regs[0] + 1;
                    next.threads[tid].pc = 2;
                    Some((next, "store".into()))
                }
                _ => None,
            }
        }
        fn is_done(&self, st: &State, tid: usize) -> bool {
            st.threads[tid].pc == 2
        }
        fn invariant(&self, _st: &State) -> Result<(), String> {
            Ok(())
        }
        fn final_check(&self, st: &State) -> Result<(), String> {
            if st.shared[0] == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final count {} != 2", st.shared[0]))
            }
        }
    }

    #[test]
    fn finds_lost_update() {
        let v = check(&LostUpdate, 42).unwrap_err();
        assert!(v.reason.contains("lost update"));
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn seed_does_not_change_reachability() {
        // Different seeds must agree on the verdict (here: violation).
        for seed in [1u64, 7, 99, 12345] {
            assert!(check(&LostUpdate, seed).is_err());
        }
    }

    /// Same protocol with an atomic increment passes.
    struct AtomicAdd;

    impl Model for AtomicAdd {
        fn name(&self) -> &'static str {
            "atomic-add"
        }
        fn initial(&self) -> State {
            State::new(vec![0], 2, 0)
        }
        fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
            if st.threads[tid].pc != 0 {
                return None;
            }
            let mut next = st.clone();
            next.shared[0] += 1;
            next.threads[tid].pc = 1;
            Some((next, "fetch_add".into()))
        }
        fn is_done(&self, st: &State, tid: usize) -> bool {
            st.threads[tid].pc == 1
        }
        fn invariant(&self, st: &State) -> Result<(), String> {
            if st.shared[0] <= 2 {
                Ok(())
            } else {
                Err("count exceeded thread total".into())
            }
        }
        fn final_check(&self, st: &State) -> Result<(), String> {
            if st.shared[0] == 2 {
                Ok(())
            } else {
                Err("wrong final count".into())
            }
        }
    }

    #[test]
    fn atomic_add_passes_exhaustively() {
        let stats = check(&AtomicAdd, 1).unwrap();
        assert!(stats.states >= 3);
        assert!(stats.transitions >= stats.states - 1);
    }
}
