//! Micro-models of the workspace's lock-free protocols, extracted for
//! the bounded-interleaving checker:
//!
//! * [`PermitModel`] — the admission-control CAS budget in
//!   `server::service` (`in_flight` + `compare_exchange_weak` loop).
//! * [`CacheModel`] — `core::cache::BoundedCache`'s RwLock'd map+order
//!   pair, which must never serve a torn entry.
//! * [`HistogramModel`] — `server::metrics`' relaxed bucket/count cells,
//!   whose snapshots are *documented* to tear (quantile_us carries the
//!   fallback): the unguarded model must fail, proving the checker sees
//!   the race, and the guarded model (the fallback) must pass.
//! * [`SnapshotCellModel`] — the epoch/Arc-swap snapshot cell
//!   (`core::snapshot::SnapshotCell`) that live ingest will adopt:
//!   readers must only ever observe (value, epoch) pairs published
//!   together, with per-reader monotone epochs (linearizable snapshots).
//!
//! Each model has a `broken()` mutant encoding the bug the real protocol
//! prevents; the checker must find a counterexample for every mutant —
//! a mutation-style self-test that the exploration is actually doing work.

use crate::model::{Model, State};

// ---------------------------------------------------------------------------
// Permit CAS budget
// ---------------------------------------------------------------------------

/// shared[0] = in_flight budget counter, shared[1] = ghost count of
/// threads actually holding a permit. Each thread runs `cycles`
/// acquire→release rounds; acquisition at the limit sheds (skips the
/// round), mirroring `try_acquire` returning 429.
pub struct PermitModel {
    pub threads: usize,
    pub limit: i64,
    pub cycles: u32,
    pub broken: bool,
}

impl PermitModel {
    pub fn correct() -> Self {
        PermitModel {
            threads: 3,
            limit: 2,
            cycles: 2,
            broken: false,
        }
    }
    /// Check-then-act on a stale load instead of CAS: over-admits.
    pub fn broken() -> Self {
        PermitModel {
            broken: true,
            ..Self::correct()
        }
    }
}

// Per-cycle pc phases: 0 = load, 1 = cas/store, 2 = release.
const PERMIT_PHASES: u32 = 3;

impl Model for PermitModel {
    fn name(&self) -> &'static str {
        if self.broken {
            "permit-cas-budget (broken mutant)"
        } else {
            "permit-cas-budget"
        }
    }

    fn initial(&self) -> State {
        State::new(vec![0, 0], self.threads, 1)
    }

    fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
        let t = &st.threads[tid];
        if t.pc >= self.cycles * PERMIT_PHASES {
            return None;
        }
        let phase = t.pc % PERMIT_PHASES;
        let mut next = st.clone();
        match phase {
            0 => {
                next.threads[tid].regs[0] = st.shared[0];
                next.threads[tid].pc += 1;
                Some((next, format!("load in_flight={}", st.shared[0])))
            }
            1 => {
                let observed = t.regs[0];
                if observed >= self.limit {
                    // Shed: skip straight past the release phase.
                    next.threads[tid].pc += 2;
                    return Some((next, "shed (budget full)".into()));
                }
                if self.broken {
                    // Blind store of observed+1 — the lost-update bug the
                    // compare_exchange loop exists to prevent.
                    next.shared[0] = observed + 1;
                    next.shared[1] += 1;
                    next.threads[tid].pc += 1;
                    Some((next, format!("store in_flight={} (stale)", observed + 1)))
                } else {
                    if st.shared[0] != observed {
                        // CAS failure: retry from the load.
                        next.threads[tid].pc -= 1;
                        return Some((next, "cas fail → retry".into()));
                    }
                    next.shared[0] = observed + 1;
                    next.shared[1] += 1;
                    next.threads[tid].pc += 1;
                    Some((next, format!("cas in_flight {}→{}", observed, observed + 1)))
                }
            }
            _ => {
                next.shared[0] -= 1;
                next.shared[1] -= 1;
                next.threads[tid].pc += 1;
                Some((next, "release (fetch_sub)".into()))
            }
        }
    }

    fn is_done(&self, st: &State, tid: usize) -> bool {
        st.threads[tid].pc >= self.cycles * PERMIT_PHASES
    }

    fn invariant(&self, st: &State) -> Result<(), String> {
        if st.shared[1] > self.limit {
            return Err(format!(
                "over-admission: {} permits held with limit {}",
                st.shared[1], self.limit
            ));
        }
        if st.shared[0] < 0 {
            return Err(format!("in_flight went negative: {}", st.shared[0]));
        }
        Ok(())
    }

    fn final_check(&self, st: &State) -> Result<(), String> {
        if st.shared[0] != 0 || st.shared[1] != 0 {
            return Err(format!(
                "permit leak: in_flight={} holders={} after all threads released",
                st.shared[0], st.shared[1]
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// BoundedCache read/write race
// ---------------------------------------------------------------------------

/// shared[0], shared[1] = the two halves of a cache entry (map slot +
/// recency order), which the real BoundedCache mutates together under
/// one write lock. shared[2] = lock state (0 free, -1 writer, n>0
/// readers). shared[3] = ghost "reader observed a torn entry" flag.
pub struct CacheModel {
    pub writers: usize,
    pub readers: usize,
    pub writes: u32,
    pub reads: u32,
    pub broken: bool,
}

impl CacheModel {
    pub fn correct() -> Self {
        CacheModel {
            writers: 1,
            readers: 2,
            writes: 2,
            reads: 2,
            broken: false,
        }
    }
    /// Writer skips the write lock: two-step publish tears under readers.
    pub fn broken() -> Self {
        CacheModel {
            broken: true,
            ..Self::correct()
        }
    }

    fn nthreads(&self) -> usize {
        self.writers + self.readers
    }

    fn is_writer(&self, tid: usize) -> bool {
        tid < self.writers
    }
}

// Writer phases per round: 0 acquire-W, 1 write half A, 2 write half B,
// 3 unlock. Reader phases: 0 acquire-R, 1 read A, 2 read B + check,
// 3 unlock.
const CACHE_PHASES: u32 = 4;

impl Model for CacheModel {
    fn name(&self) -> &'static str {
        if self.broken {
            "bounded-cache-torn-read (broken mutant)"
        } else {
            "bounded-cache-torn-read"
        }
    }

    fn initial(&self) -> State {
        State::new(vec![0, 0, 0, 0], self.nthreads(), 2)
    }

    fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
        let t = &st.threads[tid];
        let rounds = if self.is_writer(tid) {
            self.writes
        } else {
            self.reads
        };
        if t.pc >= rounds * CACHE_PHASES {
            return None;
        }
        let phase = t.pc % CACHE_PHASES;
        let round = t.pc / CACHE_PHASES;
        let mut next = st.clone();
        if self.is_writer(tid) {
            let generation = (round + 1) as i64 * (tid as i64 + 1);
            match phase {
                0 => {
                    if self.broken {
                        next.threads[tid].pc += 1;
                        return Some((next, "skip write lock (broken)".into()));
                    }
                    if st.shared[2] != 0 {
                        return None; // blocked until lock is free
                    }
                    next.shared[2] = -1;
                    next.threads[tid].pc += 1;
                    Some((next, "write-lock".into()))
                }
                1 => {
                    next.shared[0] = generation;
                    next.threads[tid].pc += 1;
                    Some((next, format!("write map slot = {generation}")))
                }
                2 => {
                    next.shared[1] = generation;
                    next.threads[tid].pc += 1;
                    Some((next, format!("write order slot = {generation}")))
                }
                _ => {
                    if !self.broken {
                        next.shared[2] = 0;
                    }
                    next.threads[tid].pc += 1;
                    Some((next, "write-unlock".into()))
                }
            }
        } else {
            match phase {
                0 => {
                    if st.shared[2] < 0 {
                        return None; // blocked behind the writer
                    }
                    next.shared[2] += 1;
                    next.threads[tid].pc += 1;
                    Some((next, "read-lock".into()))
                }
                1 => {
                    next.threads[tid].regs[0] = st.shared[0];
                    next.threads[tid].pc += 1;
                    Some((next, format!("read map slot → {}", st.shared[0])))
                }
                2 => {
                    next.threads[tid].regs[1] = st.shared[1];
                    if next.threads[tid].regs[0] != next.threads[tid].regs[1] {
                        next.shared[3] = 1;
                    }
                    next.threads[tid].pc += 1;
                    Some((next, format!("read order slot → {}", st.shared[1])))
                }
                _ => {
                    next.shared[2] -= 1;
                    next.threads[tid].pc += 1;
                    Some((next, "read-unlock".into()))
                }
            }
        }
    }

    fn is_done(&self, st: &State, tid: usize) -> bool {
        let rounds = if self.is_writer(tid) {
            self.writes
        } else {
            self.reads
        };
        st.threads[tid].pc >= rounds * CACHE_PHASES
    }

    fn invariant(&self, st: &State) -> Result<(), String> {
        if st.shared[3] != 0 {
            return Err("reader observed a torn cache entry (map and order slots disagree)".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Histogram torn snapshot
// ---------------------------------------------------------------------------

/// shared[0] = bucket cell, shared[1] = total count — bumped in two
/// separate relaxed steps by the recorder, exactly like
/// `LatencyHistogram::record`. The snapshot reader loads both in two
/// steps. Unguarded, the "snapshot is internally consistent" invariant
/// is FALSE — the checker must find the tear (self-validation). Guarded,
/// the reader applies the documented `quantile_us` fallback (detect the
/// mismatch and discard the torn view) and the model passes.
pub struct HistogramModel {
    pub records: u32,
    pub guarded: bool,
}

impl HistogramModel {
    pub fn guarded() -> Self {
        HistogramModel {
            records: 2,
            guarded: true,
        }
    }
    /// Asserts torn snapshots never happen — expected to FAIL.
    pub fn torn() -> Self {
        HistogramModel {
            records: 2,
            guarded: false,
        }
    }
}

impl Model for HistogramModel {
    fn name(&self) -> &'static str {
        if self.guarded {
            "histogram-snapshot (guarded fallback)"
        } else {
            "histogram-snapshot (unguarded — expected counterexample)"
        }
    }

    fn initial(&self) -> State {
        // threads: 0 = recorder, 1 = snapshot reader
        // shared: [bucket, count, torn-and-unhandled flag]
        State::new(vec![0, 0, 0], 2, 2)
    }

    fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
        let t = &st.threads[tid];
        let mut next = st.clone();
        if tid == 0 {
            if t.pc >= self.records * 2 {
                return None;
            }
            if t.pc.is_multiple_of(2) {
                next.shared[0] += 1;
                next.threads[tid].pc += 1;
                Some((next, "bucket.fetch_add(1, Relaxed)".into()))
            } else {
                next.shared[1] += 1;
                next.threads[tid].pc += 1;
                Some((next, "count.fetch_add(1, Relaxed)".into()))
            }
        } else {
            match t.pc {
                0 => {
                    next.threads[tid].regs[0] = st.shared[1];
                    next.threads[tid].pc = 1;
                    Some((next, format!("snapshot count → {}", st.shared[1])))
                }
                1 => {
                    next.threads[tid].regs[1] = st.shared[0];
                    let torn = next.threads[tid].regs[0] != next.threads[tid].regs[1];
                    if torn && !self.guarded {
                        // Unguarded reader treats the torn view as valid.
                        next.shared[2] = 1;
                    }
                    // Guarded reader notices the mismatch and falls back,
                    // like HistogramSnapshot::quantile_us.
                    next.threads[tid].pc = 2;
                    Some((next, format!("snapshot buckets → {}", st.shared[0])))
                }
                _ => None,
            }
        }
    }

    fn is_done(&self, st: &State, tid: usize) -> bool {
        if tid == 0 {
            st.threads[tid].pc >= self.records * 2
        } else {
            st.threads[tid].pc >= 2
        }
    }

    fn invariant(&self, st: &State) -> Result<(), String> {
        if st.shared[2] != 0 {
            return Err("snapshot used a torn (count, buckets) view without the fallback".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Epoch / Arc-swap snapshot cell
// ---------------------------------------------------------------------------

/// Micro-model of `core::snapshot::SnapshotCell`: a writer publishes
/// (value, epoch) pairs under a write lock; readers take the pair under
/// a read lock. Linearizability at these bounds means (a) a reader never
/// observes value != epoch (pairs are indivisible) and (b) epochs are
/// monotone per reader (no snapshot travels backwards in time).
///
/// shared: [value, epoch, lock (0 free / -1 writer / n readers),
///          torn flag, regression flag]
pub struct SnapshotCellModel {
    pub readers: usize,
    pub publishes: u32,
    pub reads: u32,
    pub broken: bool,
}

impl SnapshotCellModel {
    pub fn correct() -> Self {
        SnapshotCellModel {
            readers: 2,
            publishes: 2,
            reads: 2,
            broken: false,
        }
    }
    /// Writer publishes value and epoch in two unlocked steps.
    pub fn broken() -> Self {
        SnapshotCellModel {
            broken: true,
            ..Self::correct()
        }
    }
}

// Writer phases: 0 lock, 1 store value, 2 store epoch, 3 unlock.
// Reader phases: 0 lock, 1 load value, 2 load epoch + checks, 3 unlock.
const SNAP_PHASES: u32 = 4;

impl Model for SnapshotCellModel {
    fn name(&self) -> &'static str {
        if self.broken {
            "epoch-snapshot-cell (broken mutant)"
        } else {
            "epoch-snapshot-cell"
        }
    }

    fn initial(&self) -> State {
        // Thread 0 is the writer; reader regs: [loaded value, last epoch seen].
        State::new(vec![0, 0, 0, 0, 0], 1 + self.readers, 2)
    }

    fn step(&self, st: &State, tid: usize) -> Option<(State, String)> {
        let t = &st.threads[tid];
        let mut next = st.clone();
        if tid == 0 {
            if t.pc >= self.publishes * SNAP_PHASES {
                return None;
            }
            let phase = t.pc % SNAP_PHASES;
            let generation = (t.pc / SNAP_PHASES + 1) as i64;
            match phase {
                0 => {
                    if self.broken {
                        next.threads[tid].pc += 1;
                        return Some((next, "skip write lock (broken)".into()));
                    }
                    if st.shared[2] != 0 {
                        return None;
                    }
                    next.shared[2] = -1;
                    next.threads[tid].pc += 1;
                    Some((next, "publish: write-lock".into()))
                }
                1 => {
                    next.shared[0] = generation;
                    next.threads[tid].pc += 1;
                    Some((next, format!("publish: value = {generation}")))
                }
                2 => {
                    next.shared[1] = generation;
                    next.threads[tid].pc += 1;
                    Some((next, format!("publish: epoch = {generation}")))
                }
                _ => {
                    if !self.broken {
                        next.shared[2] = 0;
                    }
                    next.threads[tid].pc += 1;
                    Some((next, "publish: unlock".into()))
                }
            }
        } else {
            if t.pc >= self.reads * SNAP_PHASES {
                return None;
            }
            let phase = t.pc % SNAP_PHASES;
            match phase {
                0 => {
                    if st.shared[2] < 0 {
                        return None;
                    }
                    next.shared[2] += 1;
                    next.threads[tid].pc += 1;
                    Some((next, "load: read-lock".into()))
                }
                1 => {
                    next.threads[tid].regs[0] = st.shared[0];
                    next.threads[tid].pc += 1;
                    Some((next, format!("load: value → {}", st.shared[0])))
                }
                2 => {
                    let value = t.regs[0];
                    let epoch = st.shared[1];
                    if value != epoch {
                        next.shared[3] = 1;
                    }
                    if epoch < t.regs[1] {
                        next.shared[4] = 1;
                    }
                    next.threads[tid].regs[1] = epoch;
                    next.threads[tid].pc += 1;
                    Some((next, format!("load: epoch → {epoch}")))
                }
                _ => {
                    next.shared[2] -= 1;
                    next.threads[tid].pc += 1;
                    Some((next, "load: read-unlock".into()))
                }
            }
        }
    }

    fn is_done(&self, st: &State, tid: usize) -> bool {
        let rounds = if tid == 0 { self.publishes } else { self.reads };
        st.threads[tid].pc >= rounds * SNAP_PHASES
    }

    fn invariant(&self, st: &State) -> Result<(), String> {
        if st.shared[3] != 0 {
            return Err(
                "reader observed a torn snapshot (value and epoch published separately)".into(),
            );
        }
        if st.shared[4] != 0 {
            return Err(
                "reader observed a non-monotone epoch (snapshot travelled backwards)".into(),
            );
        }
        Ok(())
    }
}

/// The model suite the CLI runs: (model, expect_violation).
pub fn suite() -> Vec<(Box<dyn Model>, bool)> {
    vec![
        (Box::new(PermitModel::correct()), false),
        (Box::new(PermitModel::broken()), true),
        (Box::new(CacheModel::correct()), false),
        (Box::new(CacheModel::broken()), true),
        (Box::new(HistogramModel::guarded()), false),
        (Box::new(HistogramModel::torn()), true),
        (Box::new(SnapshotCellModel::correct()), false),
        (Box::new(SnapshotCellModel::broken()), true),
    ]
}
