//! File-level scanning on top of the lexer: annotation parsing
//! (`lint:allow(rule, reason = "...")` and `sync: ...`), `#[cfg(test)]`
//! range detection, and the small structural helpers (statement start,
//! matching brace) the rules share.

use crate::lexer::{lex, Comment, Token};
use crate::Finding;

/// An `// lint:allow(rule, reason = "...")` escape hatch, resolved to the
/// line range it covers: its own line for EOL comments, or the following
/// construct (through its block) for own-line comments.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub lo: u32,
    pub hi: u32,
}

/// A `// sync: <what this orders>` justification, with the same scoping
/// rules as `Allow`.
#[derive(Debug, Clone)]
pub struct Sync {
    pub lo: u32,
    pub hi: u32,
}

pub struct FileScan {
    /// Workspace-relative path with `/` separators, e.g. `crates/core/src/db.rs`.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub allows: Vec<Allow>,
    pub syncs: Vec<Sync>,
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Malformed annotations surface as findings of their own.
    pub bad_annotations: Vec<Finding>,
}

impl FileScan {
    pub fn new(path: String, src: &str) -> FileScan {
        let lexed = lex(src);
        let mut scan = FileScan {
            path,
            tokens: lexed.tokens,
            comments: lexed.comments,
            allows: Vec::new(),
            syncs: Vec::new(),
            test_ranges: Vec::new(),
            bad_annotations: Vec::new(),
        };
        scan.find_test_ranges();
        scan.parse_annotations();
        scan
    }

    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Is any `lint:allow(rule, ...)` span intersecting [lo, hi]?
    pub fn allowed(&self, rule: &str, lo: u32, hi: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.lo <= hi && lo <= a.hi)
    }

    /// Is any `sync:` justification span intersecting [lo, hi]?
    pub fn synced(&self, lo: u32, hi: u32) -> bool {
        self.syncs.iter().any(|s| s.lo <= hi && lo <= s.hi)
    }

    /// Line of the first token of the statement containing token `idx`:
    /// walks back to the nearest `;`, `{` or `}` and reports the line of
    /// the token after it.
    pub fn stmt_start_line(&self, idx: usize) -> u32 {
        let mut j = idx;
        while j > 0 {
            let t = &self.tokens[j - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            j -= 1;
        }
        self.tokens.get(j).map(|t| t.line).unwrap_or(1)
    }

    /// Index of the `}` matching the `{` at `open_idx` (or last token).
    pub fn matching_brace(&self, open_idx: usize) -> usize {
        let mut depth = 0usize;
        for (off, t) in self.tokens[open_idx..].iter().enumerate() {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return open_idx + off;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Detect `#[cfg(test)]` / `#[test]` / `#[cfg_attr(test, ...)]`
    /// attributes and record the line span of the item they gate.
    fn find_test_ranges(&mut self) {
        let toks = &self.tokens;
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
                i += 1;
                continue;
            }
            // Collect the attribute's tokens.
            let attr_open = i + 1;
            let mut depth = 0usize;
            let mut j = attr_open;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let attr_end = j;
            let attr = &toks[attr_open..=attr_end.min(toks.len() - 1)];
            // `test` anywhere in the attribute gates the item out of
            // production — except inside `not(test)`.
            let is_test_attr = attr.iter().enumerate().any(|(p, t)| {
                t.is_ident("test")
                    && !(p >= 2 && attr[p - 1].is_punct('(') && attr[p - 2].is_ident("not"))
            });
            if !is_test_attr {
                i = attr_end + 1;
                continue;
            }
            let start_line = toks[i].line;
            // Skip any further attributes on the same item.
            let mut k = attr_end + 1;
            while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                let mut d = 0usize;
                let mut m = k + 1;
                while m < toks.len() {
                    if toks[m].is_punct('[') {
                        d += 1;
                    } else if toks[m].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                k = m + 1;
            }
            // Find the item's end: a `;` before any `{` at paren depth 0,
            // or the matching close of its first `{`.
            let mut paren = 0isize;
            let mut end_idx = toks.len().saturating_sub(1);
            let mut m = k;
            while m < toks.len() {
                let t = &toks[m];
                if t.is_punct('(') || t.is_punct('[') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    paren -= 1;
                } else if paren == 0 && t.is_punct(';') {
                    end_idx = m;
                    break;
                } else if paren == 0 && t.is_punct('{') {
                    end_idx = self.matching_brace(m);
                    break;
                }
                m += 1;
            }
            let end_line = toks.get(end_idx).map(|t| t.line).unwrap_or(start_line);
            self.test_ranges.push((start_line, end_line));
            i = end_idx + 1;
        }
    }

    /// Scope for an own-line annotation: the next construct after the
    /// comment, through its block (or its terminating `;`). Attributes
    /// and further comments between annotation and construct are skipped
    /// (comments never enter the token stream, so only attributes need
    /// explicit handling).
    fn own_line_scope(&self, comment_line: u32) -> u32 {
        let toks = &self.tokens;
        let mut i = match toks.iter().position(|t| t.line > comment_line) {
            Some(i) => i,
            None => return comment_line,
        };
        // Skip attributes.
        while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let mut d = 0usize;
            let mut m = i + 1;
            while m < toks.len() {
                if toks[m].is_punct('[') {
                    d += 1;
                } else if toks[m].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            i = m + 1;
        }
        let mut paren = 0isize;
        let mut m = i;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if paren == 0 && t.is_punct(';') {
                return t.line;
            } else if paren == 0 && t.is_punct('{') {
                let close = self.matching_brace(m);
                return toks.get(close).map(|t| t.line).unwrap_or(t.line);
            }
            m += 1;
        }
        toks.last().map(|t| t.line).unwrap_or(comment_line)
    }

    fn parse_annotations(&mut self) {
        let comments = self.comments.clone();
        for c in &comments {
            let text = c.text.trim();
            if let Some(rest) = text.strip_prefix("lint:allow") {
                match parse_allow_args(rest) {
                    Ok(rule) => {
                        let (lo, hi) = if c.own_line {
                            (c.line, self.own_line_scope(c.line).max(c.line))
                        } else {
                            (c.line, c.line)
                        };
                        self.allows.push(Allow { rule, lo, hi });
                    }
                    Err(why) => self.bad_annotations.push(Finding {
                        path: self.path.clone(),
                        line: c.line,
                        rule: "annotation",
                        message: format!("malformed lint:allow annotation: {why}"),
                        hint:
                            "use `// lint:allow(<rule>, reason = \"...\")` with a non-empty reason"
                                .to_string(),
                    }),
                }
            } else if let Some(rest) = text.strip_prefix("sync:") {
                if rest.trim().is_empty() {
                    self.bad_annotations.push(Finding {
                        path: self.path.clone(),
                        line: c.line,
                        rule: "annotation",
                        message: "empty sync: justification".to_string(),
                        hint: "state what this ordering synchronizes with, e.g. `// sync: pairs with the Release store in stop()`".to_string(),
                    });
                    continue;
                }
                let (lo, hi) = if c.own_line {
                    (c.line, self.own_line_scope(c.line).max(c.line))
                } else {
                    (c.line, c.line)
                };
                self.syncs.push(Sync { lo, hi });
            }
        }
    }
}

/// Parse `(rule, reason = "...")`, returning the rule name.
fn parse_allow_args(rest: &str) -> Result<String, &'static str> {
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .ok_or("expected `(` after lint:allow")?;
    let close = inner.rfind(')').ok_or("missing closing `)`")?;
    let inner = &inner[..close];
    let (rule, tail) = match inner.find(',') {
        Some(pos) => (inner[..pos].trim(), inner[pos + 1..].trim()),
        None => return Err("missing `, reason = \"...\"`"),
    };
    if rule.is_empty()
        || !rule
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
    {
        return Err("rule name must be a snake_case identifier");
    }
    let tail = tail
        .strip_prefix("reason")
        .ok_or("expected `reason = \"...\"`")?
        .trim_start();
    let tail = tail
        .strip_prefix('=')
        .ok_or("expected `=` after reason")?
        .trim_start();
    let quoted = tail
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or("reason must be a double-quoted string")?;
    if quoted.trim().is_empty() {
        return Err("reason must not be empty");
    }
    Ok(rule.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eol_allow_covers_its_line_only() {
        let s = FileScan::new(
            "f.rs".into(),
            "fn f() {\n    x.load(Ordering::Relaxed); // lint:allow(relaxed_hygiene, reason = \"scratch\")\n    y();\n}\n",
        );
        assert_eq!(s.allows.len(), 1);
        assert_eq!((s.allows[0].lo, s.allows[0].hi), (2, 2));
        assert!(s.allowed("relaxed_hygiene", 2, 2));
        assert!(!s.allowed("relaxed_hygiene", 3, 3));
        assert!(!s.allowed("other_rule", 2, 2));
    }

    #[test]
    fn own_line_allow_covers_following_block() {
        let src = "\
// lint:allow(checkpoint_coverage, reason = \"fixed 4-way unroll\")
for i in 0..4 {
    body();
    more();
}
after();
";
        let s = FileScan::new("f.rs".into(), src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!((s.allows[0].lo, s.allows[0].hi), (1, 5));
        assert!(s.allowed("checkpoint_coverage", 2, 2));
        assert!(!s.allowed("checkpoint_coverage", 6, 6));
    }

    #[test]
    fn own_line_allow_skips_attributes() {
        let src = "\
// lint:allow(no_panic_in_serve, reason = \"startup only\")
#[inline]
fn boot() {
    let x = v[0];
}
";
        let s = FileScan::new("f.rs".into(), src);
        assert_eq!((s.allows[0].lo, s.allows[0].hi), (1, 5));
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let s = FileScan::new("f.rs".into(), "// lint:allow(relaxed_hygiene)\nx();\n");
        assert_eq!(s.allows.len(), 0);
        assert_eq!(s.bad_annotations.len(), 1);
        let s2 = FileScan::new("f.rs".into(), "// lint:allow(r, reason = \"\")\nx();\n");
        assert_eq!(s2.bad_annotations.len(), 1);
    }

    #[test]
    fn sync_comment_spans() {
        let src = "\
// sync: pairs with the Release store in shutdown
let v = flag.load(Ordering::Acquire);
bare.load(Ordering::Acquire); // sync: pairs with store above
";
        let s = FileScan::new("f.rs".into(), src);
        assert_eq!(s.syncs.len(), 2);
        assert!(s.synced(2, 2));
        assert!(s.synced(3, 3));
    }

    #[test]
    fn cfg_test_ranges() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(true);
    }
}

fn also_live() {}
";
        let s = FileScan::new("f.rs".into(), src);
        assert!(!s.in_test(1));
        assert!(s.in_test(4));
        assert!(s.in_test(7));
        assert!(!s.in_test(11));
    }

    #[test]
    fn stmt_start_walks_multiline_chains() {
        let src = "\
fn f() {
    self.use_markers
        .store(enabled, std::sync::atomic::Ordering::Relaxed);
}
";
        let s = FileScan::new("f.rs".into(), src);
        let idx = s.tokens.iter().position(|t| t.is_ident("Relaxed")).unwrap();
        assert_eq!(s.stmt_start_line(idx), 2);
    }
}
