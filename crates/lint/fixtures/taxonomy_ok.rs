// Fixture: the twin where the taxonomy and the emission sites cover
// each other exactly.
pub const ERROR_TAXONOMY: &[(u16, &str)] = &[
    (400, "bad_request"),
    (418, "teapot"),
];

fn route(ok: bool) -> (u16, String) {
    if ok {
        (400, error_body("bad_request", "missing field"))
    } else {
        (418, error_body("teapot", "short and stout"))
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!("{{\"error\":{{\"code\":\"{code}\",\"message\":\"{message}\"}}}}")
}
