// Fixture: planted relaxed_hygiene violations.
// `dirty` is not a registered monotonic counter, and neither ordering
// site carries a `// sync:` justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    dirty: AtomicU64,
}

impl Flags {
    pub fn mark(&self) {
        self.dirty.store(1, Ordering::Relaxed);
    }

    pub fn publish(&self) {
        self.dirty.store(2, Ordering::Release);
    }
}
