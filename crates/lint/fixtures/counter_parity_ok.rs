// Fixture: the twin where every declared counter has an increment site.
impl CacheReport {
    pub fn fields(&self) -> Vec<(&'static str, Field)> {
        vec![
            ("hits", Counter(self.hits)),
            ("misses", Counter(self.misses)),
        ]
    }
}

pub fn record(hits: &AtomicU64, misses: &AtomicU64, hit: bool) {
    if hit {
        hits.fetch_add(1, Ordering::Relaxed);
    } else {
        misses.fetch_add(1, Ordering::Relaxed);
    }
}
