// Fixture: the hardened twin — fallible access returns typed errors,
// and the one remaining index carries its bounds argument.
const BUCKETS: [u64; 4] = [1, 10, 100, 1000];

pub fn respond(headers: &[(String, String)], body: &str) -> Result<String, String> {
    let first = headers
        .first()
        .cloned()
        .ok_or_else(|| "missing header".to_string())?;
    let parsed: u64 = body
        .trim()
        .parse()
        .map_err(|_| "body must be an integer".to_string())?;
    // lint:allow(no_panic_in_serve, reason = "index is parsed % BUCKETS.len(), provably in bounds")
    let bucket = BUCKETS[(parsed as usize) % BUCKETS.len()];
    Ok(format!("{}:{bucket}", first.0))
}
