// Fixture: the passing twin — the innermost loop checkpoints (covering
// the outer loop too), and a trip-count-bounded loop uses the escape
// hatch with its bound as the reason.
pub fn scan(lists: &[Vec<u64>], deadline: &Deadline) -> u64 {
    let mut total = 0;
    for list in lists {
        for &v in list {
            deadline.checkpoint();
            if v % 2 == 0 {
                total += v;
            } else {
                total += 1;
            }
        }
    }
    // lint:allow(checkpoint_coverage, reason = "bounded by the fixed 8-entry tail window, not data size")
    for slot in 0..8 {
        if slot % 2 == 0 {
            total += 3;
        } else {
            total -= 1;
        }
    }
    total
}
