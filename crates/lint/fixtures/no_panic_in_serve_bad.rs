// Fixture: three panic vectors on the request path — indexing, unwrap,
// and a panicking macro. Loaded under crates/server/src/ so the rule
// applies.
pub fn respond(headers: &[(String, String)], body: &str) -> String {
    let first = headers[0].clone();
    let parsed: u64 = body.trim().parse().unwrap();
    if parsed > 10 {
        panic!("request too large");
    }
    first.0
}
