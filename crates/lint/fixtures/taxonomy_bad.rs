// Fixture: two planted taxonomy violations — status 418 is emitted but
// unregistered, and code "gone" (410) is registered but never emitted.
// Loaded under the service path (crates/server/src/service.rs).
pub const ERROR_TAXONOMY: &[(u16, &str)] = &[
    (400, "bad_request"),
    (410, "gone"),
];

fn route(ok: bool) -> (u16, String) {
    if ok {
        (400, error_body("bad_request", "missing field"))
    } else {
        (418, error_body("teapot", "short and stout"))
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!("{{\"error\":{{\"code\":\"{code}\",\"message\":\"{message}\"}}}}")
}
