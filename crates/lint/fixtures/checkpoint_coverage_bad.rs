// Fixture: a data-proportional nested scan with no deadline checkpoint.
// Loaded under a hot-path filename (crates/core/src/topk.rs) so the
// checkpoint_coverage rule applies.
pub fn scan(lists: &[Vec<u64>]) -> u64 {
    let mut total = 0;
    for list in lists {
        for &v in list {
            if v % 2 == 0 {
                total += v;
            } else {
                total += 1;
            }
        }
    }
    total
}
