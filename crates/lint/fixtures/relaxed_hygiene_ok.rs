// Fixture: the annotated twin of relaxed_hygiene_bad.rs. A registered
// monotonic counter passes bare; everything else carries `// sync:`.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flags {
    hits: AtomicU64,
    dirty: AtomicU64,
}

impl Flags {
    pub fn count(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn mark(&self) {
        // sync: redundant dirty hint; readers re-validate under the map
        // lock, so a stale read only costs one extra validation pass.
        self.dirty.store(1, Ordering::Relaxed);
    }

    pub fn publish(&self) {
        // sync: pairs with the Acquire load in consume().
        self.dirty.store(2, Ordering::Release);
    }
}
