// Fixture: three sanctioned shapes — scope the first guard in a block,
// drop() it before the second acquisition, or annotate a deliberate
// global acquisition order.
pub fn transfer(a: &Mutex<u64>, b: &Mutex<u64>) {
    let taken = {
        let mut from = a.lock().unwrap();
        let v = *from;
        *from = 0;
        v
    };
    let mut to = b.lock().unwrap();
    *to += taken;
}

pub fn drain(stats: &Mutex<Vec<u64>>, sink: &Mutex<Vec<u64>>) {
    let mut pending = stats.lock().unwrap();
    let drained: Vec<u64> = pending.split_off(0);
    drop(pending);
    sink.lock().unwrap().extend(drained);
}

pub fn ordered(a: &Mutex<u64>, b: &Mutex<u64>) {
    let first = a.lock().unwrap();
    // lint:allow(lock_hold, reason = "workspace-wide acquisition order is a before b; see module docs")
    let second = b.lock().unwrap();
    *second = *first;
}
