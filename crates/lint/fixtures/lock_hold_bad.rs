// Fixture: guard `from` (a.lock()) is still live when b.lock() is
// acquired — the classic nested-acquisition deadlock shape.
pub fn transfer(a: &Mutex<u64>, b: &Mutex<u64>) {
    let mut from = a.lock().unwrap();
    let mut to = b.lock().unwrap();
    *to += *from;
    *from = 0;
}
