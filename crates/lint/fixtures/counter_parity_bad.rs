// Fixture: `misses` is declared as a Counter in fields() but no
// `misses.fetch_add` site exists anywhere in the (synthetic) workspace.
// Loaded under the fields-file path (crates/core/src/db.rs).
impl CacheReport {
    pub fn fields(&self) -> Vec<(&'static str, Field)> {
        vec![
            ("hits", Counter(self.hits)),
            ("misses", Counter(self.misses)),
        ]
    }
}

pub fn record_hit(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}
