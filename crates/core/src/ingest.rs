//! Live ingest: the mutable delta segment behind snapshot-isolated reads.
//!
//! A built [`crate::OpineDb`] is immutable — its relational tables,
//! summaries, partials, and indexes are frozen artifacts. Reviews
//! inserted at serve time land in a [`DeltaState`]: a copy-on-write
//! value published through a [`crate::snapshot::SnapshotCell`], so every
//! query pins exactly one delta generation for its whole execution (the
//! thread-local [`Pin`]) and a half-applied `INSERT` batch is never
//! observable.
//!
//! The **model plane stays frozen**: vocabulary, embeddings, sentiment,
//! interpreter, membership functions, and marker sets are fixed at
//! build time. The delta only moves the **data plane** — relational
//! rows (a [`TableOverlay`]), per-entity/per-reviewer counts, marker
//! summaries (phrase occurrences are extracted at insert time by exact
//! token matching against the frozen opinion domains), year-partitioned
//! partial summaries, and a per-entity delta text index rebuilt (and
//! block-max frozen) by each merge. Near-real-time semantics follow
//! Lucene's: summary/count effects are visible at the very next epoch,
//! text-retrieval (BM25) effects become visible at the next delta
//! merge.

use crate::db::{PhraseOcc, ReviewMeta};
use crate::domain::LinguisticDomain;
use crate::snapshot::SnapshotCell;
use crate::summary::MarkerSummary;
use opine_ir::InvertedIndex;
use opine_store::TableOverlay;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::{Arc, OnceLock};

/// Default number of unsealed delta reviews that triggers a merge.
pub const DEFAULT_MERGE_THRESHOLD: usize = 64;

/// The delta phrase occurrences of one `(entity, attribute)` cell.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaCell {
    /// Every delta occurrence, in insert order. `occs[..sealed]` are
    /// covered by [`Self::year_partials`]; the tail re-resolves at
    /// query time (it is bounded by the merge threshold).
    pub occs: Vec<PhraseOcc>,
    /// Prefix length folded into the year partials by the last merge.
    pub sealed: usize,
    /// Per-year partial summaries over `occs[..sealed]`, ascending by
    /// year — the delta-side twin of the base `CellPartials`, reduced
    /// to year granularity because reviewer-degree qualifiers always
    /// take the exact rescan path when a delta is live (see
    /// `OpineDb::merge_qualified`).
    pub year_partials: Vec<(u32, MarkerSummary)>,
}

/// One immutable delta generation. Published wholesale through the
/// ingest [`SnapshotCell`]; never mutated in place after publication.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaState {
    /// Relational rows appended to the catalog's `reviews` table.
    pub overlay: TableOverlay,
    /// `(entity, attribute)` → delta phrase occurrences.
    pub cells: HashMap<(usize, usize), DeltaCell>,
    /// `(entity, attribute)` → marker summary over **all** delta
    /// occurrences of the cell (sealed and unsealed), maintained at
    /// insert time so the unqualified read path is one merge away.
    pub summaries: HashMap<(usize, usize), MarkerSummary>,
    /// Metadata of every delta review; the review with delta index `i`
    /// has global id `base_review_count + i`.
    pub meta: Vec<ReviewMeta>,
    /// Concatenated delta review text per entity, the input of the
    /// merge's text-index rebuild.
    pub texts: HashMap<usize, String>,
    /// Delta reviews per entity.
    pub entity_counts: HashMap<usize, u32>,
    /// Delta reviews per reviewer id.
    pub reviewer_counts: HashMap<usize, u32>,
    /// Entity → epoch of the last published change to anything that
    /// feeds its degrees (summaries at insert, text index at merge).
    /// Epoch-stamped cache entries compare against this to stay
    /// precise: an entity untouched since an entry was stamped never
    /// invalidates it.
    pub entity_versions: HashMap<usize, u64>,
    /// Frozen per-entity text index over the *merged* delta reviews
    /// (doc id == entity id, spanning every entity). `None` until the
    /// first merge.
    pub text_index: Option<Arc<InvertedIndex>>,
    /// Delta reviews covered by `text_index` and the year partials.
    pub merged_reviews: usize,
    /// Delta reviews inserted since the last merge — drives the merge
    /// threshold.
    pub unsealed_reviews: usize,
}

impl DeltaState {
    /// True when no delta review exists (the fast path every read takes
    /// before any ingest happens).
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The pinned-generation version of `entity` (0 when untouched).
    #[inline]
    pub fn entity_version(&self, entity: usize) -> u64 {
        self.entity_versions.get(&entity).copied().unwrap_or(0)
    }
}

/// A query's pinned delta generation: the epoch and the generation's
/// shared state, installed thread-locally for the whole execution (and
/// re-installed inside parallel workers by `par::par_map`).
#[derive(Debug, Clone)]
pub(crate) struct Pin {
    pub epoch: u64,
    pub delta: Arc<DeltaState>,
}

thread_local! {
    /// The delta generation pinned by the query running on this thread.
    static PIN: RefCell<Option<Pin>> = const { RefCell::new(None) };
}

/// Runs `f` with `pin` installed as the thread's pinned generation,
/// restoring the previous pin on exit (panic-safe via a drop guard) —
/// the same ambient-state pattern as `opine_faults::with_deadline`.
pub(crate) fn with_pin<T>(pin: Option<Pin>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Pin>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            PIN.with(|p| *p.borrow_mut() = previous);
        }
    }
    let previous = PIN.with(|p| p.borrow_mut().take());
    let _restore = Restore(previous);
    PIN.with(|p| *p.borrow_mut() = pin);
    f()
}

/// The pin installed on this thread, if any.
pub(crate) fn current_pin() -> Option<Pin> {
    PIN.with(|p| p.borrow().clone())
}

/// Exact-phrase matcher over the frozen opinion domains: maps a
/// tokenized review text to `(attribute, variation)` occurrences by
/// matching each variation's token sequence at every position. Built
/// once per engine (lazily, on the first insert) and keyed by first
/// token so a text scan only examines candidates sharing its anchor.
#[derive(Debug, Default)]
pub(crate) struct PhraseMatcher {
    /// First token → `(attribute, variation index, full token list)`.
    by_first: HashMap<String, Vec<(usize, usize, Vec<String>)>>,
}

impl PhraseMatcher {
    /// Builds the matcher from the engine's frozen opinion domains.
    pub fn build(domains: &[LinguisticDomain]) -> Self {
        let mut by_first: HashMap<String, Vec<(usize, usize, Vec<String>)>> = HashMap::new();
        for (attr, domain) in domains.iter().enumerate() {
            for (var, variation) in domain.variations().iter().enumerate() {
                opine_faults::checkpoint();
                let tokens = opine_text::tokenize(&variation.phrase);
                if let Some(first) = tokens.first() {
                    by_first
                        .entry(first.clone())
                        .or_default()
                        .push((attr, var, tokens.clone()));
                }
            }
        }
        PhraseMatcher { by_first }
    }

    /// `(attribute, variation)` occurrences of the domains' phrases in
    /// `text`, in scan order. Longer candidate phrases win at a given
    /// anchor position (the scan does not double-count a long phrase as
    /// its own prefix), matching how extraction yields one opinion term
    /// per expression.
    pub fn extract(&self, text: &str) -> Vec<(usize, usize)> {
        let tokens = opine_text::tokenize(text);
        let mut out = Vec::new();
        for start in 0..tokens.len() {
            opine_faults::checkpoint();
            let Some(candidates) = self.by_first.get(&tokens[start]) else {
                continue;
            };
            let mut best: Option<(usize, usize, usize)> = None;
            // lint:allow(checkpoint_coverage, reason = "bounded by the domains' variation count per anchor token, not by data volume")
            for &(attr, var, ref phrase) in candidates {
                let fits = phrase.len() <= tokens.len() - start
                    && phrase
                        .iter()
                        .zip(&tokens[start..])
                        .all(|(p, t)| p == t);
                if fits && best.is_none_or(|(_, _, len)| phrase.len() > len) {
                    best = Some((attr, var, phrase.len()));
                }
            }
            if let Some((attr, var, _)) = best {
                out.push((attr, var));
            }
        }
        out
    }
}

/// The engine's ingest machinery: the published delta generation, the
/// writer lock serializing inserts and merges, and the observability
/// counters the `/stats` surface reports.
pub(crate) struct IngestState {
    /// The current delta generation; `publish` bumps the data epoch.
    pub cell: SnapshotCell<DeltaState>,
    /// Serializes writers. Readers never take it — they pin a
    /// generation and go.
    pub writer: Mutex<()>,
    /// Reviews accepted by `INSERT` statements (counter).
    pub inserted_reviews: AtomicU64,
    /// Completed delta merges (counter).
    pub delta_merges: AtomicU64,
    /// Merges that panicked and were rolled back — the previous epoch
    /// kept serving (counter).
    pub failed_merges: AtomicU64,
    /// Unsealed reviews that trigger a merge.
    pub merge_threshold: AtomicUsize,
    /// Lazily built exact-phrase matcher over the frozen domains.
    pub matcher: OnceLock<PhraseMatcher>,
}

impl IngestState {
    pub fn new() -> Self {
        IngestState {
            cell: SnapshotCell::new(DeltaState::default()),
            writer: Mutex::new(()),
            inserted_reviews: AtomicU64::new(0),
            delta_merges: AtomicU64::new(0),
            failed_merges: AtomicU64::new(0),
            merge_threshold: AtomicUsize::new(DEFAULT_MERGE_THRESHOLD),
            matcher: OnceLock::new(),
        }
    }
}

/// What an accepted `INSERT` statement did — returned by
/// [`crate::OpineDb::execute_insert`] and rendered by the serving
/// layer's ingest endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Rows inserted by this statement (all-or-nothing).
    pub inserted: usize,
    /// The data epoch after this statement (and any merge it
    /// triggered) published.
    pub epoch: u64,
    /// Total delta reviews now live.
    pub delta_reviews: usize,
    /// True when this statement pushed the delta over the merge
    /// threshold and the merge completed.
    pub merged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_pin_installs_and_restores() {
        assert!(current_pin().is_none());
        let pin = Pin {
            epoch: 3,
            delta: Arc::new(DeltaState::default()),
        };
        with_pin(Some(pin.clone()), || {
            assert_eq!(current_pin().expect("pinned").epoch, 3);
            // Nesting replaces, exit restores the outer pin.
            with_pin(
                Some(Pin {
                    epoch: 4,
                    delta: Arc::new(DeltaState::default()),
                }),
                || assert_eq!(current_pin().expect("pinned").epoch, 4),
            );
            assert_eq!(current_pin().expect("outer pin restored").epoch, 3);
        });
        assert!(current_pin().is_none());
    }

    #[test]
    fn with_pin_restores_after_panic() {
        let result = std::panic::catch_unwind(|| {
            with_pin(
                Some(Pin {
                    epoch: 1,
                    delta: Arc::new(DeltaState::default()),
                }),
                || panic!("boom"),
            )
        });
        assert!(result.is_err());
        assert!(current_pin().is_none(), "drop guard must restore the pin");
    }

    #[test]
    fn matcher_prefers_longest_phrase_at_an_anchor() {
        // A hand-built matcher (domains need an embedder; the map is
        // enough to exercise the scan logic).
        let mut m = PhraseMatcher::default();
        m.by_first.insert(
            "very".into(),
            vec![
                (0, 1, vec!["very".into(), "clean".into()]),
                (0, 2, vec!["very".into()]),
            ],
        );
        m.by_first
            .insert("clean".into(), vec![(0, 0, vec!["clean".into()])]);
        let occs = m.extract("the room was very clean indeed");
        // "very clean" wins at the anchor "very"; "clean" still matches
        // at its own anchor one token later.
        assert_eq!(occs, vec![(0, 1), (0, 0)]);
        assert_eq!(m.extract("nothing matches here"), vec![]);
    }
}
