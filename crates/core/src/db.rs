//! [`OpineDb`]: the end-to-end subjective database engine.
//!
//! Executes Subjective SQL by combining the relational executor of
//! `opine-store` with the interpreter, membership functions, and fuzzy
//! logic of this crate (Fig. 4 of the paper).

use crate::builder::BuildConfig;
use crate::cache::{BoundedCache, CacheStats};
use crate::domain::LinguisticDomain;
use crate::ingest::{DeltaState, IngestReceipt, IngestState, PhraseMatcher, Pin};
use crate::interpret::{Interpretation, Interpreter};
use crate::membership::{marker_features, scan_features, MembershipModel};
use crate::par;
use crate::summary::{MarkerSet, MarkerSummary, PhraseContribution};
use crate::topk::{threshold_topk_dense, threshold_topk_dense_filtered, threshold_topk_rescored};
use opine_embed::PhraseEmbedder;
use opine_ir::{Bm25Params, InvertedIndex};
use opine_sentiment::SentimentAnalyzer;
use opine_store::ast::ColumnRef;
use opine_store::exec::{execute_with_algebra, SubjectiveScorer};
use opine_store::{
    execute_lazy_with_overlay, parse_insert, parse_select, Bitmap, Catalog, FuzzyAlgebra,
    InsertStmt, ResultSet, ReviewQualifier, ScoredRows, Select, StoreError, Value,
};
use opine_text::{Vocab, WordId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, OnceLock};

/// One extracted phrase occurrence in an entity's raw digest.
#[derive(Debug, Clone, Copy)]
pub struct PhraseOcc {
    /// Index into the attribute's opinion domain.
    pub variation: usize,
    /// Sentiment of the phrase.
    pub sentiment: f64,
    /// Source review id.
    pub review_id: usize,
}

/// Review metadata kept for review-qualifying filters.
#[derive(Debug, Clone, Copy)]
pub struct ReviewMeta {
    /// Reviewed entity.
    pub entity_id: usize,
    /// Author id.
    pub reviewer_id: usize,
    /// Publication year.
    pub year: u32,
    /// Helpful votes.
    pub helpful_votes: u32,
}

/// Errors surfaced by [`OpineDb`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpineError {
    /// SQL parse failure.
    Parse(String),
    /// Storage/execution failure.
    Store(StoreError),
    /// The request's deadline expired mid-execution: a cancellation
    /// checkpoint fired inside a long scan and the engine unwound to
    /// the query entry. The serving layer maps this to 504.
    QueryTimeout,
}

impl std::fmt::Display for OpineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpineError::Parse(m) => write!(f, "{m}"),
            OpineError::Store(e) => write!(f, "{e}"),
            OpineError::QueryTimeout => write!(f, "query cancelled: deadline exceeded"),
        }
    }
}

impl std::error::Error for OpineError {}

impl From<StoreError> for OpineError {
    fn from(e: StoreError) -> Self {
        OpineError::Store(e)
    }
}

/// A ranked query answer plus the interpretations that produced it.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The ranked relational result.
    pub result: ResultSet,
    /// `(predicate, interpretation)` for every natural-language predicate.
    pub interpretations: Vec<(String, Interpretation)>,
}

/// [`QueryOutput`]'s borrowing twin: the ranked rows reference the
/// catalog's storage instead of cloning every `Vec<Value>`, so a serving
/// layer can serialize the answer with zero per-row allocation.
#[derive(Debug)]
pub struct QueryRef<'a> {
    /// The ranked result, borrowing winning rows from the catalog.
    pub result: ScoredRows<'a>,
    /// `(predicate, interpretation)` for every natural-language predicate.
    pub interpretations: Vec<(String, Interpretation)>,
    /// The data epoch this query pinned: every read underneath saw
    /// exactly the delta generation published as `epoch`. The serving
    /// layer keys its result cache by `(statement, epoch)` so an
    /// `INSERT` invalidates cached answers without a flush.
    pub epoch: u64,
}

/// A point-in-time snapshot of every query-path cache, for the serving
/// layer's `/stats` endpoint and for benches.
#[derive(Debug, Clone, Copy)]
pub struct CacheReport {
    /// Interpretation memo hits/misses.
    pub interpretations: CacheStats,
    /// Prepared-phrase memo hits/misses.
    pub phrases: CacheStats,
    /// `(entity, predicate)` point-degree memo hits/misses.
    pub points: CacheStats,
    /// Degree-column cache hits/misses.
    pub columns: CacheStats,
    /// Number of dense degree columns currently cached.
    pub cached_columns: usize,
    /// Heap bytes held by the cached degree columns.
    pub column_bytes: usize,
    /// True when new degree columns are stored quantized (`u16`).
    pub quantized_columns: bool,
    /// Queries answered by the threshold-algorithm fast path (pure
    /// subjective conjunctions and pushdown queries combined).
    pub ta_queries: u64,
    /// TA fast-path queries that carried an objective-prefilter
    /// candidate bitmap (the paper's `price < 150 AND "clean rooms"`
    /// shape) — the pushdown counter the serving layer's `/stats`
    /// reports and CI guards.
    pub pushdown_queries: u64,
    /// Filtered-summary cache hits/misses (qualifier rendering → merged
    /// summary set).
    pub filtered_summaries: CacheStats,
    /// Merged summary sets currently cached.
    pub filtered_summary_sets: usize,
    /// Review-qualified rankings served (`with reviews(...)`
    /// statements) — the `filtered_summary_queries` counter in `/stats`
    /// that the serve-smoke CI job guards.
    pub filtered_summary_queries: u64,
    /// Top-k retrievals answered by the Block-Max-WAND path, summed
    /// over the review index (co-occurrence interpretation) and the
    /// entity index (text fallback) — the `/stats` counter the
    /// serve-smoke CI job greps.
    pub wand_queries: u64,
    /// Top-k retrievals answered by the exhaustive ablation scorer.
    pub exhaustive_queries: u64,
    /// Posting blocks bypassed via skip pointers across both indexes —
    /// the bench smoke guard panics when this stays zero on the cold
    /// scenario.
    pub blocks_skipped: u64,
    /// Queries cancelled mid-scan because their deadline expired
    /// (surfaced to callers as [`OpineError::QueryTimeout`]).
    pub timed_out_queries: u64,
    /// Faults triggered by the `opine_faults` failpoints (delays,
    /// injected errors, injected panics) — zero unless fault injection
    /// is armed. The chaos-smoke CI job greps this from `/stats`.
    pub faults_injected: u64,
    /// The current data epoch: bumped by every published `INSERT` batch
    /// and every completed delta merge. 0 until the first insert.
    pub ingest_epoch: u64,
    /// Delta reviews live in the current generation (level, not a
    /// counter: a future delta GC could shrink it).
    pub delta_reviews: u64,
    /// Reviews accepted by `INSERT` statements since startup.
    pub inserted_reviews: u64,
    /// Delta merges that published (froze posting blocks + partials).
    pub delta_merges: u64,
    /// Delta merges that failed and were rolled back — the previous
    /// epoch kept serving. The chaos-smoke CI job greps this.
    pub failed_merges: u64,
}

/// One exported value of a [`CacheReport`] field, typed so each metrics
/// surface can render it idiomatically (JSON object vs. Prometheus
/// counter/gauge lines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level that can go up or down.
    Gauge(u64),
    /// A boolean toggle (rendered as `true`/`false` or `0`/`1`).
    Flag(bool),
    /// A cache's hit/miss pair.
    Cache(CacheStats),
}

impl CacheReport {
    /// Every public field as a `(name, value)` pair, in declaration
    /// order, under the names the `/stats` JSON uses. Both `/stats` and
    /// the `/metrics` Prometheus exposition render from this one list,
    /// so the two surfaces cannot drift apart.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, MetricValue)> {
        use MetricValue::{Cache, Counter, Flag, Gauge};
        [
            ("interpretations", Cache(self.interpretations)),
            ("phrases", Cache(self.phrases)),
            ("points", Cache(self.points)),
            ("degree_columns", Cache(self.columns)),
            ("cached_degree_columns", Gauge(self.cached_columns as u64)),
            ("degree_column_bytes", Gauge(self.column_bytes as u64)),
            ("quantized_columns", Flag(self.quantized_columns)),
            ("ta_queries", Counter(self.ta_queries)),
            ("pushdown_queries", Counter(self.pushdown_queries)),
            ("filtered_summaries", Cache(self.filtered_summaries)),
            (
                "filtered_summary_sets",
                Gauge(self.filtered_summary_sets as u64),
            ),
            (
                "filtered_summary_queries",
                Counter(self.filtered_summary_queries),
            ),
            ("wand_queries", Counter(self.wand_queries)),
            ("exhaustive_queries", Counter(self.exhaustive_queries)),
            ("blocks_skipped", Counter(self.blocks_skipped)),
            ("timed_out_queries", Counter(self.timed_out_queries)),
            ("faults_injected", Counter(self.faults_injected)),
            ("ingest_epoch", Gauge(self.ingest_epoch)),
            ("delta_reviews", Gauge(self.delta_reviews)),
            ("inserted_reviews", Counter(self.inserted_reviews)),
            ("delta_merges", Counter(self.delta_merges)),
            ("failed_merges", Counter(self.failed_merges)),
        ]
        .into_iter()
    }
}

/// A query phrase prepared for membership scoring: its normalized
/// embedding and sentiment, computed once instead of once per entity.
#[derive(Debug, Clone)]
pub struct PreparedPhrase {
    /// Normalized phrase embedding.
    pub rep: Vec<f32>,
    /// Phrase sentiment.
    pub sentiment: f64,
}

/// Quantization scale of the `u16` degree representation.
const QUANT_SCALE: f64 = u16::MAX as f64;

/// Storage of a degree column: exact `f64` per entity, or ceil-quantized
/// `u16` (the ROADMAP "degree-column memory" representation — 4x smaller,
/// with the dequantized value a guaranteed *upper bound* of the exact
/// degree so the threshold algorithm stays correct).
#[derive(Debug)]
enum DegreeData {
    Exact(Vec<f64>),
    Quantized(Vec<u16>),
}

/// The dense degree column of one predicate: one slot per entity, plus
/// the descending-degree entity order (TA's sorted-access list),
/// computed once on demand and reused by every subsequent top-k over
/// the same predicate.
#[derive(Debug)]
pub struct DegreeColumn {
    data: DegreeData,
    sorted: OnceLock<Vec<u32>>,
}

impl DegreeColumn {
    fn exact(degrees: Vec<f64>) -> Self {
        DegreeColumn {
            data: DegreeData::Exact(degrees),
            sorted: OnceLock::new(),
        }
    }

    /// Ceil quantization: the dequantized value never under-estimates
    /// the exact degree, which is what TA's threshold bound needs.
    fn quantized(degrees: &[f64]) -> Self {
        DegreeColumn {
            data: DegreeData::Quantized(
                degrees
                    .iter()
                    .map(|&d| (d.clamp(0.0, 1.0) * QUANT_SCALE).ceil() as u16)
                    .collect(),
            ),
            sorted: OnceLock::new(),
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        match &self.data {
            DegreeData::Exact(v) => v.len(),
            DegreeData::Quantized(v) => v.len(),
        }
    }

    /// True when the column holds no entities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the `u16` representation.
    pub fn is_quantized(&self) -> bool {
        matches!(self.data, DegreeData::Quantized(_))
    }

    /// Exact degree of truth per entity id; `None` for quantized
    /// columns, whose exact degrees must be recomputed point-wise.
    pub fn degrees(&self) -> Option<&[f64]> {
        match &self.data {
            DegreeData::Exact(v) => Some(v),
            DegreeData::Quantized(_) => None,
        }
    }

    /// Upper bound of the entity's degree: the exact value, or the
    /// dequantized ceil for quantized columns.
    #[inline]
    pub fn upper(&self, entity: usize) -> f64 {
        match &self.data {
            DegreeData::Exact(v) => v[entity],
            DegreeData::Quantized(v) => f64::from(v[entity]) / QUANT_SCALE,
        }
    }

    /// Heap bytes of the degree storage (the cache-footprint number the
    /// quantization ablation measures).
    pub fn memory_bytes(&self) -> usize {
        match &self.data {
            DegreeData::Exact(v) => v.len() * std::mem::size_of::<f64>(),
            DegreeData::Quantized(v) => v.len() * std::mem::size_of::<u16>(),
        }
    }

    /// A copy with the given `(entity, exact degree)` slots replaced —
    /// the live-ingest cache-repair path, which recomputes only the
    /// entities whose delta version moved past the cached column's
    /// epoch stamp instead of rebuilding all of them. Quantized slots
    /// re-quantize with the same ceil rule as a cold build; the sorted
    /// order is recomputed lazily by the new column.
    fn patched(&self, updates: &[(usize, f64)]) -> DegreeColumn {
        match &self.data {
            DegreeData::Exact(v) => {
                let mut v = v.clone();
                for &(entity, degree) in updates {
                    v[entity] = degree;
                }
                DegreeColumn::exact(v)
            }
            DegreeData::Quantized(q) => {
                let mut q = q.clone();
                for &(entity, degree) in updates {
                    q[entity] = (degree.clamp(0.0, 1.0) * QUANT_SCALE).ceil() as u16;
                }
                DegreeColumn {
                    data: DegreeData::Quantized(q),
                    sorted: OnceLock::new(),
                }
            }
        }
    }

    /// Entity ids in descending-degree order (ties by entity id), by
    /// [`Self::upper`]. Sorted once per column; repeated queries reuse
    /// the order.
    pub fn sorted_order(&self) -> &[u32] {
        self.sorted.get_or_init(|| {
            let mut order: Vec<u32> = (0..self.len() as u32).collect();
            order.sort_by(|&a, &b| {
                self.upper(b as usize)
                    .total_cmp(&self.upper(a as usize))
                    .then_with(|| a.cmp(&b))
            });
            order
        })
    }
}

/// Bidirectional entity id ↔ entity-table row position maps.
///
/// `row_to_entity` holds `u32::MAX` for rows that are not an entity's
/// canonical row (only possible with duplicate keys).
#[derive(Debug)]
struct EntityRowMaps {
    entity_to_row: Vec<u32>,
    row_to_entity: Vec<u32>,
}

/// One bucket atom of the partitioned review-qualified summaries:
/// every raw occurrence of one `(entity, attribute)` whose source
/// review shares a publication year and a reviewer-degree bucket
/// (`⌊log2(reviews the author wrote)⌋`). The atom spans a `[start,
/// end)` range of exact-degree sub-partials inside the cell's flat
/// accumulator store ([`CellPartials`]).
///
/// A bucket-aligned qualifier merges whole atoms without looking at
/// individual degrees; a min-degree threshold that cuts *through* the
/// bucket (the paper's "at least 10 hotels" cuts `[8, 16)`) resolves
/// just that atom's sub-partials — no raw occurrence is ever
/// re-aggregated at query time.
#[derive(Debug)]
struct PartialAtom {
    /// Publication year shared by this atom's occurrences.
    year: u32,
    /// `⌊log2(author review count)⌋` shared by this atom's occurrences.
    degree_bucket: u8,
    /// Sub-partial range `[start, end)` in the cell's flat store.
    start: u32,
    end: u32,
}

/// Flat per-`(entity, attribute)` store of the partial summaries, laid
/// out struct-of-arrays: sub-partial `s` owns `counts_q[s·k ..
/// (s+1)·k]` and `senti_q[s·k .. (s+1)·k]` (k = markers of the
/// attribute). Contiguous accumulators keep the qualifier merge loop
/// sequential in memory — merging a sub-partial is two k-element slice
/// additions, not a pointer chase through per-summary heap
/// allocations. Fixed-point accumulation (see `core::summary`) makes
/// any merge order bit-identical to the from-scratch rebuild.
#[derive(Debug, Default)]
struct CellPartials {
    /// Bucket atoms, sorted by (year, degree bucket); ranges index the
    /// arrays below.
    atoms: Vec<PartialAtom>,
    /// Exact reviewer degree per sub-partial (ascending within an
    /// atom).
    degrees: Vec<u32>,
    /// Total phrase count per sub-partial.
    totals: Vec<f64>,
    /// Unmatched phrase count per sub-partial.
    unmatcheds: Vec<f64>,
    /// Quantized per-marker mass, `subs × k`.
    counts_q: Vec<i64>,
    /// Quantized per-marker `Σ sentiment·weight`, `subs × k`.
    senti_q: Vec<i64>,
}

impl CellPartials {
    /// Merges sub-partial `s` into `out`.
    #[inline]
    fn merge_sub(&self, s: usize, k: usize, out: &mut MarkerSummary) {
        out.merge_quantized(
            &self.counts_q[s * k..(s + 1) * k],
            &self.senti_q[s * k..(s + 1) * k],
            self.totals[s],
            self.unmatcheds[s],
        );
    }
}

/// Degree bucket of a reviewer who wrote `count` reviews.
#[inline]
fn degree_bucket(count: u32) -> u8 {
    count.max(1).ilog2() as u8
}

/// Resolves one raw occurrence into its summary contribution — the one
/// shared aggregation step of the build-time partials, the bucket-merge
/// straddle refinement, and the raw-scan rebuild. Sharing it (and the
/// fixed-point accumulators underneath) is what makes every route
/// produce bit-identical summaries.
fn occ_contribution<'a>(
    domain: &'a LinguisticDomain,
    markers: &MarkerSet,
    config: &BuildConfig,
    occ: &PhraseOcc,
) -> PhraseContribution<'a> {
    let variation = &domain.variations()[occ.variation];
    PhraseContribution::compute(
        &variation.phrase,
        &variation.rep,
        occ.sentiment,
        markers,
        config.assign,
        config.unmatched_threshold,
        occ.review_id,
    )
}

/// How a min-degree threshold relates to one degree bucket.
enum BucketCut {
    /// Every reviewer in the bucket meets the threshold.
    Full,
    /// No reviewer in the bucket meets the threshold.
    Out,
    /// The threshold cuts through the bucket; the atom's exact-degree
    /// sub-partials resolve it.
    Straddle,
}

fn classify_bucket(bucket: u8, min_count: u32) -> BucketCut {
    let lo: u32 = 1 << bucket;
    // Upper bound of the bucket, saturating for the top bucket.
    let hi: u32 = lo.saturating_mul(2).saturating_sub(1);
    if min_count <= lo {
        BucketCut::Full
    } else if min_count > hi {
        BucketCut::Out
    } else {
        BucketCut::Straddle
    }
}

/// An interpretation with its query-side work hoisted out of the
/// per-entity loop: embeddings, sentiments, and fallback term ids are
/// computed once, so scoring an entity touches only entity state.
enum PreparedInterpretation {
    /// Stage 1: one attribute, scored against the original phrase.
    Direct {
        attribute: usize,
        phrase: Arc<PreparedPhrase>,
    },
    /// Stage 2: fuzzy combination of `(attribute, marker phrase)` terms.
    CoOccur {
        terms: Vec<(usize, Arc<PreparedPhrase>)>,
        conjunctive: bool,
    },
    /// Stage 3: BM25 fallback over pre-resolved term ids.
    Text { terms: Vec<WordId> },
}

/// One validated `INSERT` row, resolved against the frozen entity set.
struct InsertRow {
    entity: usize,
    text: String,
    /// `None` defaults to a fresh reviewer id at apply time.
    reviewer_id: Option<usize>,
    year: u32,
    helpful_votes: u32,
}

/// An `INSERT` rejection (shape/typing/unknown-entity problems surface
/// as execution errors, like the executor's own validation does).
fn insert_error(message: String) -> OpineError {
    OpineError::Store(StoreError::Execution(message))
}

/// The subjective database engine.
pub struct OpineDb {
    /// Subjective attribute names, index-aligned with the domain spec.
    pub attributes: Vec<String>,
    vocab: Vocab,
    embedder: PhraseEmbedder,
    sentiment: SentimentAnalyzer,
    opinion_domains: Vec<LinguisticDomain>,
    interpreter: Interpreter,
    summaries: Vec<Vec<MarkerSummary>>,
    raw: Vec<Vec<Vec<PhraseOcc>>>,
    membership_markers: MembershipModel,
    membership_scan: MembershipModel,
    entity_index: InvertedIndex,
    catalog: Catalog,
    entity_table: String,
    entity_keys: Vec<String>,
    key_to_entity: HashMap<String, usize>,
    review_meta: Vec<ReviewMeta>,
    /// Reviews aggregated per entity, precomputed at build time (the
    /// old `review_count` walked every review per call).
    entity_review_counts: Vec<u32>,
    /// Reviews written per reviewer id — the degree the qualifier's
    /// `reviewer_min_count` thresholds compare against.
    reviewer_counts: Vec<u32>,
    /// Per `(entity, attribute)`: raw occurrences partitioned by
    /// `(year, reviewer degree)` into mergeable partial summaries,
    /// grouped into log2-degree bucket atoms over a flat accumulator
    /// store.
    partials: Vec<Vec<CellPartials>>,
    config: BuildConfig,
    /// Predicate → dense degree column over all entities, with its sorted
    /// order, stamped with the data epoch it was built (or last repaired)
    /// at. Populated in parallel on first use; keyed by predicate text
    /// so repeated queries reuse both the degrees and the sort. Bounded:
    /// columns are the largest per-entry cache (8 bytes × entities each).
    column_cache: BoundedCache<(u64, Arc<DegreeColumn>)>,
    /// `(entity, predicate)` → epoch-stamped degree memo for the lazy
    /// point path taken by mixed queries, where an objective filter
    /// admits few rows and a full column build would be wasted work.
    point_cache: BoundedCache<(u64, f64)>,
    /// Phrase → normalized embedding + sentiment, shared by the
    /// interpretation, marker-match (`attr .= "phrase"`), and column
    /// scoring paths.
    phrase_cache: BoundedCache<Arc<PreparedPhrase>>,
    /// When false, degrees are recomputed by scanning raw extractions
    /// (the Table 7 "no markers" ablation).
    use_markers: std::sync::atomic::AtomicBool,
    /// When false, degrees are recomputed on every call (honest timing)
    /// and the batched/TA fast paths are disabled.
    cache_degrees: std::sync::atomic::AtomicBool,
    /// When true, new degree columns are stored as `u16` (4x smaller);
    /// query answers stay exact via frontier rescoring.
    quantize_columns: std::sync::atomic::AtomicBool,
    /// When false, `rank_subjective_conjunction` refuses candidate
    /// bitmaps, so mixed queries fall back to row-at-a-time residual
    /// scoring — the pre-pushdown behaviour, kept as an ablation and as
    /// the property-test reference path.
    objective_pushdown: std::sync::atomic::AtomicBool,
    /// Entity id ↔ base-table row position maps, built once on first
    /// pushdown (the executor's candidate bitmaps are row-indexed).
    entity_rows: OnceLock<Option<EntityRowMaps>>,
    /// TA fast-path rankings served.
    ta_queries: std::sync::atomic::AtomicU64,
    /// TA rankings that carried an objective candidate bitmap.
    pushdown_queries: std::sync::atomic::AtomicU64,
    /// Qualifier rendering → merged summary set, so repeated
    /// review-qualified statements (the interactive case) skip even the
    /// bucket merge.
    filtered_cache: BoundedCache<Arc<Vec<Vec<MarkerSummary>>>>,
    /// Review-qualified rankings served (the `/stats`
    /// `filtered_summary_queries` counter).
    qualified_queries: std::sync::atomic::AtomicU64,
    /// Queries cancelled by an expired deadline (mapped to
    /// [`OpineError::QueryTimeout`] at the query entry).
    timed_out_queries: std::sync::atomic::AtomicU64,
    /// Live ingest: the published delta generation, the writer lock,
    /// and the ingest counters.
    ingest: IngestState,
}

impl OpineDb {
    /// Assembles a database from prebuilt parts (used by [`crate::build`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        attributes: Vec<String>,
        vocab: Vocab,
        embedder: PhraseEmbedder,
        sentiment: SentimentAnalyzer,
        opinion_domains: Vec<LinguisticDomain>,
        interpreter: Interpreter,
        summaries: Vec<Vec<MarkerSummary>>,
        raw: Vec<Vec<Vec<PhraseOcc>>>,
        membership_markers: MembershipModel,
        membership_scan: MembershipModel,
        entity_index: InvertedIndex,
        catalog: Catalog,
        entity_table: String,
        entity_keys: Vec<String>,
        review_meta: Vec<ReviewMeta>,
        config: BuildConfig,
    ) -> Self {
        let key_to_entity = entity_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();

        // Per-entity and per-reviewer review counts, both needed at
        // query time: the former answers `review_count` in O(1), the
        // latter resolves reviewer-degree thresholds.
        let mut entity_review_counts = vec![0u32; entity_keys.len()];
        let max_reviewer = review_meta.iter().map(|m| m.reviewer_id).max();
        let mut reviewer_counts = vec![0u32; max_reviewer.map_or(0, |m| m + 1)];
        // lint:allow(checkpoint_coverage, reason = "construction path; no request deadline is armed during build")
        for meta in &review_meta {
            if let Some(c) = entity_review_counts.get_mut(meta.entity_id) {
                *c += 1;
            }
            reviewer_counts[meta.reviewer_id] += 1;
        }

        // Partition every raw occurrence by (year, reviewer degree)
        // into mergeable partial summaries, grouped into log2-degree
        // bucket atoms over a flat accumulator store. Contributions are
        // resolved through the same fixed-point path the full summaries
        // and the rebuild fallback use, so merging partials reproduces
        // either bit-for-bit. Entities are independent, so the
        // construction fans out over entity chunks like the degree
        // columns do.
        let marker_sets = interpreter.marker_sets();
        let partials: Vec<Vec<CellPartials>> = par::par_map(raw.len(), |entity| {
            raw[entity]
                .iter()
                .enumerate()
                .map(|(attr, occs)| {
                    let k = marker_sets[attr].markers.len();
                    // (year, exact degree) → partial, in key order.
                    let mut subs: std::collections::BTreeMap<(u32, u32), MarkerSummary> =
                        std::collections::BTreeMap::new();
                    // lint:allow(checkpoint_coverage, reason = "construction path; no request deadline is armed during build")
                    for occ in occs {
                        let meta = &review_meta[occ.review_id];
                        let degree = reviewer_counts[meta.reviewer_id];
                        let partial = subs
                            .entry((meta.year, degree))
                            .or_insert_with(|| MarkerSummary::empty(k));
                        let contribution = occ_contribution(
                            &opinion_domains[attr],
                            &marker_sets[attr],
                            &config,
                            occ,
                        );
                        partial.apply(&contribution, false);
                    }
                    // Flatten into the SoA store; BTreeMap order
                    // keeps sub-partials sorted by degree within
                    // each (year, bucket) atom run.
                    let mut cell = CellPartials::default();
                    // lint:allow(checkpoint_coverage, reason = "construction path; no request deadline is armed during build")
                    for ((year, degree), partial) in subs {
                        let bucket = degree_bucket(degree);
                        let s = cell.degrees.len() as u32;
                        match cell.atoms.last_mut() {
                            Some(atom) if atom.year == year && atom.degree_bucket == bucket => {
                                atom.end = s + 1;
                            }
                            _ => cell.atoms.push(PartialAtom {
                                year,
                                degree_bucket: bucket,
                                start: s,
                                end: s + 1,
                            }),
                        }
                        cell.degrees.push(degree);
                        cell.totals.push(partial.total);
                        cell.unmatcheds.push(partial.unmatched);
                        cell.counts_q.extend_from_slice(partial.quantized_counts());
                        cell.senti_q
                            .extend_from_slice(partial.quantized_sentiments());
                    }
                    cell
                })
                .collect()
        });

        Self {
            attributes,
            vocab,
            embedder,
            sentiment,
            opinion_domains,
            interpreter,
            summaries,
            raw,
            membership_markers,
            membership_scan,
            entity_index,
            catalog,
            entity_table,
            entity_keys,
            key_to_entity,
            review_meta,
            entity_review_counts,
            reviewer_counts,
            partials,
            config,
            column_cache: BoundedCache::new(256),
            point_cache: BoundedCache::new(65_536),
            phrase_cache: BoundedCache::new(4096),
            use_markers: std::sync::atomic::AtomicBool::new(true),
            cache_degrees: std::sync::atomic::AtomicBool::new(true),
            quantize_columns: std::sync::atomic::AtomicBool::new(false),
            objective_pushdown: std::sync::atomic::AtomicBool::new(true),
            entity_rows: OnceLock::new(),
            ta_queries: std::sync::atomic::AtomicU64::new(0),
            pushdown_queries: std::sync::atomic::AtomicU64::new(0),
            filtered_cache: BoundedCache::new(16),
            qualified_queries: std::sync::atomic::AtomicU64::new(0),
            timed_out_queries: std::sync::atomic::AtomicU64::new(0),
            ingest: IngestState::new(),
        }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_keys.len()
    }

    /// The entity key (name) for a dense entity id.
    pub fn entity_key(&self, entity: usize) -> &str {
        &self.entity_keys[entity]
    }

    /// Dense entity id for a key, if known.
    pub fn entity_id(&self, key: &str) -> Option<usize> {
        self.key_to_entity.get(key).copied()
    }

    /// The name of the entity table ("hotels" / "restaurants").
    pub fn entity_table(&self) -> &str {
        &self.entity_table
    }

    /// The relational catalog (entities + reviews).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The marker set of an attribute.
    pub fn marker_set(&self, attribute: usize) -> &MarkerSet {
        &self.interpreter.marker_sets()[attribute]
    }

    /// The marker summary of an entity/attribute.
    pub fn summary(&self, entity: usize, attribute: usize) -> &MarkerSummary {
        &self.summaries[entity][attribute]
    }

    /// The vocabulary built over the corpus.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The phrase embedder (word2vec + IDF).
    pub fn embedder(&self) -> &PhraseEmbedder {
        &self.embedder
    }

    /// The sentiment analyzer.
    pub fn sentiment(&self) -> &SentimentAnalyzer {
        &self.sentiment
    }

    /// The three-stage interpreter.
    pub fn interpreter(&self) -> &Interpreter {
        &self.interpreter
    }

    /// Enables/disables marker summaries for degree computation (the
    /// Table 7 ablation). Clears the degree-column cache, whose contents
    /// depend on the flag.
    pub fn set_use_markers(&self, enabled: bool) {
        // sync: independent ablation toggle; no data is published through
        // it and the cache clears below make stale reads harmless.
        self.use_markers
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        self.column_cache.clear();
        self.point_cache.clear();
    }

    /// Enables/disables the degree-of-truth cache (disabled for honest
    /// per-query timing in the Table 7 experiment) and clears it. While
    /// disabled, queries take the naive row-at-a-time scoring path — no
    /// batched columns, no threshold-algorithm ranking.
    pub fn set_degree_cache(&self, enabled: bool) {
        // sync: independent ablation toggle; no data is published through
        // it and the cache clears below make stale reads harmless.
        self.cache_degrees
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        self.column_cache.clear();
        self.point_cache.clear();
        self.phrase_cache.clear();
    }

    /// Switches degree columns between exact `f64` and quantized `u16`
    /// storage (the ROADMAP "degree-column memory" ablation; ~4x
    /// smaller cache footprint, exact answers preserved through
    /// frontier rescoring). Clears the column cache, whose
    /// representation the flag controls.
    pub fn set_quantized_columns(&self, enabled: bool) {
        // sync: independent ablation toggle; no data is published through
        // it and the cache clear below makes stale reads harmless.
        self.quantize_columns
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        self.column_cache.clear();
    }

    /// Enables/disables the objective-predicate pushdown into the TA
    /// fast path. Disabled, mixed queries score row-at-a-time over the
    /// prefiltered candidates — the pre-pushdown behaviour, used as the
    /// ablation baseline and the property-test reference.
    pub fn set_objective_pushdown(&self, enabled: bool) {
        // sync: independent ablation toggle; either setting yields a
        // correct (if differently routed) answer, so no ordering needed.
        self.objective_pushdown
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Routes BM25 top-k retrieval (the co-occurrence interpretation
    /// stage and the entity text index) through Block-Max WAND (the
    /// default) or the exhaustive posting traversal — the ablation the
    /// equivalence tests and the cold-interpretation bench compare.
    /// Answers are bit-identical either way; the interpretation memo
    /// and degree caches are cleared so the ablation re-runs the full
    /// cascade instead of replaying memoized results.
    pub fn set_wand(&self, enabled: bool) {
        self.entity_index.set_wand(enabled);
        self.interpreter.review_index().set_wand(enabled);
        self.interpreter.clear_cache();
        self.column_cache.clear();
        self.point_cache.clear();
    }

    /// How many TA fast-path rankings carried an objective candidate
    /// bitmap — the pushdown counter (also in [`Self::cache_report`]).
    pub fn pushdown_queries(&self) -> u64 {
        self.pushdown_queries
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drops only the cached degree columns, leaving the interpretation
    /// and phrase memos warm — used to benchmark column construction in
    /// isolation.
    pub fn clear_degree_columns(&self) {
        self.column_cache.clear();
    }

    /// Drops every query-time cache: memoized interpretations, degree
    /// columns, and prepared phrases. Used by benches to measure the cold
    /// path honestly.
    pub fn clear_caches(&self) {
        self.interpreter.clear_cache();
        self.column_cache.clear();
        self.point_cache.clear();
        self.phrase_cache.clear();
        self.filtered_cache.clear();
    }

    /// Drops only the cached merged summary sets of review-qualified
    /// statements — used to benchmark the bucket merge in isolation.
    pub fn clear_filtered_summaries(&self) {
        self.filtered_cache.clear();
    }

    /// Hit/miss counters of the interpretation memo.
    pub fn interp_cache_stats(&self) -> CacheStats {
        self.interpreter.cache_stats()
    }

    /// Hit/miss counters of the prepared-phrase memo.
    pub fn phrase_cache_stats(&self) -> CacheStats {
        self.phrase_cache.stats()
    }

    /// Number of cached degree columns.
    pub fn cached_degree_columns(&self) -> usize {
        self.column_cache.len()
    }

    /// Snapshot of every query-path cache (interpretations, phrases,
    /// point degrees, degree columns) — the `/stats` payload's engine
    /// section.
    pub fn cache_report(&self) -> CacheReport {
        let mut column_bytes = 0usize;
        self.column_cache
            .for_each_value(|(_, c)| column_bytes += c.memory_bytes());
        let review_ir = self.interpreter.review_index().retrieval_stats();
        let entity_ir = self.entity_index.retrieval_stats();
        let delta = self.ingest.cell.load();
        CacheReport {
            interpretations: self.interpreter.cache_stats(),
            phrases: self.phrase_cache.stats(),
            points: self.point_cache.stats(),
            columns: self.column_cache.stats(),
            cached_columns: self.column_cache.len(),
            column_bytes,
            // sync: ablation-toggle read for a stats report; staleness fine.
            quantized_columns: self
                .quantize_columns
                .load(std::sync::atomic::Ordering::Relaxed),
            ta_queries: self.ta_queries.load(std::sync::atomic::Ordering::Relaxed),
            pushdown_queries: self.pushdown_queries(),
            filtered_summaries: self.filtered_cache.stats(),
            filtered_summary_sets: self.filtered_cache.len(),
            filtered_summary_queries: self.qualified_queries(),
            wand_queries: review_ir.wand_queries + entity_ir.wand_queries,
            exhaustive_queries: review_ir.exhaustive_queries + entity_ir.exhaustive_queries,
            blocks_skipped: review_ir.blocks_skipped + entity_ir.blocks_skipped,
            timed_out_queries: self
                .timed_out_queries
                .load(std::sync::atomic::Ordering::Relaxed),
            faults_injected: opine_faults::injected_total(),
            ingest_epoch: delta.epoch(),
            delta_reviews: delta.value().meta.len() as u64,
            inserted_reviews: self.ingest.inserted_reviews.load(Relaxed),
            delta_merges: self.ingest.delta_merges.load(Relaxed),
            failed_merges: self.ingest.failed_merges.load(Relaxed),
        }
    }

    /// How many review-qualified rankings this engine served (also in
    /// [`Self::cache_report`]).
    pub fn qualified_queries(&self) -> u64 {
        self.qualified_queries
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The marker-feature membership function.
    pub fn membership_markers(&self) -> &MembershipModel {
        &self.membership_markers
    }

    /// The raw-scan membership function (no-marker ablation).
    pub fn membership_scan(&self) -> &MembershipModel {
        &self.membership_scan
    }

    /// The opinion-level linguistic domain of an attribute.
    pub fn opinion_domain(&self, attribute: usize) -> &LinguisticDomain {
        &self.opinion_domains[attribute]
    }

    /// `(rep, sentiment)` views of every raw extracted phrase of an
    /// entity/attribute (the scan path's input).
    pub fn raw_phrases(&self, entity: usize, attribute: usize) -> Vec<(&[f32], f64)> {
        self.raw[entity][attribute]
            .iter()
            .map(|occ| {
                (
                    self.opinion_domains[attribute].variations()[occ.variation]
                        .rep
                        .as_slice(),
                    occ.sentiment,
                )
            })
            .collect()
    }

    /// Executes a Subjective SQL query (the paper's running example shape:
    /// `select * from hotels where price_pn < 150 and "clean rooms"`).
    pub fn query(&self, sql: &str) -> Result<QueryOutput, OpineError> {
        let q = self.query_ref(sql)?;
        Ok(QueryOutput {
            result: q.result.into_result_set(),
            interpretations: q.interpretations,
        })
    }

    /// [`Self::query`] without materialization: the returned rows borrow
    /// the catalog, so serializing an answer clones nothing per row.
    pub fn query_ref(&self, sql: &str) -> Result<QueryRef<'_>, OpineError> {
        let select = parse_select(sql).map_err(|e| OpineError::Parse(e.to_string()))?;
        self.query_select_ref(&select)
    }

    /// Executes an already-parsed statement through the borrowing path —
    /// the parse-once/execute-many entry the serving layer's prepared
    /// queries use.
    ///
    /// The whole execution runs under one pinned delta generation
    /// (installed thread-locally here, re-installed inside parallel
    /// workers): row scans see {frozen tables + that generation's
    /// overlay rows}, and every degree, count, and qualified summary
    /// underneath reads the same generation — snapshot isolation
    /// against concurrent `INSERT`s.
    pub fn query_select_ref(&self, select: &Select) -> Result<QueryRef<'_>, OpineError> {
        self.ensure_pinned(|pin| {
            let interpretations = select
                .where_clause
                .as_ref()
                .map(|w| {
                    w.subjective_predicates()
                        .into_iter()
                        .map(|p| (p.to_string(), self.interpret(p)))
                        .collect()
                })
                .unwrap_or_default();
            let overlay = (!pin.delta.overlay.is_empty()).then_some(&pin.delta.overlay);
            let result = execute_lazy_with_overlay(select, &self.catalog, self, overlay)?;
            Ok(QueryRef {
                result,
                interpretations,
                epoch: pin.epoch,
            })
        })
    }

    /// [`Self::query_select_ref`] under a request deadline: `deadline`
    /// is installed as the thread's ambient cancellation token for the
    /// duration of execution, so every long scan underneath (TA depth
    /// loops, WAND pivoting, summary-partial merges, row scoring,
    /// `par_map` fan-outs) checkpoints against it at chunk boundaries.
    ///
    /// This is the **single catch site** for the cancellation unwind: an
    /// expired checkpoint panics with [`opine_faults::Cancelled`], which
    /// is caught here and mapped to the typed
    /// [`OpineError::QueryTimeout`] (and counted in
    /// [`CacheReport::timed_out_queries`]). Every other panic payload is
    /// resumed untouched for the serving layer's per-request isolation
    /// to handle. The unwind is state-safe: the workspace's locks never
    /// poison (`parking_lot` shim) and every bounded cache computes
    /// outside its lock, so a cancelled query cannot publish a partial
    /// result.
    pub fn query_select_ref_deadline(
        &self,
        select: &Select,
        deadline: Option<opine_faults::Deadline>,
    ) -> Result<QueryRef<'_>, OpineError> {
        if deadline.is_none() {
            return self.query_select_ref(select);
        }
        opine_faults::with_deadline(deadline, || {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Coarse entry checkpoint: an already-spent budget (or a
                // pre-cancelled token) times out before any work, even
                // for queries too small to reach a strided checkpoint.
                opine_faults::checkpoint_now();
                self.query_select_ref(select)
            })) {
                Ok(result) => result,
                Err(payload) if payload.is::<opine_faults::Cancelled>() => {
                    self.timed_out_queries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Err(OpineError::QueryTimeout)
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Executes with an explicit fuzzy algebra (ablation hook; joins are
    /// only supported under the default product algebra). Degrees and
    /// counts observe one pinned delta generation like every other
    /// path, but this ablation entry does not append overlay rows —
    /// live-inserted reviews are invisible to its row scans.
    pub fn query_with_algebra(
        &self,
        sql: &str,
        algebra: FuzzyAlgebra,
    ) -> Result<QueryOutput, OpineError> {
        let select = parse_select(sql).map_err(|e| OpineError::Parse(e.to_string()))?;
        let result =
            self.ensure_pinned(|_| execute_with_algebra(&select, &self.catalog, self, algebra))?;
        Ok(QueryOutput {
            result,
            interpretations: Vec::new(),
        })
    }

    /// Interprets a predicate through the interpreter's bounded memo.
    pub fn interpret(&self, predicate: &str) -> Interpretation {
        self.interpreter
            .interpret_cached(predicate, &self.embedder, &self.vocab)
    }

    /// Degree of truth of a natural-language predicate for an entity.
    ///
    /// With the degree cache enabled (the default) this reads the
    /// predicate's dense column when one is already cached (built by the
    /// batch paths) and otherwise computes just this entity, memoizing
    /// the point value — a mixed query whose objective filter admits few
    /// rows must not trigger a full column build.
    pub fn degree(&self, entity: usize, predicate: &str) -> f64 {
        self.ensure_pinned(|pin| self.degree_pinned(entity, predicate, pin))
    }

    fn degree_pinned(&self, entity: usize, predicate: &str, pin: &Pin) -> f64 {
        if self.caching() {
            // Quantized columns only hold upper bounds, so with
            // quantization on (the cache is cleared on every flag flip,
            // so it then holds *only* quantized columns) the probe
            // would always be discarded in favour of the exact point
            // path below — skip it rather than pay a lock round-trip
            // and log a bogus cache hit per point lookup.
            // sync: ablation toggle; a stale read only routes through the
            // other (equally correct) scoring representation.
            let quantized = self
                .quantize_columns
                .load(std::sync::atomic::Ordering::Relaxed);
            if !quantized {
                if let Some((stamp, column)) = self.column_cache.get(predicate) {
                    if Self::entry_fresh(stamp, entity, pin) {
                        if let Some(degrees) = column.degrees() {
                            return degrees[entity];
                        }
                    }
                }
            }
            // `\u{1}` cannot occur in tokenized predicate text, so the
            // composite key is unambiguous.
            let key = format!("{entity}\u{1}{predicate}");
            if let Some((stamp, degree)) = self.point_cache.get(&key) {
                if Self::entry_fresh(stamp, entity, pin) {
                    return degree;
                }
            }
            let interp = self.interpret(predicate);
            let degree = self.degree_for_interpretation(entity, predicate, &interp);
            self.point_cache.insert(&key, (pin.epoch, degree));
            return degree;
        }
        let interp = self.interpret(predicate);
        self.degree_for_interpretation(entity, predicate, &interp)
    }

    /// The dense degree column of a predicate over all entities, cached
    /// when the degree cache is enabled. Degrees are computed in
    /// parallel over entity chunks.
    ///
    /// Cached columns are stamped with the data epoch they were built
    /// at. A probe from a newer pin **repairs** a stale column instead
    /// of rebuilding it: only the entities whose pinned delta version
    /// moved past the stamp recompute (an `INSERT` touches one entity;
    /// the other N−1 slots are reused verbatim).
    pub fn degree_column(&self, predicate: &str) -> Arc<DegreeColumn> {
        self.ensure_pinned(|pin| self.degree_column_pinned(predicate, pin))
    }

    fn degree_column_pinned(&self, predicate: &str, pin: &Pin) -> Arc<DegreeColumn> {
        let mut cacheable = self.caching();
        if self.caching() {
            if let Some((stamp, column)) = self.column_cache.get(predicate) {
                if stamp == pin.epoch {
                    opine_trace::count("ta_topk", "cache_hits", 1);
                    return column;
                }
                if stamp < pin.epoch {
                    let mut stale: Vec<usize> = pin
                        .delta
                        .entity_versions
                        .iter()
                        .filter(|&(_, &version)| version > stamp)
                        .map(|(&entity, _)| entity)
                        .collect();
                    if stale.is_empty() {
                        // Nothing the column depends on changed across
                        // those epochs; restamp so the next probe hits
                        // on the fast equality check.
                        opine_trace::count("ta_topk", "cache_hits", 1);
                        self.column_cache
                            .insert(predicate, (pin.epoch, column.clone()));
                        return column;
                    }
                    stale.sort_unstable();
                    opine_trace::count("ta_topk", "cache_repairs", 1);
                    let interp = self.interpret(predicate);
                    let prepared = self.prepare_interpretation(predicate, &interp);
                    let updates: Vec<(usize, f64)> = stale
                        .iter()
                        .map(|&entity| {
                            opine_faults::checkpoint();
                            (entity, self.degree_prepared(entity, &prepared))
                        })
                        .collect();
                    let column = Arc::new(column.patched(&updates));
                    self.column_cache
                        .insert(predicate, (pin.epoch, column.clone()));
                    return column;
                }
                // stamp > pin.epoch: a column from this pin's future.
                // Build privately without regressing the cached stamp.
                cacheable = false;
            }
        }
        opine_trace::count("ta_topk", "cache_misses", 1);
        let interp = self.interpret(predicate);
        let prepared = self.prepare_interpretation(predicate, &interp);
        let degrees = match &prepared {
            // Text fallback: one term-at-a-time pass over the entity
            // index's posting lists (O(total postings)) instead of a
            // per-entity per-term lookup — bit-identical to the point
            // path, which sums the same contributions per document.
            // The pinned delta's text index (present after a merge)
            // contributes through the identical dense pass, added as
            // one `f64` add per entity exactly like the point path.
            PreparedInterpretation::Text { terms }
                if self.entity_index.num_docs() == self.num_entities() =>
            {
                let mut scores = self.entity_index.bm25_dense(terms, &Bm25Params::default());
                if let Some(index) = Self::delta_text_index(pin, self.num_entities()) {
                    let delta_scores = index.bm25_dense(terms, &Bm25Params::default());
                    for (score, delta) in scores.iter_mut().zip(&delta_scores) {
                        *score += delta;
                    }
                }
                scores
                    .into_iter()
                    .map(|score| sigmoid(score - self.config.sigmoid_c))
                    .collect()
            }
            _ => par::par_map(self.num_entities(), |entity| {
                opine_faults::checkpoint();
                self.degree_prepared(entity, &prepared)
            }),
        };
        // sync: ablation toggle; a stale read only routes through the
        // other (equally correct) column representation.
        let quantize = self
            .quantize_columns
            .load(std::sync::atomic::Ordering::Relaxed);
        let column = Arc::new(if quantize {
            DegreeColumn::quantized(&degrees)
        } else {
            DegreeColumn::exact(degrees)
        });
        if cacheable {
            self.column_cache
                .insert(predicate, (pin.epoch, column.clone()));
        }
        column
    }

    /// Top-k entities for a conjunction of natural-language predicates
    /// under the product t-norm, ranked with Fagin's Threshold Algorithm
    /// over the predicates' cached degree columns and sorted orders.
    ///
    /// Returns `(entity, combined degree)` in ranking order (degree
    /// descending, entity id ascending on ties), including zero-degree
    /// entities when fewer than `k` score positively.
    pub fn rank_top_k(&self, predicates: &[&str], k: usize) -> Vec<(usize, f64)> {
        self.rank_top_k_filtered(predicates, k, None)
    }

    /// [`Self::rank_top_k`] with an optional candidate restriction: only
    /// entities with `is_candidate(entity)` true are ranked (the
    /// objective-predicate pushdown). Quantized columns route through
    /// the rescored TA — sorted access and stopping use the `u16` upper
    /// bounds, while returned scores are recomputed exactly through the
    /// (memoized) point path, so the answer is identical to the exact
    /// column's.
    pub fn rank_top_k_filtered(
        &self,
        predicates: &[&str],
        k: usize,
        is_candidate: Option<&(dyn Fn(usize) -> bool + Sync)>,
    ) -> Vec<(usize, f64)> {
        let columns: Vec<Arc<DegreeColumn>> =
            predicates.iter().map(|p| self.degree_column(p)).collect();
        let order_views: Vec<&[u32]> = columns.iter().map(|c| c.sorted_order()).collect();
        if columns.iter().all(|c| !c.is_quantized()) {
            let degree_views: Vec<&[f64]> = columns
                .iter()
                .map(|c| c.degrees().expect("exact column"))
                .collect();
            return match is_candidate {
                None => threshold_topk_dense(&degree_views, &order_views, k),
                Some(f) => threshold_topk_dense_filtered(&degree_views, &order_views, k, f),
            };
        }
        threshold_topk_rescored(
            &order_views,
            self.num_entities(),
            |p, e| columns[p].upper(e),
            |e| predicates.iter().map(|p| self.degree(e, p)).product(),
            |e| is_candidate.is_none_or(|f| f(e)),
            k,
        )
    }

    /// The objective-pushdown ranking: top-k among the candidate rows
    /// of `bitmap` (the executor's objective prefilter). Picks between
    /// two physical plans, the classic selection-vs-sorted-access
    /// optimizer choice:
    ///
    /// * **gather** — read every candidate's degrees straight from the
    ///   dense columns, combine, sort. O(candidates · predicates).
    /// * **restricted sorted access** — the filtered threshold
    ///   algorithm, which scans ~`k / selectivity` positions per list.
    ///
    /// Gather wins when the candidate set is small
    /// (`candidates² ≤ k · entities`, equating the two cost models);
    /// selective filters — the whole point of the pushdown — land
    /// there, while weak filters keep TA's early termination.
    fn rank_pushdown(
        &self,
        predicates: &[&str],
        k: usize,
        bitmap: &Bitmap,
    ) -> Option<Vec<(usize, f64)>> {
        // The bitmap indexes base-table rows; degree columns index
        // entities. Translate through the entity↔row maps (or decline
        // the pushdown if the catalog and the entity list disagree).
        let maps = self.entity_row_maps()?;
        self.pushdown_queries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let columns: Vec<Arc<DegreeColumn>> =
            predicates.iter().map(|p| self.degree_column(p)).collect();
        let all_exact = columns.iter().all(|c| !c.is_quantized());
        let cand_count = bitmap.count_ones();
        if k == 0 {
            return Some(Vec::new());
        }
        if all_exact
            && cand_count.saturating_mul(cand_count) <= k.saturating_mul(self.num_entities())
        {
            opine_trace::note(|| {
                format!("ta_topk: pushdown via gather ({cand_count} candidates, k={k})")
            });
            let views: Vec<&[f64]> = columns
                .iter()
                .map(|c| c.degrees().expect("exact column"))
                .collect();
            let mut scored: Vec<(usize, f64)> = bitmap
                .iter_ones()
                .filter_map(|row| {
                    let entity = *maps.row_to_entity.get(row)?;
                    (entity != u32::MAX).then_some(entity as usize)
                })
                .map(|e| (e, views.iter().map(|c| c[e]).product()))
                .collect();
            // Select-then-sort: partition the top k in O(candidates),
            // order only the winners.
            if scored.len() > k {
                scored.select_nth_unstable_by(k - 1, crate::topk::rank_cmp);
                scored.truncate(k);
            }
            scored.sort_by(crate::topk::rank_cmp);
            return Some(scored);
        }
        opine_trace::note(|| {
            format!(
                "ta_topk: pushdown via restricted sorted access ({cand_count} candidates, k={k})"
            )
        });
        Some(self.rank_top_k_filtered(
            predicates,
            k,
            Some(&|entity: usize| bitmap.get(maps.entity_to_row[entity] as usize)),
        ))
    }

    #[inline]
    fn caching(&self) -> bool {
        // sync: ablation toggle; stale reads only affect whether a result
        // is memoized, never its value.
        self.cache_degrees
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Normalized embedding + sentiment of a query phrase, memoized.
    ///
    /// Honest-timing mode (`set_degree_cache(false)`) bypasses the memo
    /// entirely so ablation benches measure the full recompute.
    pub fn prepare_phrase(&self, phrase: &str) -> Arc<PreparedPhrase> {
        let compute = || {
            let mut rep = self.embedder.rep(phrase, &self.vocab);
            opine_embed::normalize(&mut rep);
            Arc::new(PreparedPhrase {
                rep,
                sentiment: self.sentiment.score(phrase),
            })
        };
        if !self.caching() {
            return compute();
        }
        self.phrase_cache.get_or_insert_with(phrase, compute)
    }

    /// Hoists the query-side work of an interpretation (embeddings,
    /// sentiment, fallback term lookup) so per-entity scoring is pure
    /// entity-state access.
    fn prepare_interpretation(
        &self,
        predicate: &str,
        interp: &Interpretation,
    ) -> PreparedInterpretation {
        match interp {
            Interpretation::Direct { attribute, .. } => PreparedInterpretation::Direct {
                attribute: *attribute,
                phrase: self.prepare_phrase(predicate),
            },
            Interpretation::CoOccur { terms, conjunctive } => PreparedInterpretation::CoOccur {
                terms: terms
                    .iter()
                    .map(|&(a, m)| {
                        let phrase = &self.marker_set(a).markers[m].phrase;
                        (a, self.prepare_phrase(phrase))
                    })
                    .collect(),
                conjunctive: *conjunctive,
            },
            Interpretation::TextFallback => PreparedInterpretation::Text {
                terms: opine_text::tokenize(predicate)
                    .iter()
                    .filter_map(|t| self.vocab.get(t))
                    .collect(),
            },
        }
    }

    /// Degree of one entity under a prepared interpretation.
    fn degree_prepared(&self, entity: usize, prepared: &PreparedInterpretation) -> f64 {
        let algebra = FuzzyAlgebra::Product;
        match prepared {
            PreparedInterpretation::Direct { attribute, phrase } => {
                self.attribute_degree_prepared(entity, *attribute, phrase)
            }
            PreparedInterpretation::CoOccur { terms, conjunctive } => {
                let degrees = terms
                    .iter()
                    .map(|(a, p)| self.attribute_degree_prepared(entity, *a, p));
                if *conjunctive {
                    degrees.fold(1.0, |acc, d| algebra.and(acc, d))
                } else {
                    degrees.fold(0.0, |acc, d| algebra.or(acc, d))
                }
            }
            PreparedInterpretation::Text { terms } => {
                let pin = self.pinned();
                let mut score = self.entity_index.bm25(
                    opine_ir::DocId(entity as u32),
                    terms,
                    &Bm25Params::default(),
                );
                if let Some(index) = Self::delta_text_index(&pin, self.num_entities()) {
                    score +=
                        index.bm25(opine_ir::DocId(entity as u32), terms, &Bm25Params::default());
                }
                sigmoid(score - self.config.sigmoid_c)
            }
        }
    }

    /// The pinned delta's frozen text index, when it spans every entity
    /// (doc id == entity id) — `None` until the first merge. Both the
    /// point and the dense text paths add its BM25 contribution with
    /// one `f64` add under this same guard, so their bit-identity
    /// survives live ingest.
    fn delta_text_index(pin: &Pin, num_entities: usize) -> Option<&InvertedIndex> {
        pin.delta
            .text_index
            .as_deref()
            .filter(|index| index.num_docs() == num_entities)
    }

    /// Degree of truth under a given interpretation.
    pub fn degree_for_interpretation(
        &self,
        entity: usize,
        predicate: &str,
        interp: &Interpretation,
    ) -> f64 {
        let prepared = self.prepare_interpretation(predicate, interp);
        self.degree_prepared(entity, &prepared)
    }

    /// Degree of truth of `attribute .= phrase` for an entity, via the
    /// membership function (marker features or raw-scan features).
    pub fn attribute_degree(&self, entity: usize, attribute: usize, phrase: &str) -> f64 {
        let prepared = self.prepare_phrase(phrase);
        self.attribute_degree_prepared(entity, attribute, &prepared)
    }

    /// [`Self::attribute_degree`] with the query phrase already prepared
    /// (the per-entity hot path: no embedding or sentiment recompute).
    pub fn attribute_degree_prepared(
        &self,
        entity: usize,
        attribute: usize,
        phrase: &PreparedPhrase,
    ) -> f64 {
        let pin = self.pinned();
        // sync: ablation toggle; both branches are correct membership paths.
        if self.use_markers.load(std::sync::atomic::Ordering::Relaxed) {
            let base = &self.summaries[entity][attribute];
            let feats = match pin.delta.summaries.get(&(entity, attribute)) {
                // Delta reviews mentioned this cell: score over the
                // frozen summary merged with the pinned delta summary
                // (fixed-point merge — identical to rebuilding from
                // base + delta occurrences).
                Some(delta_summary) => {
                    let mut merged = base.clone();
                    merged.merge(delta_summary);
                    marker_features(
                        &merged,
                        self.marker_set(attribute),
                        &phrase.rep,
                        phrase.sentiment,
                    )
                }
                None => marker_features(
                    base,
                    self.marker_set(attribute),
                    &phrase.rep,
                    phrase.sentiment,
                ),
            };
            self.membership_markers.degree(&feats)
        } else {
            let occs = &self.raw[entity][attribute];
            let delta_occs = pin
                .delta
                .cells
                .get(&(entity, attribute))
                .map(|cell| cell.occs.as_slice())
                .unwrap_or(&[]);
            let phrase_refs: Vec<(&[f32], f64)> = occs
                .iter()
                .chain(delta_occs)
                .map(|occ| {
                    (
                        self.opinion_domains[attribute].variations()[occ.variation]
                            .rep
                            .as_slice(),
                        occ.sentiment,
                    )
                })
                .collect();
            self.membership_scan
                .degree(&scan_features(&phrase_refs, &phrase.rep, phrase.sentiment))
        }
    }

    /// Text-retrieval fallback degree: `sigmoid(BM25(D_e, q) − c)`,
    /// with the pinned delta's merged text contributing once a merge
    /// has frozen it (near-real-time, Lucene-style: delta text becomes
    /// retrievable at the next merge, not the next epoch).
    pub fn text_degree(&self, entity: usize, predicate: &str) -> f64 {
        let pin = self.pinned();
        let terms: Vec<_> = opine_text::tokenize(predicate)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        let mut score = self.entity_index.bm25(
            opine_ir::DocId(entity as u32),
            &terms,
            &Bm25Params::default(),
        );
        if let Some(index) = Self::delta_text_index(&pin, self.num_entities()) {
            score += index.bm25(opine_ir::DocId(entity as u32), &terms, &Bm25Params::default());
        }
        sigmoid(score - self.config.sigmoid_c)
    }

    /// Recomputes all summaries over the subset of reviews accepted by
    /// `filter` — the paper's "only consider opinions of people who
    /// reviewed at least 10 hotels" / "reviews after 2010" queries.
    ///
    /// This is the general fallback for *arbitrary* closures: it
    /// re-aggregates every raw occurrence, O(total extractions).
    /// Qualifiers expressible as year ranges + reviewer-degree
    /// thresholds should go through [`Self::summaries_qualified`], which
    /// merges the build-time partial summaries instead and returns
    /// bit-identical aggregates.
    pub fn summaries_with_review_filter<F>(&self, filter: F) -> Vec<Vec<MarkerSummary>>
    where
        F: Fn(&ReviewMeta) -> bool,
    {
        self.ensure_pinned(|pin| {
            let mut out: Vec<Vec<MarkerSummary>> = (0..self.num_entities())
                .map(|_| {
                    (0..self.attributes.len())
                        .map(|a| MarkerSummary::empty(self.marker_set(a).markers.len()))
                        .collect()
                })
                .collect();
            for (entity, per_attr) in self.raw.iter().enumerate() {
                for (attr, occs) in per_attr.iter().enumerate() {
                    for occ in occs {
                        opine_faults::checkpoint();
                        if !filter(&self.review_meta[occ.review_id]) {
                            continue;
                        }
                        let contribution = occ_contribution(
                            &self.opinion_domains[attr],
                            self.marker_set(attr),
                            &self.config,
                            occ,
                        );
                        out[entity][attr].apply(&contribution, true);
                    }
                }
            }
            // The pinned delta's occurrences re-aggregate through the
            // identical contribution path. Map iteration order varies,
            // but fixed-point accumulation is commutative bit-for-bit,
            // so the aggregates (not provenance order) are stable.
            for (&(entity, attr), cell) in &pin.delta.cells {
                for occ in &cell.occs {
                    opine_faults::checkpoint();
                    let meta = self.review_meta_at(&pin.delta, occ.review_id);
                    if !filter(&meta) {
                        continue;
                    }
                    let contribution = occ_contribution(
                        &self.opinion_domains[attr],
                        self.marker_set(attr),
                        &self.config,
                        occ,
                    );
                    out[entity][attr].apply(&contribution, true);
                }
            }
            out
        })
    }

    /// The filtered summaries of a structured review qualifier, answered
    /// by **merging** the build-time `(year, reviewer-degree bucket)`
    /// partial summaries instead of re-aggregating raw occurrences —
    /// the "interactive" path for the paper's review-qualified queries.
    ///
    /// Year ranges align exactly with the partition (atoms are
    /// per-year). A `reviewer_min_count` threshold merges every degree
    /// bucket it fully covers and re-resolves only the occurrences of
    /// the single bucket it cuts through. Fixed-point accumulation makes
    /// the result bit-identical to
    /// [`Self::summaries_with_review_filter`] over
    /// [`ReviewQualifier::accepts`] (modulo provenance, which the merge
    /// path deliberately drops).
    ///
    /// Merged sets are cached (bounded) by the qualifier's canonical
    /// rendering; repeated qualified statements cost a hash probe.
    pub fn summaries_qualified(&self, qualifier: &ReviewQualifier) -> Arc<Vec<Vec<MarkerSummary>>> {
        self.ensure_pinned(|pin| {
            // Epoch-prefixed key: a publish invalidates by cache miss,
            // not by flushing, so queries pinned before the publish
            // keep hitting their own generation's entries.
            let key = format!("{}\u{1}{}", pin.epoch, qualifier);
            if self.caching() {
                if let Some(hit) = self.filtered_cache.get(&key) {
                    opine_trace::count("summary_merge", "cache_hits", 1);
                    return hit;
                }
            }
            let span = opine_trace::span("summary_merge");
            span.count("cache_misses", 1);
            let merged = Arc::new(self.merge_qualified(qualifier, pin));
            drop(span);
            if self.caching() {
                self.filtered_cache.insert(&key, merged.clone());
            }
            merged
        })
    }

    /// The bucket-merge itself, parallel over entity chunks.
    ///
    /// Delta handling: the base atoms merge as before; each delta
    /// cell's per-year partials (frozen by the last merge) merge under
    /// the same year bounds, and the small unsealed tail (bounded by
    /// the merge threshold) re-resolves its occurrences directly. One
    /// exception — a reviewer-degree threshold compares against *live*
    /// review counts, which delta inserts can shift across the
    /// build-time log2 buckets; with a live delta such qualifiers take
    /// the exact raw rescan instead of the bucket merge, trading the
    /// shortcut for correctness (the staleness bug this PR fixes).
    fn merge_qualified(&self, qualifier: &ReviewQualifier, pin: &Pin) -> Vec<Vec<MarkerSummary>> {
        opine_faults::fire_panic("summary_merge");
        if qualifier.min_reviewer_count.is_some() && !pin.delta.is_empty() {
            return self.summaries_with_review_filter(|m| {
                qualifier.accepts(m.year, self.reviewer_review_count(m.reviewer_id) as u32)
            });
        }
        par::par_map(self.num_entities(), |entity| {
            opine_faults::checkpoint();
            (0..self.attributes.len())
                .map(|attr| {
                    let k = self.marker_set(attr).markers.len();
                    let cell = &self.partials[entity][attr];
                    let mut out = MarkerSummary::empty(k);
                    // lint:allow(checkpoint_coverage, reason = "bounded by years x degree-buckets per entity; the par_map closure checkpoints per entity")
                    for atom in &cell.atoms {
                        if qualifier.min_year.is_some_and(|y| atom.year < y)
                            || qualifier.max_year.is_some_and(|y| atom.year > y)
                        {
                            continue;
                        }
                        let cut = match qualifier.min_reviewer_count {
                            None => BucketCut::Full,
                            Some(t) => classify_bucket(atom.degree_bucket, t),
                        };
                        match cut {
                            BucketCut::Full => {
                                for s in atom.start..atom.end {
                                    cell.merge_sub(s as usize, k, &mut out);
                                }
                            }
                            BucketCut::Out => {}
                            BucketCut::Straddle => {
                                // The threshold cuts through this degree
                                // bucket: merge just the qualifying
                                // exact-degree sub-partials (sorted, so
                                // the prefix below the threshold skips).
                                let t = qualifier.min_reviewer_count.expect("straddle needs t");
                                for s in atom.start..atom.end {
                                    if cell.degrees[s as usize] >= t {
                                        cell.merge_sub(s as usize, k, &mut out);
                                    }
                                }
                            }
                        }
                    }
                    // Delta side (no reviewer threshold reaches here):
                    // merged per-year partials + the unsealed tail.
                    if let Some(delta_cell) = pin.delta.cells.get(&(entity, attr)) {
                        // lint:allow(checkpoint_coverage, reason = "bounded by distinct delta years; the par_map closure checkpoints per entity")
                        for (year, partial) in &delta_cell.year_partials {
                            if qualifier.min_year.is_some_and(|y| *year < y)
                                || qualifier.max_year.is_some_and(|y| *year > y)
                            {
                                continue;
                            }
                            out.merge(partial);
                        }
                        for occ in &delta_cell.occs[delta_cell.sealed..] {
                            opine_faults::checkpoint();
                            let meta = self.review_meta_at(&pin.delta, occ.review_id);
                            if qualifier.min_year.is_some_and(|y| meta.year < y)
                                || qualifier.max_year.is_some_and(|y| meta.year > y)
                            {
                                continue;
                            }
                            let contribution = occ_contribution(
                                &self.opinion_domains[attr],
                                self.marker_set(attr),
                                &self.config,
                                occ,
                            );
                            out.apply(&contribution, false);
                        }
                    }
                    out
                })
                .collect()
        })
    }

    /// Degree of `attribute .= phrase` computed over externally supplied
    /// summaries (pairs with [`Self::summaries_with_review_filter`]).
    pub fn attribute_degree_with_summaries(
        &self,
        summaries: &[Vec<MarkerSummary>],
        entity: usize,
        attribute: usize,
        phrase: &str,
    ) -> f64 {
        let prepared = self.prepare_phrase(phrase);
        let feats = marker_features(
            &summaries[entity][attribute],
            self.marker_set(attribute),
            &prepared.rep,
            prepared.sentiment,
        );
        self.membership_markers.degree(&feats)
    }

    /// Number of reviews aggregated for an entity: the build-time count
    /// plus the pinned delta's (both O(1); the base side used to walk
    /// every review in the corpus per call).
    pub fn review_count(&self, entity: usize) -> usize {
        let pin = self.pinned();
        self.entity_review_counts[entity] as usize
            + pin.delta.entity_counts.get(&entity).copied().unwrap_or(0) as usize
    }

    /// Number of reviews written by a reviewer — the degree the
    /// qualifier's `reviewer_min_count` thresholds compare against.
    /// Live: includes the pinned delta's reviews, which is why a
    /// reviewer-threshold qualifier over a non-empty delta must rescan
    /// instead of merging the build-time degree buckets.
    pub fn reviewer_review_count(&self, reviewer_id: usize) -> usize {
        let pin = self.pinned();
        self.reviewer_counts.get(reviewer_id).copied().unwrap_or(0) as usize
            + pin
                .delta
                .reviewer_counts
                .get(&reviewer_id)
                .copied()
                .unwrap_or(0) as usize
    }

    /// Resolves an attribute name to its index.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }

    /// Dense entity id for a row-key [`Value`]. Goes through the shared
    /// [`Value::with_key_str`] rendering — the same path the table key
    /// index uses — so text keys probe the map by `&str`, non-text keys
    /// render into a stack buffer (no per-lookup `String`), and the two
    /// layers can never disagree on how a key spells.
    fn entity_of_value(&self, key: &Value) -> Option<usize> {
        key.with_key_str(|s| self.key_to_entity.get(s).copied())
    }

    /// Entity id ↔ base-table row maps, built once: the executor's
    /// candidate bitmaps index *rows* of the entity table, while degree
    /// columns index *entities*. `None` when some entity key has no row
    /// (cannot happen for catalogs built by [`crate::build`], but a
    /// caller-assembled catalog could), in which case the pushdown is
    /// declined rather than answered wrongly.
    fn entity_row_maps(&self) -> Option<&EntityRowMaps> {
        self.entity_rows
            .get_or_init(|| {
                let table = self.catalog.table(&self.entity_table).ok()?;
                let mut entity_to_row = Vec::with_capacity(self.entity_keys.len());
                let mut row_to_entity = vec![u32::MAX; table.len()];
                for (entity, key) in self.entity_keys.iter().enumerate() {
                    let row = table.row_of_key_str(key)?;
                    entity_to_row.push(row as u32);
                    row_to_entity[row] = entity as u32;
                }
                // Rows that are no entity's canonical row (duplicate
                // keys, or extra rows in a caller-assembled catalog)
                // would be scored by the row-at-a-time path but are
                // invisible to entity-indexed ranking; the maps must
                // not exist then, so the pushdown is declined and the
                // two paths stay result-identical.
                if row_to_entity.contains(&u32::MAX) {
                    return None;
                }
                Some(EntityRowMaps {
                    entity_to_row,
                    row_to_entity,
                })
            })
            .as_ref()
    }

    // ------------------------------------------------------------------
    // Live ingest: snapshot pins, INSERT execution, the delta merge.
    // ------------------------------------------------------------------

    /// Runs `f` under a pinned delta generation: the pin already
    /// installed on this thread (so every read inside one query shares
    /// a generation), else the currently published generation installed
    /// for the duration of `f`. Every delta-aware entry point goes
    /// through this — it is what makes a whole request observe exactly
    /// one epoch.
    fn ensure_pinned<T>(&self, f: impl FnOnce(&Pin) -> T) -> T {
        if let Some(pin) = crate::ingest::current_pin() {
            return f(&pin);
        }
        let snap = self.ingest.cell.load();
        let pin = Pin {
            epoch: snap.epoch(),
            delta: snap.value().clone(),
        };
        crate::ingest::with_pin(Some(pin.clone()), || f(&pin))
    }

    /// The delta generation this thread's query pinned, or (outside a
    /// query) the currently published one. Leaf reads that don't
    /// recurse into other delta-aware paths use this instead of
    /// [`Self::ensure_pinned`].
    fn pinned(&self) -> Pin {
        crate::ingest::current_pin().unwrap_or_else(|| {
            let snap = self.ingest.cell.load();
            Pin {
                epoch: snap.epoch(),
                delta: snap.value().clone(),
            }
        })
    }

    /// Whether an epoch-stamped cache entry is valid for `entity` under
    /// `pin`: the entry must not come from the pin's future (snapshot
    /// isolation for queries pinned before a publish), and the entity
    /// must not have changed since the entry was stamped (per-entity
    /// precision — an insert into entity A never invalidates entity
    /// B's memoized degrees).
    #[inline]
    fn entry_fresh(stamp: u64, entity: usize, pin: &Pin) -> bool {
        stamp <= pin.epoch && pin.delta.entity_version(entity) <= stamp
    }

    /// Metadata of a review by global id: base reviews first, then the
    /// pinned delta's (delta review `i` has id `base_count + i`).
    #[inline]
    fn review_meta_at(&self, delta: &DeltaState, review_id: usize) -> ReviewMeta {
        if review_id < self.review_meta.len() {
            self.review_meta[review_id]
        } else {
            delta.meta[review_id - self.review_meta.len()]
        }
    }

    /// The current data epoch: 0 at build, bumped by every published
    /// `INSERT` batch and every completed merge.
    pub fn ingest_epoch(&self) -> u64 {
        self.ingest.cell.epoch()
    }

    /// Delta reviews live in the current generation.
    pub fn delta_reviews(&self) -> usize {
        self.ingest.cell.load().value().meta.len()
    }

    /// Sets the unsealed-review count that triggers a merge after an
    /// insert (clamped to ≥ 1; default
    /// [`crate::ingest::DEFAULT_MERGE_THRESHOLD`]).
    pub fn set_merge_threshold(&self, reviews: usize) {
        // sync: writer-side tuning knob; a racing insert that reads the
        // old threshold merges one batch early or late, both harmless.
        self.ingest.merge_threshold.store(reviews.max(1), Relaxed);
    }

    /// Parses and executes one `INSERT INTO reviews ...` statement.
    pub fn insert_sql(&self, sql: &str) -> Result<IngestReceipt, OpineError> {
        let stmt = parse_insert(sql).map_err(|e| OpineError::Parse(e.to_string()))?;
        self.execute_insert(&stmt)
    }

    /// Executes an already-parsed `INSERT`, all-or-nothing: the batch
    /// is validated in full, applied to a copy-on-write clone of the
    /// delta generation, and published with **one** epoch bump — a
    /// concurrent query pins either every row of the batch or none.
    ///
    /// Only the `reviews` table accepts inserts (the entity set — and
    /// with it every frozen model artifact — is fixed at build time).
    /// Columns must be listed by name. `entity` is required; the
    /// virtual `text` column carries the review text that insert-time
    /// phrase extraction and the next merge's text-index rebuild
    /// consume; `reviewer_id`, `year`, and `helpful_votes` are
    /// optional (`reviewer_id` defaults to a fresh reviewer).
    /// `review_id` is assigned by the engine and cannot be specified.
    ///
    /// When the statement pushes the unsealed delta over the merge
    /// threshold, the merge runs immediately (still under the writer
    /// lock) and publishes a second epoch. A merge failure does not
    /// fail the insert — the batch already published; the merge
    /// retries at the next threshold crossing.
    pub fn execute_insert(&self, stmt: &InsertStmt) -> Result<IngestReceipt, OpineError> {
        let rows = self.validate_insert(stmt)?;
        // lint:allow(lock_hold, reason = "single writer lock by design: inserts and merges serialize; readers pin generations and never take it")
        let _writer = self.ingest.writer.lock();
        let span = opine_trace::span("ingest");
        let snap = self.ingest.cell.load();
        // Single writer (the lock above) ⇒ the next publish gets
        // exactly this epoch; inserted entities are stamped with it.
        let new_epoch = snap.epoch() + 1;
        let mut next = (**snap.value()).clone();
        let matcher = self
            .ingest
            .matcher
            .get_or_init(|| PhraseMatcher::build(&self.opinion_domains));
        let marker_sets = self.interpreter.marker_sets();
        for row in &rows {
            opine_faults::checkpoint();
            let review_id = self.review_meta.len() + next.meta.len();
            // Fresh default: past the dense base ids plus one per prior
            // delta review, so two anonymous inserts never merge into
            // one reviewer.
            let reviewer_id = row
                .reviewer_id
                .unwrap_or(self.reviewer_counts.len() + next.meta.len());
            next.overlay.push_row(
                "reviews",
                vec![
                    Value::Int(review_id as i64),
                    Value::text(&self.entity_keys[row.entity]),
                    Value::Int(reviewer_id as i64),
                    Value::Int(i64::from(row.year)),
                    Value::Int(i64::from(row.helpful_votes)),
                ],
            );
            next.meta.push(ReviewMeta {
                entity_id: row.entity,
                reviewer_id,
                year: row.year,
                helpful_votes: row.helpful_votes,
            });
            *next.entity_counts.entry(row.entity).or_insert(0) += 1;
            *next.reviewer_counts.entry(reviewer_id).or_insert(0) += 1;
            next.entity_versions.insert(row.entity, new_epoch);
            next.unsealed_reviews += 1;
            if !row.text.is_empty() {
                let slot = next.texts.entry(row.entity).or_default();
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str(&row.text);
            }
            // Insert-time extraction against the frozen domains: each
            // occurrence lands in its cell and folds into the cell's
            // running summary through the same fixed-point contribution
            // path the build uses.
            for (attr, variation) in matcher.extract(&row.text) {
                opine_faults::checkpoint();
                let occ = PhraseOcc {
                    variation,
                    sentiment: self.opinion_domains[attr].variations()[variation].sentiment,
                    review_id,
                };
                let contribution = occ_contribution(
                    &self.opinion_domains[attr],
                    &marker_sets[attr],
                    &self.config,
                    &occ,
                );
                next.summaries
                    .entry((row.entity, attr))
                    .or_insert_with(|| MarkerSummary::empty(marker_sets[attr].markers.len()))
                    .apply(&contribution, false);
                next.cells
                    .entry((row.entity, attr))
                    .or_default()
                    .occs
                    .push(occ);
            }
        }
        let unsealed = next.unsealed_reviews;
        span.count("rows", rows.len() as u64);
        let published = self.ingest.cell.publish(next);
        debug_assert_eq!(published, new_epoch);
        self.ingest
            .inserted_reviews
            .fetch_add(rows.len() as u64, Relaxed);
        drop(span);

        // Threshold merge, still under the writer lock so no other
        // insert interleaves between the batch publish and the merge
        // publish.
        // sync: tuning knob; a stale threshold merges a batch late.
        let threshold = self.ingest.merge_threshold.load(Relaxed);
        let merged = unsealed >= threshold && self.merge_delta_locked().is_ok();
        let snap = self.ingest.cell.load();
        Ok(IngestReceipt {
            inserted: rows.len(),
            epoch: snap.epoch(),
            delta_reviews: snap.value().meta.len(),
            merged,
        })
    }

    /// Validates the whole statement before anything mutates — every
    /// rejection surfaces with zero rows applied.
    fn validate_insert(&self, stmt: &InsertStmt) -> Result<Vec<InsertRow>, OpineError> {
        if stmt.table != "reviews" {
            return Err(insert_error(format!(
                "INSERT supports only the reviews table (the `{}` entity set and every \
                 model artifact are frozen at build time), got `{}`",
                self.entity_table, stmt.table
            )));
        }
        if stmt.columns.is_empty() {
            return Err(insert_error(
                "INSERT INTO reviews requires a named column list (the virtual `text` \
                 column is not part of the stored schema)"
                    .into(),
            ));
        }
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, name) in stmt.columns.iter().enumerate() {
            opine_faults::checkpoint();
            match name.as_str() {
                "entity" | "text" | "reviewer_id" | "year" | "helpful_votes" => {}
                "review_id" => {
                    return Err(insert_error(
                        "review_id is assigned by the engine and cannot be inserted".into(),
                    ))
                }
                other => {
                    return Err(insert_error(format!(
                        "unknown insert column `{other}` \
                         (allowed: entity, text, reviewer_id, year, helpful_votes)"
                    )))
                }
            }
            if seen.insert(name.as_str(), i).is_some() {
                return Err(insert_error(format!("duplicate insert column `{name}`")));
            }
        }
        let Some(&entity_col) = seen.get("entity") else {
            return Err(insert_error(
                "INSERT INTO reviews requires the entity column".into(),
            ));
        };
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for (r, values) in stmt.rows.iter().enumerate() {
            opine_faults::checkpoint();
            if values.len() != stmt.columns.len() {
                return Err(insert_error(format!(
                    "row {r}: {} values for {} columns",
                    values.len(),
                    stmt.columns.len()
                )));
            }
            let int_field = |name: &str| -> Result<Option<i64>, OpineError> {
                match seen.get(name) {
                    None => Ok(None),
                    Some(&c) => match &values[c] {
                        Value::Int(v) => Ok(Some(*v)),
                        other => Err(insert_error(format!(
                            "row {r}: {name} must be an integer, got {other}"
                        ))),
                    },
                }
            };
            let key = values[entity_col].as_str().ok_or_else(|| {
                insert_error(format!("row {r}: entity must be a string key"))
            })?;
            let entity = self.entity_id(key).ok_or_else(|| {
                insert_error(format!(
                    "row {r}: unknown entity `{key}` (the entity set is frozen at build time)"
                ))
            })?;
            let reviewer_id = match int_field("reviewer_id")? {
                None => None,
                Some(v) if v >= 0 => Some(v as usize),
                Some(v) => {
                    return Err(insert_error(format!(
                        "row {r}: reviewer_id must be non-negative, got {v}"
                    )))
                }
            };
            let year = match int_field("year")? {
                None => 0,
                Some(v) if (0..=i64::from(u32::MAX)).contains(&v) => v as u32,
                Some(v) => return Err(insert_error(format!("row {r}: year out of range: {v}"))),
            };
            let helpful_votes = match int_field("helpful_votes")? {
                None => 0,
                Some(v) if (0..=i64::from(u32::MAX)).contains(&v) => v as u32,
                Some(v) => {
                    return Err(insert_error(format!(
                        "row {r}: helpful_votes out of range: {v}"
                    )))
                }
            };
            let text = match seen.get("text") {
                None => String::new(),
                Some(&c) => values[c]
                    .as_str()
                    .ok_or_else(|| insert_error(format!("row {r}: text must be a string")))?
                    .to_string(),
            };
            rows.push(InsertRow {
                entity,
                text,
                reviewer_id,
                year,
                helpful_votes,
            });
        }
        Ok(rows)
    }

    /// Freezes the delta: seals the overlay tail into `Arc`-shared
    /// chunks, folds every occurrence into per-year partial summaries,
    /// rebuilds the per-entity delta text index (block-max frozen, so
    /// delta BM25 serves through the same WAND machinery as the base
    /// index), and publishes the frozen artifacts with a single epoch
    /// bump. On failure (an injected `mid_merge` fault, a cancelled
    /// deadline) nothing publishes — the previous epoch keeps serving
    /// — and `failed_merges` increments.
    pub fn merge_delta(&self) -> Result<u64, OpineError> {
        // lint:allow(lock_hold, reason = "single writer lock by design: inserts and merges serialize; readers pin generations and never take it")
        let _writer = self.ingest.writer.lock();
        self.merge_delta_locked()
    }

    /// The merge body; the caller holds the writer lock.
    fn merge_delta_locked(&self) -> Result<u64, OpineError> {
        let snap = self.ingest.cell.load();
        if snap.value().unsealed_reviews == 0 {
            return Ok(snap.epoch());
        }
        let span = opine_trace::span("delta_merge");
        let new_epoch = snap.epoch() + 1;
        let marker_sets = self.interpreter.marker_sets();
        // The merge builds a complete successor generation off to the
        // side and publishes it only if every step succeeds; a panic
        // (injected fault, expired deadline) is caught — NOT resumed,
        // unlike the query path — because a failed merge is recoverable
        // by design: the old generation is untouched and keeps serving.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opine_faults::fire_panic("mid_merge");
            let mut next = (**snap.value()).clone();
            next.overlay.seal();
            // Fold all occurrences (sealed + tail) into fresh per-year
            // partials; rebuilding instead of appending keeps one code
            // path, and the delta stays small by design.
            for (&(_, attr), cell) in next.cells.iter_mut() {
                let k = marker_sets[attr].markers.len();
                let mut by_year: BTreeMap<u32, MarkerSummary> = BTreeMap::new();
                for occ in &cell.occs {
                    opine_faults::checkpoint();
                    let year = if occ.review_id < self.review_meta.len() {
                        self.review_meta[occ.review_id].year
                    } else {
                        snap.value().meta[occ.review_id - self.review_meta.len()].year
                    };
                    let contribution = occ_contribution(
                        &self.opinion_domains[attr],
                        &marker_sets[attr],
                        &self.config,
                        occ,
                    );
                    by_year
                        .entry(year)
                        .or_insert_with(|| MarkerSummary::empty(k))
                        .apply(&contribution, false);
                }
                cell.year_partials = by_year.into_iter().collect();
                cell.sealed = cell.occs.len();
            }
            // Rebuild the delta text index over every entity's merged
            // delta text (doc id == entity id so dense BM25 aligns
            // with the base index), vocabulary frozen.
            let mut index = InvertedIndex::new();
            for entity in 0..self.num_entities() {
                opine_faults::checkpoint();
                let text = next.texts.get(&entity).map(String::as_str).unwrap_or("");
                index.add_document_frozen_vocab(text, &self.vocab);
            }
            index.freeze();
            next.text_index = Some(Arc::new(index));
            // The merge changes these reviews' text-retrieval
            // contribution, so their entities must invalidate
            // epoch-stamped cache entries from before it.
            for i in next.merged_reviews..next.meta.len() {
                let entity = next.meta[i].entity_id;
                next.entity_versions.insert(entity, new_epoch);
            }
            next.merged_reviews = next.meta.len();
            next.unsealed_reviews = 0;
            next
        }));
        match built {
            Ok(next) => {
                let epoch = self.ingest.cell.publish(next);
                debug_assert_eq!(epoch, new_epoch);
                self.ingest.delta_merges.fetch_add(1, Relaxed);
                drop(span);
                Ok(epoch)
            }
            Err(payload) => {
                self.ingest.failed_merges.fetch_add(1, Relaxed);
                drop(span);
                if payload.is::<opine_faults::Cancelled>() {
                    Err(OpineError::QueryTimeout)
                } else {
                    Err(OpineError::Store(StoreError::Execution(
                        "delta merge failed and was rolled back; the previous epoch keeps serving"
                            .into(),
                    )))
                }
            }
        }
    }
}

/// A scorer view over one review qualifier's merged summaries: every
/// subjective degree is computed from the filtered summaries through
/// [`OpineDb::attribute_degree_with_summaries`], so only qualifying
/// reviews count. Interpretations, prepared phrases, and the membership
/// model are shared with the engine; the unqualified degree-column and
/// point caches are bypassed (their entries assume all reviews).
///
/// The executor obtains one per qualified statement via
/// [`SubjectiveScorer::qualified_scorer`]. It deliberately declines the
/// TA fast path (`rank_subjective_conjunction` default): qualified
/// statements score row-at-a-time over the merged summaries.
pub struct QualifiedScorer<'a> {
    db: &'a OpineDb,
    summaries: Arc<Vec<Vec<MarkerSummary>>>,
}

impl QualifiedScorer<'_> {
    fn entity(&self, key: &Value) -> Result<usize, StoreError> {
        self.db
            .entity_of_value(key)
            .ok_or_else(|| StoreError::Execution(format!("unknown entity key {key}")))
    }

    /// Degree of a natural-language predicate over the filtered
    /// summaries. The text-retrieval fallback (stage 3) scores the
    /// entity's full review document — BM25 has no per-review summary
    /// to filter — so it is the one stage a qualifier cannot scope.
    fn degree(&self, entity: usize, predicate: &str) -> f64 {
        let algebra = FuzzyAlgebra::Product;
        match self.db.interpret(predicate) {
            Interpretation::Direct { attribute, .. } => self.db.attribute_degree_with_summaries(
                &self.summaries,
                entity,
                attribute,
                predicate,
            ),
            Interpretation::CoOccur { terms, conjunctive } => {
                let degrees = terms.iter().map(|&(a, m)| {
                    let phrase = &self.db.marker_set(a).markers[m].phrase;
                    self.db
                        .attribute_degree_with_summaries(&self.summaries, entity, a, phrase)
                });
                if conjunctive {
                    degrees.fold(1.0, |acc, d| algebra.and(acc, d))
                } else {
                    degrees.fold(0.0, |acc, d| algebra.or(acc, d))
                }
            }
            Interpretation::TextFallback => self.db.text_degree(entity, predicate),
        }
    }
}

impl SubjectiveScorer for QualifiedScorer<'_> {
    fn degree_predicate(&self, predicate: &str, key: &Value) -> Result<f64, StoreError> {
        let entity = self.entity(key)?;
        Ok(self.degree(entity, predicate))
    }

    fn degree_match(
        &self,
        attribute: &ColumnRef,
        phrase: &str,
        key: &Value,
    ) -> Result<f64, StoreError> {
        let entity = self.entity(key)?;
        let attr = self
            .db
            .attribute_index(&attribute.column)
            .ok_or_else(|| StoreError::UnknownColumn(attribute.column.clone()))?;
        Ok(self
            .db
            .attribute_degree_with_summaries(&self.summaries, entity, attr, phrase))
    }
}

impl SubjectiveScorer for OpineDb {
    fn degree_predicate(&self, predicate: &str, key: &Value) -> Result<f64, StoreError> {
        let entity = self
            .entity_of_value(key)
            .ok_or_else(|| StoreError::Execution(format!("unknown entity key {key}")))?;
        Ok(self.degree(entity, predicate))
    }

    fn degree_match(
        &self,
        attribute: &ColumnRef,
        phrase: &str,
        key: &Value,
    ) -> Result<f64, StoreError> {
        let entity = self
            .entity_of_value(key)
            .ok_or_else(|| StoreError::Execution(format!("unknown entity key {key}")))?;
        let attr = self
            .attribute_index(&attribute.column)
            .ok_or_else(|| StoreError::UnknownColumn(attribute.column.clone()))?;
        Ok(self.attribute_degree(entity, attr, phrase))
    }

    fn prepare_predicates(&self, predicates: &[&str]) {
        // Warm the degree columns (computed in parallel over entity
        // chunks) so the executor's row loop reduces to cache reads.
        // Disabled-cache mode keeps the naive per-row path for honest
        // ablation timing.
        if self.caching() {
            for predicate in predicates {
                let _ = self.degree_column(predicate);
            }
        }
    }

    fn rank_subjective_conjunction(
        &self,
        predicates: &[&str],
        k: usize,
        candidates: Option<&Bitmap>,
    ) -> Option<Vec<(Value, f64)>> {
        if !self.caching() {
            opine_trace::note(|| "ta_topk: declined — degree cache disabled".into());
            return None;
        }
        opine_faults::fire_panic("pre_ta");
        let span = opine_trace::span("ta_topk");
        let ranked = match candidates {
            None => {
                opine_trace::note(|| format!("ta_topk: full TA over degree columns (k={k})"));
                self.rank_top_k(predicates, k)
            }
            Some(bitmap) => {
                // sync: ablation toggle; declining pushdown on a stale
                // read just takes the slower row-at-a-time path.
                if !self
                    .objective_pushdown
                    .load(std::sync::atomic::Ordering::Relaxed)
                {
                    opine_trace::note(|| "ta_topk: declined — objective pushdown disabled".into());
                    return None;
                }
                let Some(ranked) = self.rank_pushdown(predicates, k, bitmap) else {
                    opine_trace::note(|| "ta_topk: declined — no entity↔row maps".into());
                    return None;
                };
                ranked
            }
        };
        span.count("scored", ranked.len() as u64);
        drop(span);
        self.ta_queries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(
            ranked
                .into_iter()
                .map(|(entity, score)| (Value::text(&self.entity_keys[entity]), score))
                .collect(),
        )
    }

    fn qualified_scorer<'s>(
        &'s self,
        qualifier: &ReviewQualifier,
    ) -> Option<Box<dyn SubjectiveScorer + 's>> {
        // The scan ablation (`set_use_markers(false)`) scores from raw
        // occurrences, which the merged marker summaries cannot
        // represent — decline so qualified statements error instead of
        // silently answering from a different membership model than
        // their unqualified twins.
        // sync: ablation toggle; a stale read declines conservatively.
        if !self.use_markers.load(std::sync::atomic::Ordering::Relaxed) {
            return None;
        }
        self.qualified_queries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(Box::new(QualifiedScorer {
            db: self,
            summaries: self.summaries_qualified(qualifier),
        }))
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Concurrency audit: the serving layer shares one `OpineDb` behind an
/// `Arc` across request threads, so every interior cache (the bounded
/// memos, the `OnceLock` sorted orders, the ablation flags) must be
/// thread-safe. Failing this assertion is a compile error, not a runtime
/// surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<OpineDb>();
    assert_send_sync::<DegreeColumn>();
    assert_send_sync::<CacheReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildConfig};
    use opine_corpus::hotel::hotel_spec;
    use opine_corpus::{Corpus, CorpusConfig};
    use opine_embed::Word2VecConfig;

    fn db() -> (Corpus, OpineDb) {
        let corpus = Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 16,
                mean_reviews: 16,
                seed: 9,
            },
        );
        let db = build(
            &corpus,
            &BuildConfig {
                w2v: Word2VecConfig {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                },
                membership_tuples: 400,
                ..Default::default()
            },
        );
        (corpus, db)
    }

    #[test]
    fn end_to_end_query_ranks_clean_hotels_higher() {
        let (corpus, db) = db();
        let out = db
            .query("select * from hotels where \"clean rooms\" limit 16")
            .unwrap();
        assert!(!out.result.rows.is_empty());
        // The top third should have higher average cleanliness θ than the
        // bottom third.
        let n = out.result.rows.len();
        let theta = |rows: &[(Vec<Value>, f64)]| -> f64 {
            rows.iter()
                .map(|(r, _)| {
                    let id = db.entity_id(r[0].as_str().unwrap()).unwrap();
                    corpus.entities[id].quality[0]
                })
                .sum::<f64>()
                / rows.len() as f64
        };
        let top = theta(&out.result.rows[..n / 3]);
        let bottom = theta(&out.result.rows[n - n / 3..]);
        assert!(top > bottom, "top θ {top} should exceed bottom θ {bottom}");
    }

    #[test]
    fn objective_and_subjective_conditions_combine() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels where price_pn < 250 and \"clean rooms\" limit 50")
            .unwrap();
        for (row, score) in &out.result.rows {
            assert!(row[2].as_f64().unwrap() < 250.0);
            assert!((0.0..=1.0).contains(score));
        }
    }

    #[test]
    fn interpretations_are_reported() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels where \"spotless rooms\" limit 3")
            .unwrap();
        assert_eq!(out.interpretations.len(), 1);
        assert_eq!(out.interpretations[0].0, "spotless rooms");
    }

    #[test]
    fn degree_cache_is_consistent() {
        let (_, db) = db();
        let a = db.degree(0, "clean rooms");
        let b = db.degree(0, "clean rooms");
        assert_eq!(a, b);
    }

    #[test]
    fn marker_and_scan_paths_correlate() {
        let (_, db) = db();
        let with_markers: Vec<f64> = (0..db.num_entities())
            .map(|e| db.degree(e, "clean rooms"))
            .collect();
        db.set_use_markers(false);
        let without: Vec<f64> = (0..db.num_entities())
            .map(|e| db.attribute_degree(e, 0, "clean rooms"))
            .collect();
        db.set_use_markers(true);
        // Spearman-ish check: the top marker-entity should be in the upper
        // half of the scan ranking.
        let top = with_markers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let rank = without.iter().filter(|&&d| d > without[top]).count();
        assert!(
            rank <= db.num_entities() / 2,
            "marker-top entity ranks {rank} under scan"
        );
    }

    #[test]
    fn review_filter_recomputes_summaries() {
        let (_, db) = db();
        let filtered = db.summaries_with_review_filter(|m| m.year >= 2012);
        let full_total: f64 = (0..db.num_entities()).map(|e| db.summary(e, 0).total).sum();
        let filtered_total: f64 = filtered.iter().map(|per| per[0].total).sum();
        assert!(filtered_total < full_total);
        assert!(filtered_total > 0.0);
    }

    #[test]
    fn bucket_merge_matches_raw_rebuild_bit_for_bit() {
        let (_, db) = db();
        // Thresholds chosen to exercise year bounds AND a degree
        // threshold that cuts through a log2 bucket (3 is not a power
        // of two ⇒ straddle refinement).
        for q in [
            ReviewQualifier {
                min_year: Some(2012),
                max_year: None,
                min_reviewer_count: None,
            },
            ReviewQualifier {
                min_year: Some(2008),
                max_year: Some(2015),
                min_reviewer_count: Some(3),
            },
            ReviewQualifier {
                min_year: None,
                max_year: None,
                min_reviewer_count: Some(2),
            },
            ReviewQualifier::default(),
        ] {
            let merged = db.summaries_qualified(&q);
            let rebuilt = db.summaries_with_review_filter(|m| {
                q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
            });
            for e in 0..db.num_entities() {
                for a in 0..db.attributes.len() {
                    assert!(
                        merged[e][a].same_aggregates(&rebuilt[e][a]),
                        "{q} entity {e} attr {a}: merged {:?} vs rebuilt {:?}",
                        merged[e][a].counts(),
                        rebuilt[e][a].counts()
                    );
                }
            }
        }
    }

    #[test]
    fn trivial_qualifier_merge_equals_build_time_summaries() {
        let (_, db) = db();
        let merged = db.summaries_qualified(&ReviewQualifier::default());
        for e in 0..db.num_entities() {
            for a in 0..db.attributes.len() {
                assert!(
                    merged[e][a].same_aggregates(db.summary(e, a)),
                    "entity {e} attr {a}"
                );
            }
        }
    }

    #[test]
    fn qualified_sql_matches_rebuild_reference_and_counts() {
        let (_, db) = db();
        let before = db.cache_report();
        assert_eq!(before.filtered_summary_queries, 0);
        let sql = "select * from hotels where \"clean rooms\" \
                   with reviews(year >= 2012) limit 16";
        let out = db.query(sql).unwrap();
        assert!(!out.result.rows.is_empty());
        let after = db.cache_report();
        assert_eq!(after.filtered_summary_queries, 1, "qualified counter");
        assert!(after.filtered_summaries.misses > before.filtered_summaries.misses);

        // Reference: score every entity through the raw-rebuild
        // summaries; the SQL path must agree bit-for-bit.
        let q = ReviewQualifier {
            min_year: Some(2012),
            max_year: None,
            min_reviewer_count: None,
        };
        let rebuilt = db.summaries_with_review_filter(|m| {
            q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
        });
        let mut expected: Vec<(usize, f64)> = (0..db.num_entities())
            .map(|e| {
                (
                    e,
                    db.attribute_degree_with_summaries(&rebuilt, e, 0, "clean rooms"),
                )
            })
            .collect();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for ((row, score), (entity, degree)) in out.result.rows.iter().zip(&expected) {
            assert_eq!(row[0].as_str(), Some(db.entity_key(*entity)));
            assert_eq!(score.to_bits(), degree.to_bits(), "bit-identical degrees");
        }

        // A repeat replays from the filtered-summary cache.
        let again = db.query(sql).unwrap();
        assert_eq!(again.result.rows.len(), out.result.rows.len());
        let warm = db.cache_report();
        assert!(warm.filtered_summaries.hits > after.filtered_summaries.hits);
        assert_eq!(warm.filtered_summary_queries, 2);
    }

    #[test]
    fn qualified_and_unqualified_queries_do_not_share_answers() {
        let (_, db) = db();
        let plain = db
            .query("select * from hotels where \"clean rooms\" limit 16")
            .unwrap();
        let qualified = db
            .query(
                "select * from hotels where \"clean rooms\" \
                 with reviews(year >= 2014, reviewer_min_count >= 2) limit 16",
            )
            .unwrap();
        // The qualifier drops review mass, so at least one degree must
        // change (the generator spreads years 2005..=2019).
        let changed = plain
            .result
            .rows
            .iter()
            .zip(&qualified.result.rows)
            .any(|(a, b)| a.0[0] != b.0[0] || (a.1 - b.1).abs() > 1e-15);
        assert!(changed, "qualifier had no effect on any degree");
    }

    #[test]
    fn scan_ablation_declines_qualified_statements() {
        let (_, db) = db();
        let sql = "select * from hotels where \"clean rooms\" \
                   with reviews(year >= 2012) limit 4";
        db.set_use_markers(false);
        // Merged marker summaries cannot represent the raw-scan
        // membership mode: answering would silently switch models, so
        // the statement must error instead.
        let err = db.query(sql).unwrap_err();
        assert!(
            matches!(err, OpineError::Store(StoreError::NoScorer(_))),
            "expected NoScorer, got {err:?}"
        );
        db.set_use_markers(true);
        assert!(db.query(sql).is_ok(), "marker mode answers it again");
    }

    #[test]
    fn trivial_qualifier_stays_on_the_fast_path() {
        let (_, db) = db();
        let before = db.cache_report();
        let out = db
            .query("select * from hotels where \"clean rooms\" with reviews() limit 8")
            .unwrap();
        assert!(!out.result.rows.is_empty());
        let after = db.cache_report();
        // with reviews() accepts every review: the base scorer (and its
        // TA fast path) answers it — no merge, no qualified counter.
        assert_eq!(
            after.filtered_summary_queries,
            before.filtered_summary_queries
        );
        assert_eq!(
            after.filtered_summaries.misses,
            before.filtered_summaries.misses
        );
        assert!(after.ta_queries > before.ta_queries);
    }

    #[test]
    fn review_counts_are_precomputed_correctly() {
        let (corpus, db) = db();
        for e in 0..db.num_entities() {
            let scan = corpus.reviews.iter().filter(|r| r.entity_id == e).count();
            assert_eq!(db.review_count(e), scan, "entity {e}");
        }
        let reviewer_scan = corpus.reviewer_counts();
        for (&reviewer, &count) in &reviewer_scan {
            assert_eq!(db.reviewer_review_count(reviewer), count);
        }
        assert_eq!(db.reviewer_review_count(usize::MAX), 0, "unknown reviewer");
    }

    #[test]
    fn clear_caches_drops_filtered_summary_sets() {
        let (_, db) = db();
        let _ = db.summaries_qualified(&ReviewQualifier {
            min_year: Some(2010),
            max_year: None,
            min_reviewer_count: None,
        });
        assert_eq!(db.cache_report().filtered_summary_sets, 1);
        db.clear_caches();
        assert_eq!(db.cache_report().filtered_summary_sets, 0);
    }

    #[test]
    fn marker_match_syntax_works() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels h where h.room_cleanliness .= \"very clean\" limit 5")
            .unwrap();
        assert!(!out.result.rows.is_empty());
    }

    /// A database whose interpreter thresholds are unreachable, so
    /// every predicate falls through word2vec and co-occurrence to the
    /// text-retrieval stage — the fixture for the text-fallback column
    /// and the WAND counters (stage 2 still *runs* its retrieval
    /// before giving up, so `wand_queries` fires).
    fn text_fallback_db() -> OpineDb {
        let corpus = Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 16,
                mean_reviews: 16,
                seed: 9,
            },
        );
        build(
            &corpus,
            &BuildConfig {
                w2v: Word2VecConfig {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                },
                membership_tuples: 400,
                interpreter: crate::interpret::InterpreterConfig {
                    theta1: 1.01,
                    theta2: f64::INFINITY,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn text_fallback_column_matches_point_path_bit_for_bit() {
        let db = text_fallback_db();
        let predicate = "clean rooms";
        assert_eq!(
            db.interpret(predicate),
            Interpretation::TextFallback,
            "unreachable thresholds must force the text stage"
        );
        // Batched column (one pass over the posting lists)…
        let column = db.degree_column(predicate);
        let degrees = column.degrees().expect("exact by default");
        // …must equal the per-entity point path exactly.
        db.set_degree_cache(false);
        for (e, column_degree) in degrees.iter().enumerate() {
            let point = db.degree(e, predicate);
            assert_eq!(
                column_degree.to_bits(),
                point.to_bits(),
                "entity {e}: batched text column diverged from the point path"
            );
        }
        db.set_degree_cache(true);
    }

    #[test]
    fn cache_report_aggregates_wand_counters() {
        let db = text_fallback_db();
        let before = db.cache_report();
        // The cascade runs the co-occurrence retrieval (stage 2) before
        // falling back, so one cold interpretation fires the counter.
        let _ = db.interpret("comfortable beds");
        let after = db.cache_report();
        assert!(
            after.wand_queries > before.wand_queries,
            "stage-2 retrieval must route through WAND: {after:?}"
        );
        // The ablation toggle reroutes the same retrieval.
        db.set_wand(false);
        let _ = db.interpret("comfortable beds");
        let toggled = db.cache_report();
        assert!(
            toggled.exhaustive_queries > after.exhaustive_queries,
            "disabled WAND must fall back to the exhaustive scorer"
        );
        db.set_wand(true);
    }

    #[test]
    fn text_fallback_degree_is_bounded() {
        let (_, db) = db();
        for e in 0..db.num_entities() {
            let d = db.text_degree(e, "great for motorcyclists");
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn unknown_table_query_errors() {
        let (_, db) = db();
        assert!(db.query("select * from nonexistent").is_err());
        assert!(db.query("not sql at all").is_err());
    }

    #[test]
    fn interpretation_cache_hits_on_repeated_predicates() {
        let (_, db) = db();
        let before = db.interp_cache_stats();
        for _ in 0..5 {
            db.query("select * from hotels where \"clean rooms\" limit 4")
                .unwrap();
        }
        let after = db.interp_cache_stats();
        assert!(
            after.misses - before.misses <= 1,
            "one distinct predicate must interpret at most once, got {} misses",
            after.misses - before.misses
        );
        assert!(
            after.hits > before.hits,
            "repeated queries must hit the interpretation memo"
        );
    }

    #[test]
    fn degree_column_matches_naive_per_entity_path() {
        let (_, db) = db();
        let column = db.degree_column("clean rooms");
        let degrees = column.degrees().expect("exact by default");
        assert_eq!(degrees.len(), db.num_entities());
        // The naive (cache-disabled) path must produce the same degrees.
        db.set_degree_cache(false);
        for (e, column_degree) in degrees.iter().enumerate() {
            let naive = db.degree(e, "clean rooms");
            assert!(
                (column_degree - naive).abs() < 1e-12,
                "entity {e}: column {column_degree} vs naive {naive}"
            );
        }
        db.set_degree_cache(true);
    }

    #[test]
    fn sorted_order_is_descending_with_id_tiebreak() {
        let (_, db) = db();
        let column = db.degree_column("clean rooms");
        let order = column.sorted_order();
        assert_eq!(order.len(), db.num_entities());
        for w in order.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let (da, db_) = (column.upper(a), column.upper(b));
            assert!(da > db_ || (da == db_ && a < b));
        }
    }

    #[test]
    fn rank_top_k_matches_full_column_sort() {
        let (_, db) = db();
        let preds = ["clean rooms", "friendly staff"];
        let ranked = db.rank_top_k(&preds, 5);
        let cols: Vec<_> = preds.iter().map(|p| db.degree_column(p)).collect();
        let mut naive: Vec<(usize, f64)> = (0..db.num_entities())
            .map(|e| {
                (
                    e,
                    cols.iter()
                        .map(|c| c.degrees().expect("exact")[e])
                        .product(),
                )
            })
            .collect();
        naive.sort_by(crate::topk::rank_cmp);
        naive.truncate(5);
        assert_eq!(ranked, naive);
    }

    #[test]
    fn ta_fast_path_matches_row_at_a_time_scoring() {
        let (_, db) = db();
        let sql = "select * from hotels where \"clean rooms\" limit 8";
        let fast = db.query(sql).unwrap();
        // Disabling the degree cache routes the same query through the
        // naive row-at-a-time executor path.
        db.set_degree_cache(false);
        let naive = db.query(sql).unwrap();
        db.set_degree_cache(true);
        assert_eq!(fast.result.rows.len(), naive.result.rows.len());
        for (f, n) in fast.result.rows.iter().zip(&naive.result.rows) {
            assert_eq!(f.0[0], n.0[0], "same entity order");
            assert!((f.1 - n.1).abs() < 1e-12, "same scores");
        }
    }

    #[test]
    fn mixed_queries_ride_the_pushdown_ta_path() {
        let (_, db) = db();
        let sql = "select * from hotels where price_pn < 250 and \"clean rooms\" limit 50";
        let before = db.cache_report();
        assert_eq!(before.pushdown_queries, 0);
        let out = db.query(sql).unwrap();
        let after = db.cache_report();
        assert_eq!(
            after.pushdown_queries,
            before.pushdown_queries + 1,
            "the paper's running-example shape must take the pushdown TA path"
        );
        assert!(after.ta_queries > before.ta_queries);
        for (row, _) in &out.result.rows {
            assert!(
                row[2].as_f64().unwrap() < 250.0,
                "objective filter still applies on the TA path"
            );
        }
        // The pushdown answer must equal both ablation baselines
        // exactly: pushdown disabled (prefilter + row-at-a-time
        // residue) and caches disabled (fully naive scoring).
        db.set_objective_pushdown(false);
        let row_at_a_time = db.query(sql).unwrap();
        db.set_objective_pushdown(true);
        db.set_degree_cache(false);
        let naive = db.query(sql).unwrap();
        db.set_degree_cache(true);
        for reference in [&row_at_a_time, &naive] {
            assert_eq!(out.result.rows.len(), reference.result.rows.len());
            for (a, b) in out.result.rows.iter().zip(&reference.result.rows) {
                assert_eq!(a.0[0], b.0[0]);
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pushdown_with_empty_candidate_set_returns_no_rows() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels where price_pn < 0 and \"clean rooms\"")
            .unwrap();
        assert!(out.result.rows.is_empty());
    }

    #[test]
    fn quantized_columns_cut_memory_but_not_answers() {
        let (_, db) = db();
        let sql = "select * from hotels where price_pn < 250 and \"clean rooms\" limit 50";
        let exact_out = db.query(sql).unwrap();
        let exact_pure = db
            .query("select * from hotels where \"clean rooms\" limit 50")
            .unwrap();
        let exact_bytes = db.cache_report().column_bytes;
        assert!(exact_bytes > 0);

        db.set_quantized_columns(true);
        let quant_out = db.query(sql).unwrap();
        let quant_pure = db
            .query("select * from hotels where \"clean rooms\" limit 50")
            .unwrap();
        let report = db.cache_report();
        assert!(report.quantized_columns);
        assert!(
            report.column_bytes * 4 == exact_bytes,
            "u16 storage must be exactly 4x smaller ({} vs {exact_bytes})",
            report.column_bytes
        );
        db.set_quantized_columns(false);

        for (a, b) in [
            (&exact_out.result, &quant_out.result),
            (&exact_pure.result, &quant_pure.result),
        ] {
            assert_eq!(a.rows.len(), b.rows.len());
            for (x, y) in a.rows.iter().zip(&b.rows) {
                assert_eq!(x.0[0], y.0[0], "same ranking under quantization");
                assert!(
                    (x.1 - y.1).abs() < 1e-12,
                    "scores stay exact via frontier rescoring"
                );
            }
        }
    }

    #[test]
    fn clear_caches_resets_columns() {
        let (_, db) = db();
        let _ = db.degree_column("clean rooms");
        assert!(db.cached_degree_columns() >= 1);
        db.clear_caches();
        assert_eq!(db.cached_degree_columns(), 0);
    }

    // ---- live ingest ----

    /// Serializes the tests that merge or arm failpoints: the faults
    /// registry is process-global, and an armed `mid_merge` panic must
    /// not leak into a concurrently merging test.
    fn ingest_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn insert_lands_in_delta_and_is_immediately_queryable() {
        let (_, db) = db();
        assert_eq!(db.ingest_epoch(), 0);
        let entity = db.entity_key(3).to_string();
        let phrase = db.opinion_domain(0).variations()[0].phrase.clone();
        let base_count = db.review_count(3);
        let receipt = db
            .insert_sql(&format!(
                "INSERT INTO reviews (entity, text, year, reviewer_id, helpful_votes) \
                 VALUES ('{entity}', 'the {phrase} impressed us', 2021, 77777, 3)"
            ))
            .unwrap();
        assert_eq!(receipt.inserted, 1);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.delta_reviews, 1);
        assert!(!receipt.merged, "below the default merge threshold");
        assert_eq!(db.ingest_epoch(), 1);
        assert_eq!(db.delta_reviews(), 1);
        // Counts are live at the very next read, not merge-deferred.
        assert_eq!(db.review_count(3), base_count + 1);
        assert_eq!(db.reviewer_review_count(77777), 1);
        // The overlay row answers relational SELECTs right away.
        let out = db
            .query("select * from reviews where reviewer_id = 77777")
            .unwrap();
        assert_eq!(out.result.rows.len(), 1);
        assert_eq!(out.result.rows[0].0[1].as_str(), Some(entity.as_str()));
        assert_eq!(out.result.rows[0].0[3], Value::Int(2021));
    }

    #[test]
    fn batch_insert_publishes_exactly_one_epoch() {
        let (_, db) = db();
        let e0 = db.entity_key(0).to_string();
        let e1 = db.entity_key(1).to_string();
        let base0 = db.review_count(0);
        let base1 = db.review_count(1);
        let receipt = db
            .insert_sql(&format!(
                "INSERT INTO reviews (entity, year) \
                 VALUES ('{e0}', 2020), ('{e1}', 2021), ('{e0}', 2022)"
            ))
            .unwrap();
        assert_eq!(receipt.inserted, 3);
        assert_eq!(db.ingest_epoch(), 1, "one publish for the whole batch");
        assert_eq!(db.delta_reviews(), 3);
        assert_eq!(db.review_count(0), base0 + 2);
        assert_eq!(db.review_count(1), base1 + 1);
        let report = db.cache_report();
        assert_eq!(report.inserted_reviews, 3);
        assert_eq!(report.ingest_epoch, 1);
        assert_eq!(report.delta_reviews, 3);
    }

    #[test]
    fn invalid_inserts_are_rejected_with_zero_rows_applied() {
        let (_, db) = db();
        let entity = db.entity_key(0).to_string();
        for sql in [
            // only the reviews table accepts inserts
            format!("INSERT INTO hotels (entity) VALUES ('{entity}')"),
            // review_id is engine-assigned
            format!("INSERT INTO reviews (review_id, entity) VALUES (1, '{entity}')"),
            // the column list is required
            format!("INSERT INTO reviews VALUES (1, '{entity}', 1, 2020, 0)"),
            // unknown column
            format!("INSERT INTO reviews (entity, rating) VALUES ('{entity}', 5)"),
            // duplicate column
            format!("INSERT INTO reviews (entity, year, year) VALUES ('{entity}', 2020, 2021)"),
            // unknown entity key — the entity set is frozen at build time
            "INSERT INTO reviews (entity) VALUES ('no_such_hotel')".to_string(),
            // entity is required
            "INSERT INTO reviews (year) VALUES (2020)".to_string(),
            // type error
            format!("INSERT INTO reviews (entity, year) VALUES ('{entity}', 'soon')"),
            // a bad second row rejects the whole batch
            format!(
                "INSERT INTO reviews (entity, year) \
                 VALUES ('{entity}', 2020), ('{entity}', 5000000000)"
            ),
        ] {
            let err = db.insert_sql(&sql).unwrap_err();
            assert!(matches!(err, OpineError::Store(_)), "{sql}: {err:?}");
        }
        assert_eq!(db.ingest_epoch(), 0, "every rejection left the epoch untouched");
        assert_eq!(db.delta_reviews(), 0);
        assert_eq!(db.cache_report().inserted_reviews, 0);
    }

    #[test]
    fn insert_repairs_degree_columns_precisely() {
        let (_, db) = db();
        let predicate = "clean rooms";
        assert_ne!(
            db.interpret(predicate),
            Interpretation::TextFallback,
            "fixture precondition: the repair under test is the marker path"
        );
        let phrase = db.opinion_domain(0).variations()[0].phrase.clone();
        let before = db.degree_column(predicate);
        let before_degrees = before.degrees().expect("exact by default").to_vec();
        // A strong new signal for entity 0 only.
        let text = [phrase.as_str(); 6].join(" and ");
        let entity = db.entity_key(0).to_string();
        db.insert_sql(&format!(
            "INSERT INTO reviews (entity, text) VALUES ('{entity}', '{text}')"
        ))
        .unwrap();
        // The warm probe repairs the stale column: only entity 0
        // recomputes, the other slots are reused verbatim.
        let repaired = db.degree_column(predicate);
        let repaired_degrees = repaired.degrees().expect("exact").to_vec();
        for e in 1..db.num_entities() {
            assert_eq!(
                repaired_degrees[e].to_bits(),
                before_degrees[e].to_bits(),
                "entity {e} was untouched by the insert"
            );
        }
        assert_ne!(
            repaired_degrees[0].to_bits(),
            before_degrees[0].to_bits(),
            "entity 0 absorbed the inserted occurrences"
        );
        // Bit-identical to a cold rebuild at the new epoch.
        db.clear_caches();
        let cold = db.degree_column(predicate);
        let cold_degrees = cold.degrees().expect("exact");
        for e in 0..db.num_entities() {
            assert_eq!(
                repaired_degrees[e].to_bits(),
                cold_degrees[e].to_bits(),
                "entity {e}: repaired column diverged from a cold rebuild"
            );
        }
    }

    #[test]
    fn qualified_summaries_with_delta_match_rescan_pre_and_post_merge() {
        let _guard = ingest_lock();
        let (_, db) = db();
        let phrase0 = db.opinion_domain(0).variations()[0].phrase.clone();
        let phrase1 = db.opinion_domain(1).variations()[0].phrase.clone();
        let e2 = db.entity_key(2).to_string();
        let e5 = db.entity_key(5).to_string();
        db.insert_sql(&format!(
            "INSERT INTO reviews (entity, text, year, reviewer_id) VALUES \
             ('{e2}', 'really {phrase0} here', 2016, 901), \
             ('{e2}', '{phrase1} but loud', 2009, 901), \
             ('{e5}', '{phrase0} and {phrase1}', 2013, 902)"
        ))
        .unwrap();
        let qualifiers = [
            ReviewQualifier {
                min_year: Some(2012),
                max_year: None,
                min_reviewer_count: None,
            },
            ReviewQualifier {
                min_year: Some(2008),
                max_year: Some(2015),
                min_reviewer_count: Some(3),
            },
            ReviewQualifier {
                min_year: None,
                max_year: None,
                min_reviewer_count: Some(2),
            },
            ReviewQualifier::default(),
        ];
        let check = |label: &str| {
            for q in &qualifiers {
                let merged = db.summaries_qualified(q);
                let rebuilt = db.summaries_with_review_filter(|m| {
                    q.accepts(m.year, db.reviewer_review_count(m.reviewer_id) as u32)
                });
                for e in 0..db.num_entities() {
                    for a in 0..db.attributes.len() {
                        assert!(
                            merged[e][a].same_aggregates(&rebuilt[e][a]),
                            "{label} {q} entity {e} attr {a}: merged {:?} vs rebuilt {:?}",
                            merged[e][a].counts(),
                            rebuilt[e][a].counts()
                        );
                    }
                }
            }
        };
        // Pre-merge: the unsealed tail re-resolves raw occurrences.
        check("pre-merge");
        let epoch = db.merge_delta().unwrap();
        assert_eq!(epoch, 2);
        // Post-merge: the sealed per-year partials path.
        check("post-merge");
    }

    #[test]
    fn threshold_crossing_triggers_an_immediate_merge() {
        let _guard = ingest_lock();
        let (_, db) = db();
        db.set_merge_threshold(2);
        let e = db.entity_key(7).to_string();
        let first = db
            .insert_sql(&format!(
                "INSERT INTO reviews (entity, year) VALUES ('{e}', 2020)"
            ))
            .unwrap();
        assert!(!first.merged);
        assert_eq!(first.epoch, 1);
        let second = db
            .insert_sql(&format!(
                "INSERT INTO reviews (entity, year) VALUES ('{e}', 2021)"
            ))
            .unwrap();
        assert!(second.merged, "second insert crossed the threshold");
        assert_eq!(second.epoch, 3, "batch publish + merge publish");
        assert_eq!(db.cache_report().delta_merges, 1);
    }

    #[test]
    fn merged_delta_text_contributes_to_text_degrees() {
        let _guard = ingest_lock();
        let (_, db) = db();
        let phrase = db.opinion_domain(0).variations()[0].phrase.clone();
        let entity = db.entity_key(6).to_string();
        let before = db.text_degree(6, &phrase);
        db.insert_sql(&format!(
            "INSERT INTO reviews (entity, text) VALUES ('{entity}', '{phrase} {phrase} {phrase}')"
        ))
        .unwrap();
        // Text retrieval is near-real-time: visible at the next merge,
        // not at the insert itself (counts and summaries are live
        // immediately — see the tests above).
        assert_eq!(db.text_degree(6, &phrase).to_bits(), before.to_bits());
        db.merge_delta().unwrap();
        let after = db.text_degree(6, &phrase);
        assert!(
            after > before,
            "merged delta BM25 must lift entity 6: {before} -> {after}"
        );
    }

    #[test]
    fn failed_merge_leaves_the_old_epoch_serving() {
        let _guard = ingest_lock();
        let (_, db) = db();
        let phrase = db.opinion_domain(0).variations()[0].phrase.clone();
        let entity = db.entity_key(4).to_string();
        db.insert_sql(&format!(
            "INSERT INTO reviews (entity, text, year) VALUES ('{entity}', 'so {phrase}', 2018)"
        ))
        .unwrap();
        assert_eq!(db.ingest_epoch(), 1);
        let sql = "select * from hotels where \"clean rooms\" limit 16";
        let before = db.query(sql).unwrap();

        opine_faults::configure("mid_merge=panic@1", 7).expect("valid spec");
        let err = db.merge_delta().unwrap_err();
        opine_faults::clear();
        assert!(
            matches!(err, OpineError::Store(StoreError::Execution(_))),
            "{err:?}"
        );
        assert_eq!(db.ingest_epoch(), 1, "nothing published");
        assert_eq!(db.cache_report().failed_merges, 1);
        assert_eq!(db.cache_report().delta_merges, 0);

        // The failed merge is invisible to readers: byte-identical
        // answers from the still-serving generation.
        let after = db.query(sql).unwrap();
        assert_eq!(before.result.rows.len(), after.result.rows.len());
        for (a, b) in before.result.rows.iter().zip(&after.result.rows) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }

        // Disarmed, the retry freezes and publishes.
        let epoch = db.merge_delta().unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(db.cache_report().delta_merges, 1);
        assert_eq!(
            db.delta_reviews(),
            1,
            "merged reviews stay in the delta generation"
        );
    }
}
