//! [`OpineDb`]: the end-to-end subjective database engine.
//!
//! Executes Subjective SQL by combining the relational executor of
//! `opine-store` with the interpreter, membership functions, and fuzzy
//! logic of this crate (Fig. 4 of the paper).

use crate::builder::BuildConfig;
use crate::domain::LinguisticDomain;
use crate::interpret::{Interpretation, Interpreter};
use crate::membership::{marker_features, scan_features, MembershipModel};
use crate::summary::{MarkerSet, MarkerSummary};
use opine_embed::PhraseEmbedder;
use opine_ir::{Bm25Params, InvertedIndex};
use opine_sentiment::SentimentAnalyzer;
use opine_store::ast::ColumnRef;
use opine_store::exec::{execute_with_algebra, SubjectiveScorer};
use opine_store::{
    execute, parse_select, Catalog, FuzzyAlgebra, ResultSet, StoreError, Value,
};
use opine_text::Vocab;
use parking_lot::Mutex;
use std::collections::HashMap;

/// One extracted phrase occurrence in an entity's raw digest.
#[derive(Debug, Clone, Copy)]
pub struct PhraseOcc {
    /// Index into the attribute's opinion domain.
    pub variation: usize,
    /// Sentiment of the phrase.
    pub sentiment: f64,
    /// Source review id.
    pub review_id: usize,
}

/// Review metadata kept for review-qualifying filters.
#[derive(Debug, Clone, Copy)]
pub struct ReviewMeta {
    /// Reviewed entity.
    pub entity_id: usize,
    /// Author id.
    pub reviewer_id: usize,
    /// Publication year.
    pub year: u32,
    /// Helpful votes.
    pub helpful_votes: u32,
}

/// Errors surfaced by [`OpineDb`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpineError {
    /// SQL parse failure.
    Parse(String),
    /// Storage/execution failure.
    Store(StoreError),
}

impl std::fmt::Display for OpineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpineError::Parse(m) => write!(f, "{m}"),
            OpineError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OpineError {}

impl From<StoreError> for OpineError {
    fn from(e: StoreError) -> Self {
        OpineError::Store(e)
    }
}

/// A ranked query answer plus the interpretations that produced it.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The ranked relational result.
    pub result: ResultSet,
    /// `(predicate, interpretation)` for every natural-language predicate.
    pub interpretations: Vec<(String, Interpretation)>,
}

/// The subjective database engine.
pub struct OpineDb {
    /// Subjective attribute names, index-aligned with the domain spec.
    pub attributes: Vec<String>,
    vocab: Vocab,
    embedder: PhraseEmbedder,
    sentiment: SentimentAnalyzer,
    opinion_domains: Vec<LinguisticDomain>,
    interpreter: Interpreter,
    summaries: Vec<Vec<MarkerSummary>>,
    raw: Vec<Vec<Vec<PhraseOcc>>>,
    membership_markers: MembershipModel,
    membership_scan: MembershipModel,
    entity_index: InvertedIndex,
    catalog: Catalog,
    entity_table: String,
    entity_keys: Vec<String>,
    key_to_entity: HashMap<String, usize>,
    review_meta: Vec<ReviewMeta>,
    config: BuildConfig,
    interp_cache: Mutex<HashMap<String, Interpretation>>,
    degree_cache: Mutex<HashMap<(usize, String), f64>>,
    /// When false, degrees are recomputed by scanning raw extractions
    /// (the Table 7 "no markers" ablation).
    use_markers: std::sync::atomic::AtomicBool,
    /// When false, degrees are recomputed on every call (honest timing).
    cache_degrees: std::sync::atomic::AtomicBool,
}

impl OpineDb {
    /// Assembles a database from prebuilt parts (used by [`crate::build`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        attributes: Vec<String>,
        vocab: Vocab,
        embedder: PhraseEmbedder,
        sentiment: SentimentAnalyzer,
        opinion_domains: Vec<LinguisticDomain>,
        interpreter: Interpreter,
        summaries: Vec<Vec<MarkerSummary>>,
        raw: Vec<Vec<Vec<PhraseOcc>>>,
        membership_markers: MembershipModel,
        membership_scan: MembershipModel,
        entity_index: InvertedIndex,
        catalog: Catalog,
        entity_table: String,
        entity_keys: Vec<String>,
        review_meta: Vec<ReviewMeta>,
        config: BuildConfig,
    ) -> Self {
        let key_to_entity = entity_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
        Self {
            attributes,
            vocab,
            embedder,
            sentiment,
            opinion_domains,
            interpreter,
            summaries,
            raw,
            membership_markers,
            membership_scan,
            entity_index,
            catalog,
            entity_table,
            entity_keys,
            key_to_entity,
            review_meta,
            config,
            interp_cache: Mutex::new(HashMap::new()),
            degree_cache: Mutex::new(HashMap::new()),
            use_markers: std::sync::atomic::AtomicBool::new(true),
            cache_degrees: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_keys.len()
    }

    /// The entity key (name) for a dense entity id.
    pub fn entity_key(&self, entity: usize) -> &str {
        &self.entity_keys[entity]
    }

    /// Dense entity id for a key, if known.
    pub fn entity_id(&self, key: &str) -> Option<usize> {
        self.key_to_entity.get(key).copied()
    }

    /// The name of the entity table ("hotels" / "restaurants").
    pub fn entity_table(&self) -> &str {
        &self.entity_table
    }

    /// The relational catalog (entities + reviews).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The marker set of an attribute.
    pub fn marker_set(&self, attribute: usize) -> &MarkerSet {
        &self.interpreter.marker_sets()[attribute]
    }

    /// The marker summary of an entity/attribute.
    pub fn summary(&self, entity: usize, attribute: usize) -> &MarkerSummary {
        &self.summaries[entity][attribute]
    }

    /// The vocabulary built over the corpus.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The phrase embedder (word2vec + IDF).
    pub fn embedder(&self) -> &PhraseEmbedder {
        &self.embedder
    }

    /// The sentiment analyzer.
    pub fn sentiment(&self) -> &SentimentAnalyzer {
        &self.sentiment
    }

    /// The three-stage interpreter.
    pub fn interpreter(&self) -> &Interpreter {
        &self.interpreter
    }

    /// Enables/disables marker summaries for degree computation (the
    /// Table 7 ablation). Clears the degree cache.
    pub fn set_use_markers(&self, enabled: bool) {
        self.use_markers
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        self.degree_cache.lock().clear();
    }

    /// Enables/disables the degree-of-truth cache (disabled for honest
    /// per-query timing in the Table 7 experiment) and clears it.
    pub fn set_degree_cache(&self, enabled: bool) {
        self.cache_degrees
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
        self.degree_cache.lock().clear();
    }

    /// The marker-feature membership function.
    pub fn membership_markers(&self) -> &MembershipModel {
        &self.membership_markers
    }

    /// The raw-scan membership function (no-marker ablation).
    pub fn membership_scan(&self) -> &MembershipModel {
        &self.membership_scan
    }

    /// The opinion-level linguistic domain of an attribute.
    pub fn opinion_domain(&self, attribute: usize) -> &LinguisticDomain {
        &self.opinion_domains[attribute]
    }

    /// `(rep, sentiment)` views of every raw extracted phrase of an
    /// entity/attribute (the scan path's input).
    pub fn raw_phrases(&self, entity: usize, attribute: usize) -> Vec<(&[f32], f64)> {
        self.raw[entity][attribute]
            .iter()
            .map(|occ| {
                (
                    self.opinion_domains[attribute].variations()[occ.variation]
                        .rep
                        .as_slice(),
                    occ.sentiment,
                )
            })
            .collect()
    }

    /// Executes a Subjective SQL query (the paper's running example shape:
    /// `select * from hotels where price_pn < 150 and "clean rooms"`).
    pub fn query(&self, sql: &str) -> Result<QueryOutput, OpineError> {
        let select = parse_select(sql).map_err(|e| OpineError::Parse(e.to_string()))?;
        let interpretations = select
            .where_clause
            .as_ref()
            .map(|w| {
                w.subjective_predicates()
                    .into_iter()
                    .map(|p| (p.to_string(), self.interpret(p)))
                    .collect()
            })
            .unwrap_or_default();
        let result = execute(&select, &self.catalog, self)?;
        Ok(QueryOutput {
            result,
            interpretations,
        })
    }

    /// Executes with an explicit fuzzy algebra (ablation hook; joins are
    /// only supported under the default product algebra).
    pub fn query_with_algebra(
        &self,
        sql: &str,
        algebra: FuzzyAlgebra,
    ) -> Result<QueryOutput, OpineError> {
        let select = parse_select(sql).map_err(|e| OpineError::Parse(e.to_string()))?;
        let result = execute_with_algebra(&select, &self.catalog, self, algebra)?;
        Ok(QueryOutput {
            result,
            interpretations: Vec::new(),
        })
    }

    /// Interprets a predicate, with caching.
    pub fn interpret(&self, predicate: &str) -> Interpretation {
        if let Some(hit) = self.interp_cache.lock().get(predicate) {
            return hit.clone();
        }
        let interp = self
            .interpreter
            .interpret(predicate, &self.embedder, &self.vocab);
        self.interp_cache
            .lock()
            .insert(predicate.to_string(), interp.clone());
        interp
    }

    /// Degree of truth of a natural-language predicate for an entity.
    pub fn degree(&self, entity: usize, predicate: &str) -> f64 {
        let caching = self
            .cache_degrees
            .load(std::sync::atomic::Ordering::Relaxed);
        if caching {
            if let Some(&d) = self
                .degree_cache
                .lock()
                .get(&(entity, predicate.to_string()))
            {
                return d;
            }
        }
        let interp = self.interpret(predicate);
        let d = self.degree_for_interpretation(entity, predicate, &interp);
        if caching {
            self.degree_cache
                .lock()
                .insert((entity, predicate.to_string()), d);
        }
        d
    }

    /// Degree of truth under a given interpretation.
    pub fn degree_for_interpretation(
        &self,
        entity: usize,
        predicate: &str,
        interp: &Interpretation,
    ) -> f64 {
        let algebra = FuzzyAlgebra::Product;
        match interp {
            Interpretation::Direct { attribute, .. } => {
                self.attribute_degree(entity, *attribute, predicate)
            }
            Interpretation::CoOccur { terms, conjunctive } => {
                let degrees = terms.iter().map(|&(a, m)| {
                    let phrase = self.marker_set(a).markers[m].phrase.clone();
                    self.attribute_degree(entity, a, &phrase)
                });
                if *conjunctive {
                    degrees.fold(1.0, |acc, d| algebra.and(acc, d))
                } else {
                    degrees.fold(0.0, |acc, d| algebra.or(acc, d))
                }
            }
            Interpretation::TextFallback => self.text_degree(entity, predicate),
        }
    }

    /// Degree of truth of `attribute .= phrase` for an entity, via the
    /// membership function (marker features or raw-scan features).
    pub fn attribute_degree(&self, entity: usize, attribute: usize, phrase: &str) -> f64 {
        let mut q_rep = self.embedder.rep(phrase, &self.vocab);
        opine_embed::normalize(&mut q_rep);
        let q_sent = self.sentiment.score(phrase);
        if self.use_markers.load(std::sync::atomic::Ordering::Relaxed) {
            let feats = marker_features(
                &self.summaries[entity][attribute],
                self.marker_set(attribute),
                &q_rep,
                q_sent,
            );
            self.membership_markers.degree(&feats)
        } else {
            let occs = &self.raw[entity][attribute];
            let phrase_refs: Vec<(&[f32], f64)> = occs
                .iter()
                .map(|occ| {
                    (
                        self.opinion_domains[attribute].variations()[occ.variation]
                            .rep
                            .as_slice(),
                        occ.sentiment,
                    )
                })
                .collect();
            self.membership_scan
                .degree(&scan_features(&phrase_refs, &q_rep, q_sent))
        }
    }

    /// Text-retrieval fallback degree: `sigmoid(BM25(D_e, q) − c)`.
    pub fn text_degree(&self, entity: usize, predicate: &str) -> f64 {
        let terms: Vec<_> = opine_text::tokenize(predicate)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        let score = self.entity_index.bm25(
            opine_ir::DocId(entity as u32),
            &terms,
            &Bm25Params::default(),
        );
        sigmoid(score - self.config.sigmoid_c)
    }

    /// Recomputes all summaries over the subset of reviews accepted by
    /// `filter` — the paper's "only consider opinions of people who
    /// reviewed at least 10 hotels" / "reviews after 2010" queries.
    pub fn summaries_with_review_filter<F>(&self, filter: F) -> Vec<Vec<MarkerSummary>>
    where
        F: Fn(&ReviewMeta) -> bool,
    {
        let dim = self.embedder.dim();
        let mut out: Vec<Vec<MarkerSummary>> = (0..self.num_entities())
            .map(|_| {
                (0..self.attributes.len())
                    .map(|a| MarkerSummary::empty(self.marker_set(a).markers.len(), dim))
                    .collect()
            })
            .collect();
        for (entity, per_attr) in self.raw.iter().enumerate() {
            for (attr, occs) in per_attr.iter().enumerate() {
                for occ in occs {
                    if !filter(&self.review_meta[occ.review_id]) {
                        continue;
                    }
                    let variation = &self.opinion_domains[attr].variations()[occ.variation];
                    out[entity][attr].add_phrase(
                        &variation.phrase,
                        &variation.rep,
                        occ.sentiment,
                        self.marker_set(attr),
                        self.config.assign,
                        self.config.unmatched_threshold,
                        occ.review_id,
                    );
                }
            }
        }
        out
    }

    /// Degree of `attribute .= phrase` computed over externally supplied
    /// summaries (pairs with [`Self::summaries_with_review_filter`]).
    pub fn attribute_degree_with_summaries(
        &self,
        summaries: &[Vec<MarkerSummary>],
        entity: usize,
        attribute: usize,
        phrase: &str,
    ) -> f64 {
        let mut q_rep = self.embedder.rep(phrase, &self.vocab);
        opine_embed::normalize(&mut q_rep);
        let q_sent = self.sentiment.score(phrase);
        let feats = marker_features(
            &summaries[entity][attribute],
            self.marker_set(attribute),
            &q_rep,
            q_sent,
        );
        self.membership_markers.degree(&feats)
    }

    /// Number of reviews aggregated for an entity.
    pub fn review_count(&self, entity: usize) -> usize {
        self.review_meta
            .iter()
            .filter(|m| m.entity_id == entity)
            .count()
    }

    /// Resolves an attribute name to its index.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

impl SubjectiveScorer for OpineDb {
    fn degree_predicate(&self, predicate: &str, key: &Value) -> Result<f64, StoreError> {
        let entity = self
            .key_to_entity
            .get(&key.to_string())
            .copied()
            .ok_or_else(|| StoreError::Execution(format!("unknown entity key {key}")))?;
        Ok(self.degree(entity, predicate))
    }

    fn degree_match(
        &self,
        attribute: &ColumnRef,
        phrase: &str,
        key: &Value,
    ) -> Result<f64, StoreError> {
        let entity = self
            .key_to_entity
            .get(&key.to_string())
            .copied()
            .ok_or_else(|| StoreError::Execution(format!("unknown entity key {key}")))?;
        let attr = self
            .attribute_index(&attribute.column)
            .ok_or_else(|| StoreError::UnknownColumn(attribute.column.clone()))?;
        Ok(self.attribute_degree(entity, attr, phrase))
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildConfig};
    use opine_corpus::hotel::hotel_spec;
    use opine_corpus::{Corpus, CorpusConfig};
    use opine_embed::Word2VecConfig;

    fn db() -> (Corpus, OpineDb) {
        let corpus = Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 16,
                mean_reviews: 16,
                seed: 9,
            },
        );
        let db = build(
            &corpus,
            &BuildConfig {
                w2v: Word2VecConfig {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                },
                membership_tuples: 400,
                ..Default::default()
            },
        );
        (corpus, db)
    }

    #[test]
    fn end_to_end_query_ranks_clean_hotels_higher() {
        let (corpus, db) = db();
        let out = db
            .query("select * from hotels where \"clean rooms\" limit 16")
            .unwrap();
        assert!(!out.result.rows.is_empty());
        // The top third should have higher average cleanliness θ than the
        // bottom third.
        let n = out.result.rows.len();
        let theta = |rows: &[(Vec<Value>, f64)]| -> f64 {
            rows.iter()
                .map(|(r, _)| {
                    let id = db.entity_id(r[0].as_str().unwrap()).unwrap();
                    corpus.entities[id].quality[0]
                })
                .sum::<f64>()
                / rows.len() as f64
        };
        let top = theta(&out.result.rows[..n / 3]);
        let bottom = theta(&out.result.rows[n - n / 3..]);
        assert!(
            top > bottom,
            "top θ {top} should exceed bottom θ {bottom}"
        );
    }

    #[test]
    fn objective_and_subjective_conditions_combine() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels where price_pn < 250 and \"clean rooms\" limit 50")
            .unwrap();
        for (row, score) in &out.result.rows {
            assert!(row[2].as_f64().unwrap() < 250.0);
            assert!((0.0..=1.0).contains(score));
        }
    }

    #[test]
    fn interpretations_are_reported() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels where \"spotless rooms\" limit 3")
            .unwrap();
        assert_eq!(out.interpretations.len(), 1);
        assert_eq!(out.interpretations[0].0, "spotless rooms");
    }

    #[test]
    fn degree_cache_is_consistent() {
        let (_, db) = db();
        let a = db.degree(0, "clean rooms");
        let b = db.degree(0, "clean rooms");
        assert_eq!(a, b);
    }

    #[test]
    fn marker_and_scan_paths_correlate() {
        let (_, db) = db();
        let with_markers: Vec<f64> = (0..db.num_entities())
            .map(|e| db.degree(e, "clean rooms"))
            .collect();
        db.set_use_markers(false);
        let without: Vec<f64> = (0..db.num_entities())
            .map(|e| db.attribute_degree(e, 0, "clean rooms"))
            .collect();
        db.set_use_markers(true);
        // Spearman-ish check: the top marker-entity should be in the upper
        // half of the scan ranking.
        let top = with_markers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let rank = without
            .iter()
            .filter(|&&d| d > without[top])
            .count();
        assert!(
            rank <= db.num_entities() / 2,
            "marker-top entity ranks {rank} under scan"
        );
    }

    #[test]
    fn review_filter_recomputes_summaries() {
        let (_, db) = db();
        let filtered = db.summaries_with_review_filter(|m| m.year >= 2012);
        let full_total: f64 = (0..db.num_entities())
            .map(|e| db.summary(e, 0).total)
            .sum();
        let filtered_total: f64 = filtered.iter().map(|per| per[0].total).sum();
        assert!(filtered_total < full_total);
        assert!(filtered_total > 0.0);
    }

    #[test]
    fn marker_match_syntax_works() {
        let (_, db) = db();
        let out = db
            .query("select * from hotels h where h.room_cleanliness .= \"very clean\" limit 5")
            .unwrap();
        assert!(!out.result.rows.is_empty());
    }

    #[test]
    fn text_fallback_degree_is_bounded() {
        let (_, db) = db();
        for e in 0..db.num_entities() {
            let d = db.text_degree(e, "great for motorcyclists");
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn unknown_table_query_errors() {
        let (_, db) = db();
        assert!(db.query("select * from nonexistent").is_err());
        assert!(db.query("not sql at all").is_err());
    }
}

