//! Epoch-stamped snapshot cell — the isolation primitive live ingest
//! will build on.
//!
//! A [`SnapshotCell`] holds an `Arc<T>` plus a monotonically increasing
//! epoch. Writers build a complete new value *off to the side* and
//! publish it with [`SnapshotCell::publish`], which swaps the `Arc` and
//! bumps the epoch in one critical section. Readers call
//! [`SnapshotCell::load`] to pin an immutable [`Snapshot`] — a cheap
//! `Arc` clone — and keep using it for the rest of their query no matter
//! how many publishes happen meanwhile. This is exactly the discipline a
//! query needs to see one consistent index generation end-to-end.
//!
//! Two properties make the cell safe to put under live queries, and both
//! are proved (at small bounds) by the `epoch-snapshot-cell` micro-model
//! in `opine-lint`'s bounded-interleaving checker:
//!
//! 1. **No torn snapshots** — a reader can never observe a value from
//!    one publish paired with the epoch of another, because both move
//!    together under the write lock.
//! 2. **Monotone epochs** — consecutive `load`s on one thread never go
//!    backwards in time.
//!
//! The read path is a brief `RwLock` read (clone an `Arc`, load a u64);
//! writers are expected to be rare (index rebuilds, ingest batches), so
//! reader throughput is bounded by `Arc` cloning, not the lock.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A pinned, immutable view of the cell's value at a point in time.
#[derive(Debug, Clone)]
pub struct Snapshot<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> Snapshot<T> {
    /// The publish generation this snapshot belongs to. Epoch 0 is the
    /// initial value; every `publish` increments it by exactly one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying shared value (an `Arc` clone of it).
    pub fn value(&self) -> &Arc<T> {
        &self.value
    }
}

impl<T> Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// An epoch-stamped `Arc` swap cell: readers pin consistent snapshots,
/// writers publish fully built values.
pub struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
    // sync: written only inside the `current` write lock and read only
    // inside the read lock, so the lock provides the happens-before; the
    // Release/Acquire pair additionally lets `epoch()` peek without the
    // lock and still observe a published value's stamp.
    epoch: AtomicU64,
}

impl<T> SnapshotCell<T> {
    pub fn new(value: T) -> SnapshotCell<T> {
        SnapshotCell {
            current: RwLock::new(Arc::new(value)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Pin the current value. The returned snapshot stays valid (and
    /// unchanged) for as long as the caller holds it, regardless of
    /// concurrent publishes.
    pub fn load(&self) -> Snapshot<T> {
        let guard = self.current.read();
        // sync: pairs with the Release store in publish(); inside the
        // read lock the pair (value, epoch) is indivisible.
        let epoch = self.epoch.load(Ordering::Acquire);
        Snapshot {
            value: Arc::clone(&guard),
            epoch,
        }
    }

    /// Publish a fully built replacement value, returning the epoch it
    /// was stamped with. Readers holding older snapshots are unaffected;
    /// new `load`s observe the new value and epoch together.
    pub fn publish(&self, value: T) -> u64 {
        let mut guard = self.current.write();
        *guard = Arc::new(value);
        // sync: pairs with the Acquire load in load(); bumped strictly
        // inside the write lock so value and epoch move as one.
        let epoch = self.epoch.fetch_add(1, Ordering::Release) + 1;
        drop(guard);
        epoch
    }

    /// Build the replacement from the current value, then publish it.
    /// The builder runs outside any lock (on a pinned snapshot), so slow
    /// builds never block readers; the final swap is brief.
    pub fn update(&self, build: impl FnOnce(&T) -> T) -> u64 {
        let snapshot = self.load();
        let next = build(&snapshot);
        self.publish(next)
    }

    /// The epoch of the most recent publish (0 if none yet). Lock-free;
    /// for monitoring. Use `load()` when the value is needed too.
    pub fn epoch(&self) -> u64 {
        // sync: pairs with the Release in publish(); monitoring only, a
        // stale read is acceptable.
        self.epoch.load(Ordering::Acquire)
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_pins_a_generation() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let pinned = cell.load();
        assert_eq!(pinned.epoch(), 0);
        cell.publish(vec![4, 5, 6]);
        // The pinned snapshot is untouched by the publish.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(pinned.epoch(), 0);
        let fresh = cell.load();
        assert_eq!(*fresh, vec![4, 5, 6]);
        assert_eq!(fresh.epoch(), 1);
    }

    #[test]
    fn update_builds_from_current() {
        let cell = SnapshotCell::new(10u64);
        let epoch = cell.update(|v| v + 5);
        assert_eq!(epoch, 1);
        assert_eq!(*cell.load(), 15);
        assert_eq!(cell.epoch(), 1);
    }

    /// The two model-checked properties, re-asserted against the real
    /// implementation under a thread stress: readers never see a torn
    /// (value, epoch) pair and epochs never regress per reader.
    #[test]
    fn concurrent_readers_see_consistent_monotone_snapshots() {
        // Invariant tying value to epoch: after publish n, value == n.
        let cell = Arc::new(SnapshotCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        const PUBLISHES: u64 = 1000;

        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                // Sample at least once even if the writer finishes
                // before this thread is first scheduled — the final
                // load still checks both invariants.
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let snap = cell.load();
                    assert_eq!(
                        *snap.value().as_ref(),
                        snap.epoch(),
                        "torn snapshot: value and epoch published separately"
                    );
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch regressed: {} after {}",
                        snap.epoch(),
                        last_epoch
                    );
                    last_epoch = snap.epoch();
                    observed += 1;
                    if done {
                        break;
                    }
                }
                observed
            }));
        }

        for n in 1..=PUBLISHES {
            let stamped = cell.publish(n);
            assert_eq!(stamped, n);
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        assert_eq!(cell.epoch(), PUBLISHES);
    }
}
