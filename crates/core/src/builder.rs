//! The subjective-database construction pipeline (Sec. 4 of the paper).
//!
//! From a raw review corpus this builds everything [`crate::OpineDb`]
//! needs: the word2vec model over the unlabeled text, per-attribute
//! linguistic domains, auto-discovered markers, per-entity marker
//! summaries (with provenance), the three-stage interpreter's indexes, the
//! trained membership functions, and the relational catalog.

use crate::db::{OpineDb, PhraseOcc, ReviewMeta};
use crate::domain::LinguisticDomain;
use crate::interpret::{Interpreter, InterpreterConfig, ReviewDigest};
use crate::membership::{marker_features, scan_features, MembershipModel};
use crate::summary::{AssignMode, MarkerSet, MarkerSummary, SummaryKind};
use opine_corpus::spec::AspectKind;
use opine_corpus::workload::build_workload;
use opine_corpus::Corpus;
use opine_embed::{PhraseEmbedder, Word2Vec, Word2VecConfig};
use opine_ir::InvertedIndex;
use opine_ml::LogRegConfig;
use opine_sentiment::SentimentAnalyzer;
use opine_store::{Catalog, Column, ColumnType, Schema, Value};
use opine_text::{split_sentences, tokenize, IdfModel, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where extractions come from during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractionMode {
    /// Use the corpus's gold pairs — isolates query-processing quality
    /// from extraction noise (the extractor itself is evaluated in the
    /// Table 6 experiment).
    #[default]
    Gold,
    /// Run the learned tagging+pairing+classification pipeline.
    Learned,
}

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Markers per subjective attribute (Table 7 uses 10).
    pub markers_per_attribute: usize,
    /// Word2vec hyper-parameters for the unlabeled pre-training pass.
    pub w2v: Word2VecConfig,
    /// Interpreter thresholds.
    pub interpreter: InterpreterConfig,
    /// Phrase→marker assignment mode.
    pub assign: AssignMode,
    /// Gold vs learned extraction.
    pub extraction: ExtractionMode,
    /// Number of labelled tuples for membership training (paper: 1 000).
    pub membership_tuples: usize,
    /// Sigmoid offset for the text-retrieval fallback degree.
    pub sigmoid_c: f64,
    /// Cosine below which a phrase counts as unmatched in summaries.
    pub unmatched_threshold: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            markers_per_attribute: 10,
            w2v: Word2VecConfig::default(),
            interpreter: InterpreterConfig::default(),
            assign: AssignMode::Best,
            extraction: ExtractionMode::Gold,
            membership_tuples: 1000,
            sigmoid_c: 3.0,
            unmatched_threshold: 0.05,
            seed: 42,
        }
    }
}

/// Builds an [`OpineDb`] from a corpus.
pub fn build(corpus: &Corpus, config: &BuildConfig) -> OpineDb {
    let num_attrs = corpus.spec.aspects.len();
    let sentiment = SentimentAnalyzer::new();

    // ---- 1. Tokenize, intern, train word2vec on the unlabeled corpus ----
    let mut vocab = Vocab::new();
    let mut sentences_interned = Vec::new();
    let mut idf = IdfModel::new(&vocab);
    for review in &corpus.reviews {
        let mut review_tokens = Vec::new();
        for sentence in split_sentences(&review.text) {
            let toks = tokenize(sentence);
            let ids = vocab.intern_all(&toks);
            review_tokens.extend(ids.iter().copied());
            sentences_interned.push(ids);
        }
        idf.add_document(&review_tokens);
    }
    // Make sure workload/query vocabulary is interned (idf treats unseen
    // words as maximally rare, which is the desired behaviour).
    for aspect in &corpus.spec.aspects {
        for q in &aspect.queries {
            for t in tokenize(&q.text) {
                vocab.intern(&t);
            }
        }
    }
    for concept in &corpus.spec.concepts {
        for q in &concept.queries {
            for t in tokenize(q) {
                vocab.intern(&t);
            }
        }
    }
    let w2v = Word2Vec::train(&sentences_interned, vocab.len(), &config.w2v);
    let embedder = PhraseEmbedder::new(w2v, idf);

    // ---- 2. Extraction: (review, attr, opinion term) triples ----
    // Gold mode reads the generator's pairs (isolating query-processing
    // quality from extraction noise); learned mode runs the full Sec. 4
    // pipeline: tagging + pairing + seed-expansion attribute classifier.
    let review_extractions: Vec<Vec<(usize, String)>> = match config.extraction {
        ExtractionMode::Gold => corpus
            .reviews
            .iter()
            .map(|r| {
                r.gold
                    .iter()
                    .map(|g| (g.aspect, g.opinion_term.clone()))
                    .collect()
            })
            .collect(),
        ExtractionMode::Learned => learned_extractions(corpus, &embedder, &vocab, config),
    };

    // ---- 3. Linguistic domains ----
    // Joint domains ("{opinion} {aspect}") drive stage-1 interpretation;
    // opinion domains drive marker discovery and summary aggregation.
    let mut joint_domains: Vec<LinguisticDomain> =
        (0..num_attrs).map(|_| LinguisticDomain::new()).collect();
    let mut opinion_domains: Vec<LinguisticDomain> =
        (0..num_attrs).map(|_| LinguisticDomain::new()).collect();
    for (review, extractions) in corpus.reviews.iter().zip(&review_extractions) {
        for (attr, opinion) in extractions {
            let senti = sentiment.score(opinion);
            opinion_domains[*attr].observe(opinion, senti, &embedder, &vocab);
            // Pair the opinion with a representative aspect term for the
            // joint variation.
            let aspect_term = &corpus.spec.aspects[*attr].aspect_terms[0];
            joint_domains[*attr].observe(
                &format!("{opinion} {aspect_term}"),
                senti,
                &embedder,
                &vocab,
            );
        }
        let _ = review;
    }

    // ---- 4. Marker discovery (Sec. 4.2.1) ----
    let marker_sets: Vec<MarkerSet> = corpus
        .spec
        .aspects
        .iter()
        .enumerate()
        .map(|(attr, aspect)| {
            let kind = match aspect.kind {
                AspectKind::Linear { .. } => SummaryKind::Linear,
                AspectKind::Categorical { .. } => SummaryKind::Categorical,
            };
            MarkerSet::discover(
                &aspect.name,
                &opinion_domains[attr],
                kind,
                config.markers_per_attribute,
                config.seed ^ attr as u64,
            )
        })
        .collect();

    // ---- 5. Summaries + raw digests + review digests ----
    let mut summaries: Vec<Vec<MarkerSummary>> = corpus
        .entities
        .iter()
        .map(|_| {
            marker_sets
                .iter()
                .map(|s| MarkerSummary::empty(s.markers.len()))
                .collect()
        })
        .collect();
    let mut raw: Vec<Vec<Vec<PhraseOcc>>> = corpus
        .entities
        .iter()
        .map(|_| (0..num_attrs).map(|_| Vec::new()).collect())
        .collect();
    let mut review_digest: ReviewDigest = Vec::with_capacity(corpus.reviews.len());

    for (review, extractions) in corpus.reviews.iter().zip(&review_extractions) {
        let mut digest = Vec::with_capacity(extractions.len());
        for (attr, opinion) in extractions {
            let variation = opinion_domains[*attr]
                .get(opinion)
                .expect("observed variation");
            let senti = variation.sentiment;
            summaries[review.entity_id][*attr].add_phrase(
                opinion,
                &variation.rep,
                senti,
                &marker_sets[*attr],
                config.assign,
                config.unmatched_threshold,
                review.id,
            );
            let var_idx = opinion_domains[*attr]
                .variations()
                .iter()
                .position(|v| v.phrase == *opinion)
                .expect("variation index");
            raw[review.entity_id][*attr].push(PhraseOcc {
                variation: var_idx,
                sentiment: senti,
                review_id: review.id,
            });
            let marker = marker_sets[*attr]
                .assign(&variation.rep, AssignMode::Best)
                .first()
                .map(|&(m, _)| m)
                .unwrap_or(0);
            digest.push((*attr, marker));
        }
        review_digest.push(digest);
    }

    // ---- 6. IR indexes ----
    let mut review_index = InvertedIndex::new();
    let mut review_sentiments = Vec::with_capacity(corpus.reviews.len());
    for review in &corpus.reviews {
        review_index.add_document(&review.text, &mut vocab);
        review_sentiments.push(sentiment.score(&review.text));
    }
    let mut entity_index = InvertedIndex::new();
    for entity in &corpus.entities {
        entity_index.add_document(&corpus.entity_document(entity.id), &mut vocab);
    }
    // Freeze the block-max structure at build time so no query pays it.
    entity_index.freeze();

    let interpreter = Interpreter::new(
        config.interpreter.clone(),
        joint_domains,
        marker_sets,
        review_index,
        review_sentiments,
        review_digest,
    );

    // ---- 7. Membership functions (Sec. 3.3) ----
    // Labelled (summary, phrase, y) tuples; labels come from the latent
    // ground truth of the simulator (the paper used human labels).
    let workload = build_workload(
        &corpus.spec,
        if corpus.spec.name == "hotel" {
            190
        } else {
            185
        },
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xbeef);
    let mut marker_tuples = Vec::with_capacity(config.membership_tuples);
    let mut scan_tuples = Vec::with_capacity(config.membership_tuples);
    for _ in 0..config.membership_tuples {
        let e = rng.gen_range(0..corpus.entities.len());
        let p = &workload[rng.gen_range(0..workload.len())];
        let label = p.satisfied_by(&corpus.entities[e], &corpus.spec);
        let mut q_rep = embedder.rep(&p.text, &vocab);
        opine_embed::normalize(&mut q_rep);
        let q_sent = sentiment.score(&p.text);
        let attr = p.gold_aspect;
        marker_tuples.push((
            marker_features(
                &summaries[e][attr],
                &interpreter.marker_sets()[attr],
                &q_rep,
                q_sent,
            ),
            label,
        ));
        let phrase_refs: Vec<(&[f32], f64)> = raw[e][attr]
            .iter()
            .map(|occ| {
                (
                    opinion_domains[attr].variations()[occ.variation]
                        .rep
                        .as_slice(),
                    occ.sentiment,
                )
            })
            .collect();
        scan_tuples.push((scan_features(&phrase_refs, &q_rep, q_sent), label));
    }
    let lr_cfg = LogRegConfig {
        seed: config.seed ^ 0xfeed,
        ..Default::default()
    };
    let membership_markers = MembershipModel::train(&marker_tuples, &lr_cfg);
    let membership_scan = MembershipModel::train(&scan_tuples, &lr_cfg);

    // ---- 8. Relational catalog ----
    let is_hotel = corpus.spec.name == "hotel";
    let entity_table = if is_hotel { "hotels" } else { "restaurants" };
    let mut catalog = Catalog::new();
    let entity_schema = if is_hotel {
        Schema::new(
            entity_table,
            vec![
                Column::new("hotelname", ColumnType::Text),
                Column::new("city", ColumnType::Text),
                Column::new("price_pn", ColumnType::Float),
                Column::new("capacity", ColumnType::Int),
                Column::new("rating", ColumnType::Float),
            ],
            0,
        )
    } else {
        Schema::new(
            entity_table,
            vec![
                Column::new("restname", ColumnType::Text),
                Column::new("city", ColumnType::Text),
                Column::new("price_range", ColumnType::Int),
                Column::new("cuisine", ColumnType::Text),
                Column::new("rating", ColumnType::Float),
            ],
            0,
        )
    };
    catalog.create_table(entity_schema).expect("fresh catalog");
    let mut entity_keys = Vec::with_capacity(corpus.entities.len());
    for entity in &corpus.entities {
        let row = if is_hotel {
            vec![
                Value::text(&entity.name),
                Value::text(&entity.city),
                Value::Float(entity.price),
                Value::Int(entity.capacity as i64),
                Value::Float(entity.rating),
            ]
        } else {
            vec![
                Value::text(&entity.name),
                Value::text(&entity.city),
                Value::Int(entity.price_range as i64),
                Value::text(&entity.cuisine),
                Value::Float(entity.rating),
            ]
        };
        entity_keys.push(entity.name.clone());
        catalog.insert(entity_table, row).expect("schema matches");
    }
    catalog
        .create_table(Schema::new(
            "reviews",
            vec![
                Column::new("review_id", ColumnType::Int),
                Column::new("entity", ColumnType::Text),
                Column::new("reviewer_id", ColumnType::Int),
                Column::new("year", ColumnType::Int),
                Column::new("helpful_votes", ColumnType::Int),
            ],
            0,
        ))
        .expect("fresh catalog");
    for review in &corpus.reviews {
        catalog
            .insert(
                "reviews",
                vec![
                    Value::Int(review.id as i64),
                    Value::text(&corpus.entities[review.entity_id].name),
                    Value::Int(review.reviewer_id as i64),
                    Value::Int(review.year as i64),
                    Value::Int(review.helpful_votes as i64),
                ],
            )
            .expect("schema matches");
    }

    let review_meta: Vec<ReviewMeta> = corpus
        .reviews
        .iter()
        .map(|r| ReviewMeta {
            entity_id: r.entity_id,
            reviewer_id: r.reviewer_id,
            year: r.year,
            helpful_votes: r.helpful_votes,
        })
        .collect();

    OpineDb::assemble(
        corpus.spec.aspects.iter().map(|a| a.name.clone()).collect(),
        vocab,
        embedder,
        sentiment,
        opinion_domains,
        interpreter,
        summaries,
        raw,
        membership_markers,
        membership_scan,
        entity_index,
        catalog,
        entity_table.to_string(),
        entity_keys,
        review_meta,
        config.clone(),
    )
}

/// The learned extraction pipeline of Sec. 4: a tagger trained on the
/// domain's labelled ABSA data (with embedding-cluster features from the
/// word2vec model pre-trained above), rule-based pairing, and an attribute
/// classifier trained by seed expansion.
fn learned_extractions(
    corpus: &Corpus,
    embedder: &PhraseEmbedder,
    vocab: &Vocab,
    config: &BuildConfig,
) -> Vec<Vec<(usize, String)>> {
    use opine_corpus::absa::absa_datasets;
    use opine_extract::seeds::seeds_from_spec;
    use opine_extract::{expand_seeds, AttributeClassifier, EmbeddingClusters, Extractor};
    use opine_ml::TaggerConfig;
    use opine_text::tokenize_keep_stops;

    // Labelled tagging data for this domain (hotel → the Booking set;
    // restaurants and other domains → the SemEval-14-style restaurant set).
    let datasets = absa_datasets(config.seed ^ 0xab5a);
    let dataset = if corpus.spec.name == "hotel" {
        &datasets[3]
    } else {
        &datasets[0]
    };
    let clusters = EmbeddingClusters::build(embedder.w2v(), vocab, 40, config.seed ^ 0xc1);
    let extractor = Extractor::train(
        &dataset.train,
        Some(clusters),
        &TaggerConfig {
            epochs: 4,
            seed: config.seed ^ 0x7a,
        },
    );

    let seeds = seeds_from_spec(&corpus.spec, 0.6);
    let records = expand_seeds(&seeds, embedder.w2v(), vocab, 3, 0.35, 5000);
    let classifier = AttributeClassifier::train(
        &records,
        corpus.spec.aspects.len(),
        embedder,
        vocab,
        &opine_ml::LogRegConfig {
            epochs: 25,
            seed: config.seed ^ 0x5eed,
            ..Default::default()
        },
    );

    corpus
        .reviews
        .iter()
        .map(|review| {
            let mut out = Vec::new();
            for sentence in split_sentences(&review.text) {
                let tokens = tokenize_keep_stops(sentence);
                for pair in extractor.extract(&tokens) {
                    let attr = classifier.classify(
                        &format!("{} {}", pair.aspect, pair.opinion),
                        embedder,
                        vocab,
                    );
                    out.push((attr, pair.opinion));
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opine_corpus::hotel::hotel_spec;
    use opine_corpus::CorpusConfig;

    fn small_corpus() -> Corpus {
        Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 12,
                mean_reviews: 12,
                seed: 5,
            },
        )
    }

    fn fast_config() -> BuildConfig {
        BuildConfig {
            w2v: Word2VecConfig {
                dim: 24,
                epochs: 2,
                ..Default::default()
            },
            membership_tuples: 300,
            ..Default::default()
        }
    }

    #[test]
    fn build_produces_full_db() {
        let corpus = small_corpus();
        let db = build(&corpus, &fast_config());
        assert_eq!(db.attributes.len(), corpus.spec.aspects.len());
        assert_eq!(db.num_entities(), 12);
        // Every entity has a summary per attribute.
        for e in 0..db.num_entities() {
            for a in 0..db.attributes.len() {
                let s = db.summary(e, a);
                assert_eq!(s.num_markers(), db.marker_set(a).markers.len());
            }
        }
    }

    #[test]
    fn summaries_reflect_latent_quality() {
        let corpus = small_corpus();
        let db = build(&corpus, &fast_config());
        // The entity with the highest cleanliness θ should have higher
        // positive-marker mass than the lowest-θ entity.
        let best = corpus
            .entities
            .iter()
            .max_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
            .unwrap();
        let worst = corpus
            .entities
            .iter()
            .min_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
            .unwrap();
        if best.quality[0] - worst.quality[0] > 0.4 {
            let set = db.marker_set(0);
            // Identify the marker with the highest sentiment (most positive).
            let pos_marker = set
                .markers
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.sentiment.total_cmp(&b.1.sentiment))
                .map(|(i, _)| i)
                .unwrap();
            let f_best = db.summary(best.id, 0).fractions()[pos_marker];
            let f_worst = db.summary(worst.id, 0).fractions()[pos_marker];
            assert!(
                f_best >= f_worst,
                "best {f_best} should have at least as much positive mass as worst {f_worst}"
            );
        }
    }

    #[test]
    fn marker_counts_conserve_extraction_mass() {
        let corpus = small_corpus();
        let db = build(&corpus, &fast_config());
        // Total summary mass equals the number of gold extractions.
        let total_gold: f64 = corpus.reviews.iter().map(|r| r.gold.len() as f64).sum();
        let total_mass: f64 = (0..db.num_entities())
            .map(|e| {
                (0..db.attributes.len())
                    .map(|a| db.summary(e, a).total)
                    .sum::<f64>()
            })
            .sum();
        assert!((total_gold - total_mass).abs() < 1e-6);
    }

    #[test]
    fn learned_extraction_builds_a_working_db() {
        let corpus = Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 8,
                mean_reviews: 8,
                seed: 77,
            },
        );
        let db = build(
            &corpus,
            &BuildConfig {
                extraction: ExtractionMode::Learned,
                membership_tuples: 150,
                w2v: Word2VecConfig {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // The learned pipeline produced extractions and the DB answers
        // queries with bounded degrees.
        let total_mass: f64 = (0..db.num_entities())
            .map(|e| {
                (0..db.attributes.len())
                    .map(|a| db.summary(e, a).total)
                    .sum::<f64>()
            })
            .sum();
        assert!(total_mass > 0.0, "learned extraction found no phrases");
        let out = db
            .query("select * from hotels where \"clean rooms\" limit 5")
            .expect("query runs");
        for (_, s) in &out.result.rows {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn catalog_has_entity_and_review_tables() {
        let corpus = small_corpus();
        let db = build(&corpus, &fast_config());
        let names = db.catalog().table_names();
        assert!(names.contains(&"hotels"));
        assert!(names.contains(&"reviews"));
        assert_eq!(db.catalog().table("hotels").unwrap().len(), 12);
    }
}
