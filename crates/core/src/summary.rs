//! Markers and marker summaries (Sec. 2 and Sec. 4.2 of the paper).
//!
//! A marker summary is "a view that aggregates the phrases from the
//! reviews onto the markers": per entity and attribute, a histogram over
//! the markers plus precomputed features — per-marker average sentiment
//! and average phrase embedding — that the membership functions consume.

use crate::domain::LinguisticDomain;
use opine_embed::cosine;
use opine_ml::{KMeans, KMeansConfig};

/// Whether a marker set forms a linear scale or unordered categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// `[very_clean, average, dirty, very_dirty]`-style scales.
    Linear,
    /// `[old, standard, modern, luxurious]`-style category sets.
    Categorical,
}

/// How a phrase's mass is distributed over markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignMode {
    /// The paper's current implementation: all mass to the best marker.
    #[default]
    Best,
    /// The paper's model (future work there, implemented here): mass split
    /// proportionally over the two nearest markers for linear summaries.
    Proportional,
}

/// One marker: a designated linguistic variation.
#[derive(Debug, Clone)]
pub struct Marker {
    /// The marker phrase, e.g. "very clean".
    pub phrase: String,
    /// Unit-normalized embedding of the phrase.
    pub rep: Vec<f32>,
    /// Sentiment of the marker phrase.
    pub sentiment: f64,
}

/// The marker set (record type) of one subjective attribute.
#[derive(Debug, Clone)]
pub struct MarkerSet {
    /// Attribute name.
    pub attribute: String,
    /// Linear or categorical.
    pub kind: SummaryKind,
    /// The markers, in scale order for linear sets.
    pub markers: Vec<Marker>,
}

impl MarkerSet {
    /// Auto-generates markers from a linguistic domain (Sec. 4.2.1).
    ///
    /// Linear domains: variations are sorted by sentiment and split into
    /// `k` equal buckets; the center variation of each bucket becomes the
    /// marker. Categorical domains: k-means over phrase embeddings; the
    /// medoid variation of each cluster becomes the marker.
    pub fn discover(
        attribute: &str,
        domain: &LinguisticDomain,
        kind: SummaryKind,
        k: usize,
        seed: u64,
    ) -> Self {
        let variations = domain.variations();
        let k = k.clamp(1, variations.len().max(1));
        let markers = if variations.is_empty() {
            Vec::new()
        } else {
            match kind {
                SummaryKind::Linear => {
                    let mut order: Vec<usize> = (0..variations.len()).collect();
                    order.sort_by(|&a, &b| {
                        variations[a].sentiment.total_cmp(&variations[b].sentiment)
                    });
                    let bucket = (variations.len() as f64 / k as f64).max(1.0);
                    (0..k)
                        .map(|i| {
                            let center = ((i as f64 + 0.5) * bucket) as usize;
                            let v = &variations[order[center.min(order.len() - 1)]];
                            Marker {
                                phrase: v.phrase.clone(),
                                rep: v.rep.clone(),
                                sentiment: v.sentiment,
                            }
                        })
                        .collect()
                }
                SummaryKind::Categorical => {
                    let points: Vec<Vec<f32>> = variations.iter().map(|v| v.rep.clone()).collect();
                    let km = KMeans::fit(
                        &points,
                        &KMeansConfig {
                            k,
                            max_iters: 40,
                            seed,
                        },
                    );
                    km.medoid_indices(&points)
                        .into_iter()
                        .map(|i| Marker {
                            phrase: variations[i].phrase.clone(),
                            rep: variations[i].rep.clone(),
                            sentiment: variations[i].sentiment,
                        })
                        .collect()
                }
            }
        };
        Self {
            attribute: attribute.to_string(),
            kind,
            markers,
        }
    }

    /// Index of the marker whose phrase equals `phrase`, if any.
    pub fn marker_index(&self, phrase: &str) -> Option<usize> {
        self.markers.iter().position(|m| m.phrase == phrase)
    }

    /// `(marker index, weight)` assignments for a phrase representation.
    pub fn assign(&self, rep: &[f32], mode: AssignMode) -> Vec<(usize, f64)> {
        if self.markers.is_empty() {
            return Vec::new();
        }
        let mut sims: Vec<(usize, f32)> = self
            .markers
            .iter()
            .enumerate()
            .map(|(i, m)| (i, cosine(rep, &m.rep)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        match mode {
            AssignMode::Best => vec![(sims[0].0, 1.0)],
            AssignMode::Proportional => {
                if sims.len() == 1 || self.kind == SummaryKind::Categorical {
                    return vec![(sims[0].0, 1.0)];
                }
                // Split over the two nearest, proportional to shifted sims.
                let (i1, s1) = sims[0];
                let (i2, s2) = sims[1];
                let w1 = (s1 + 1.0) as f64;
                let w2 = (s2 + 1.0) as f64;
                let total = (w1 + w2).max(1e-9);
                vec![(i1, w1 / total), (i2, w2 / total)]
            }
        }
    }
}

/// One provenance record: where an aggregated phrase came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Source review id.
    pub review_id: usize,
    /// The extracted phrase.
    pub phrase: String,
}

/// A per-entity marker-summary instance.
#[derive(Debug, Clone)]
pub struct MarkerSummary {
    /// Phrase mass per marker.
    pub counts: Vec<f64>,
    /// Running mean sentiment of phrases assigned to each marker.
    pub sentiments: Vec<f64>,
    /// Running mean embedding of phrases assigned to each marker.
    pub centroids: Vec<Vec<f32>>,
    /// Total phrase mass (matched + unmatched).
    pub total: f64,
    /// Mass of phrases whose best marker similarity fell below the
    /// unmatched threshold.
    pub unmatched: f64,
    /// Provenance of every aggregated phrase.
    pub provenance: Vec<Provenance>,
}

impl MarkerSummary {
    /// Empty summary for a marker set with `k` markers and embedding
    /// dimensionality `dim`.
    pub fn empty(k: usize, dim: usize) -> Self {
        Self {
            counts: vec![0.0; k],
            sentiments: vec![0.0; k],
            centroids: vec![vec![0.0; dim]; k],
            total: 0.0,
            unmatched: 0.0,
            provenance: Vec::new(),
        }
    }

    /// Incrementally aggregates one extracted phrase (Sec. 4.2.2: "the
    /// marker summaries can be incrementally computed").
    ///
    /// `min_similarity` is the threshold below which the phrase counts as
    /// unmatched rather than being forced onto a marker.
    #[allow(clippy::too_many_arguments)]
    pub fn add_phrase(
        &mut self,
        phrase: &str,
        rep: &[f32],
        sentiment: f64,
        markers: &MarkerSet,
        mode: AssignMode,
        min_similarity: f32,
        review_id: usize,
    ) {
        self.total += 1.0;
        self.provenance.push(Provenance {
            review_id,
            phrase: phrase.to_string(),
        });
        let assignments = markers.assign(rep, mode);
        let best_sim = markers
            .markers
            .iter()
            .map(|m| cosine(rep, &m.rep))
            .fold(f32::NEG_INFINITY, f32::max);
        if assignments.is_empty() || best_sim < min_similarity {
            self.unmatched += 1.0;
            return;
        }
        for (idx, weight) in assignments {
            let prev = self.counts[idx];
            self.counts[idx] += weight;
            let new_total = self.counts[idx].max(1e-12);
            self.sentiments[idx] = (self.sentiments[idx] * prev + sentiment * weight) / new_total;
            for (c, x) in self.centroids[idx].iter_mut().zip(rep) {
                *c = (*c * prev as f32 + *x * weight as f32) / new_total as f32;
            }
        }
    }

    /// Fraction of matched mass on each marker (zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        let matched = (self.total - self.unmatched).max(1e-12);
        self.counts.iter().map(|c| c / matched).collect()
    }

    /// Fraction of phrases that matched no marker.
    pub fn unmatched_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.unmatched / self.total
        }
    }

    /// Total matched mass across markers.
    pub fn matched_mass(&self) -> f64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LinguisticDomain;
    use opine_embed::{PhraseEmbedder, Word2Vec, Word2VecConfig};
    use opine_text::{IdfModel, Vocab, WordId};

    fn fixture() -> (Vocab, PhraseEmbedder, LinguisticDomain) {
        let mut vocab = Vocab::new();
        let sentences = [
            vec!["room", "very", "clean", "fresh"],
            vec!["room", "clean", "fresh"],
            vec!["room", "average", "fine"],
            vec!["room", "dirty", "bad"],
            vec!["room", "very", "dirty", "bad"],
        ];
        let interned: Vec<Vec<WordId>> = (0..40)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let mut idf = IdfModel::new(&vocab);
        for s in &interned {
            idf.add_document(s);
        }
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 8,
                seed: 6,
                ..Default::default()
            },
        );
        let embedder = PhraseEmbedder::new(w2v, idf);
        let mut domain = LinguisticDomain::new();
        for (p, s) in [
            ("very clean", 0.9),
            ("clean", 0.65),
            ("average", 0.0),
            ("dirty", -0.7),
            ("very dirty", -0.9),
        ] {
            domain.observe(p, s, &embedder, &vocab);
        }
        (vocab, embedder, domain)
    }

    #[test]
    fn linear_markers_are_sentiment_ordered() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("room_cleanliness", &domain, SummaryKind::Linear, 4, 1);
        assert_eq!(set.markers.len(), 4);
        // Buckets are in ascending sentiment order by construction.
        for w in set.markers.windows(2) {
            assert!(w[0].sentiment <= w[1].sentiment);
        }
    }

    #[test]
    fn categorical_markers_are_domain_members() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("style", &domain, SummaryKind::Categorical, 3, 1);
        assert_eq!(set.markers.len(), 3);
        for m in &set.markers {
            assert!(domain.get(&m.phrase).is_some());
        }
    }

    #[test]
    fn discover_with_k_larger_than_domain_clamps() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 50, 1);
        assert!(set.markers.len() <= domain.len());
    }

    #[test]
    fn best_assignment_has_unit_mass() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut rep = embedder.rep("clean", &vocab);
        opine_embed::normalize(&mut rep);
        let a = set.assign(&rep, AssignMode::Best);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].1, 1.0);
    }

    #[test]
    fn proportional_assignment_conserves_mass() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut rep = embedder.rep("clean", &vocab);
        opine_embed::normalize(&mut rep);
        let a = set.assign(&rep, AssignMode::Proportional);
        assert_eq!(a.len(), 2);
        let mass: f64 = a.iter().map(|(_, w)| w).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_aggregation_tracks_counts_and_provenance() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut s = MarkerSummary::empty(set.markers.len(), embedder.dim());
        for (i, phrase) in ["very clean", "clean", "dirty"].iter().enumerate() {
            let mut rep = embedder.rep(phrase, &vocab);
            opine_embed::normalize(&mut rep);
            s.add_phrase(phrase, &rep, 0.5, &set, AssignMode::Best, -1.0, i);
        }
        assert_eq!(s.total, 3.0);
        assert_eq!(s.matched_mass(), 3.0);
        assert_eq!(s.provenance.len(), 3);
        assert_eq!(s.provenance[0].phrase, "very clean");
        let fracs = s.fractions();
        assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dissimilar_phrase_goes_to_unmatched() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut s = MarkerSummary::empty(set.markers.len(), embedder.dim());
        // A zero rep has cosine 0 with everything; threshold 0.5 rejects it.
        let rep = embedder.rep("qqqq zzzz", &vocab);
        s.add_phrase("qqqq zzzz", &rep, 0.0, &set, AssignMode::Best, 0.5, 0);
        assert_eq!(s.unmatched, 1.0);
        assert_eq!(s.matched_mass(), 0.0);
        assert!((s.unmatched_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_has_zero_fractions() {
        let s = MarkerSummary::empty(4, 8);
        assert_eq!(s.fractions(), vec![0.0; 4]);
        assert_eq!(s.unmatched_fraction(), 0.0);
    }
}
