//! Markers and marker summaries (Sec. 2 and Sec. 4.2 of the paper).
//!
//! A marker summary is "a view that aggregates the phrases from the
//! reviews onto the markers": per entity and attribute, a histogram over
//! the markers plus precomputed features — per-marker mass and mean
//! sentiment — that the membership functions consume.
//!
//! ## Deterministic, mergeable aggregation
//!
//! Summaries accumulate in **fixed-point `i64`** (scale `2^32`), not
//! floating point. Integer addition is exact, associative, and
//! commutative, so [`MarkerSummary::merge`] of any partition of the
//! phrases — in any order — is *bit-identical* to a from-scratch build
//! over the same phrases. That is the property the review-qualified
//! query path relies on: per-bucket partial summaries built at
//! construction time can be merged per filter instead of re-aggregating
//! every raw occurrence, with answers guaranteed identical to the full
//! rebuild.

use crate::domain::LinguisticDomain;
use opine_embed::cosine;
use opine_ml::{KMeans, KMeansConfig};

/// Whether a marker set forms a linear scale or unordered categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// `[very_clean, average, dirty, very_dirty]`-style scales.
    Linear,
    /// `[old, standard, modern, luxurious]`-style category sets.
    Categorical,
}

/// How a phrase's mass is distributed over markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignMode {
    /// The paper's current implementation: all mass to the best marker.
    #[default]
    Best,
    /// The paper's model (future work there, implemented here): mass split
    /// proportionally over the two nearest markers for linear summaries.
    Proportional,
}

/// One marker: a designated linguistic variation.
#[derive(Debug, Clone)]
pub struct Marker {
    /// The marker phrase, e.g. "very clean".
    pub phrase: String,
    /// Unit-normalized embedding of the phrase.
    pub rep: Vec<f32>,
    /// Sentiment of the marker phrase.
    pub sentiment: f64,
}

/// The marker set (record type) of one subjective attribute.
#[derive(Debug, Clone)]
pub struct MarkerSet {
    /// Attribute name.
    pub attribute: String,
    /// Linear or categorical.
    pub kind: SummaryKind,
    /// The markers, in scale order for linear sets.
    pub markers: Vec<Marker>,
}

impl MarkerSet {
    /// Auto-generates markers from a linguistic domain (Sec. 4.2.1).
    ///
    /// Linear domains: variations are sorted by sentiment and split into
    /// `k` equal buckets; the center variation of each bucket becomes the
    /// marker. Categorical domains: k-means over phrase embeddings; the
    /// medoid variation of each cluster becomes the marker.
    pub fn discover(
        attribute: &str,
        domain: &LinguisticDomain,
        kind: SummaryKind,
        k: usize,
        seed: u64,
    ) -> Self {
        let variations = domain.variations();
        let k = k.clamp(1, variations.len().max(1));
        let markers = if variations.is_empty() {
            Vec::new()
        } else {
            match kind {
                SummaryKind::Linear => {
                    let mut order: Vec<usize> = (0..variations.len()).collect();
                    order.sort_by(|&a, &b| {
                        variations[a].sentiment.total_cmp(&variations[b].sentiment)
                    });
                    let bucket = (variations.len() as f64 / k as f64).max(1.0);
                    (0..k)
                        .map(|i| {
                            let center = ((i as f64 + 0.5) * bucket) as usize;
                            let v = &variations[order[center.min(order.len() - 1)]];
                            Marker {
                                phrase: v.phrase.clone(),
                                rep: v.rep.clone(),
                                sentiment: v.sentiment,
                            }
                        })
                        .collect()
                }
                SummaryKind::Categorical => {
                    let points: Vec<Vec<f32>> = variations.iter().map(|v| v.rep.clone()).collect();
                    let km = KMeans::fit(
                        &points,
                        &KMeansConfig {
                            k,
                            max_iters: 40,
                            seed,
                        },
                    );
                    km.medoid_indices(&points)
                        .into_iter()
                        .map(|i| Marker {
                            phrase: variations[i].phrase.clone(),
                            rep: variations[i].rep.clone(),
                            sentiment: variations[i].sentiment,
                        })
                        .collect()
                }
            }
        };
        Self {
            attribute: attribute.to_string(),
            kind,
            markers,
        }
    }

    /// Index of the marker whose phrase equals `phrase`, if any.
    pub fn marker_index(&self, phrase: &str) -> Option<usize> {
        self.markers.iter().position(|m| m.phrase == phrase)
    }

    /// `(marker index, weight)` assignments for a phrase representation.
    pub fn assign(&self, rep: &[f32], mode: AssignMode) -> Vec<(usize, f64)> {
        if self.markers.is_empty() {
            return Vec::new();
        }
        let mut sims: Vec<(usize, f32)> = self
            .markers
            .iter()
            .enumerate()
            .map(|(i, m)| (i, cosine(rep, &m.rep)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        match mode {
            AssignMode::Best => vec![(sims[0].0, 1.0)],
            AssignMode::Proportional => {
                if sims.len() == 1 || self.kind == SummaryKind::Categorical {
                    return vec![(sims[0].0, 1.0)];
                }
                // Split over the two nearest, proportional to shifted sims.
                let (i1, s1) = sims[0];
                let (i2, s2) = sims[1];
                let w1 = (s1 + 1.0) as f64;
                let w2 = (s2 + 1.0) as f64;
                let total = (w1 + w2).max(1e-9);
                vec![(i1, w1 / total), (i2, w2 / total)]
            }
        }
    }
}

/// One provenance record: where an aggregated phrase came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Source review id.
    pub review_id: usize,
    /// The extracted phrase.
    pub phrase: String,
}

/// Fixed-point scale of the summary accumulators: weights and weighted
/// sentiments are quantized to multiples of `2^-32` before accumulation,
/// so sums are exact `i64` arithmetic (order-independent, mergeable).
const FP_SCALE: f64 = (1u64 << 32) as f64;

#[inline]
fn quantize(x: f64) -> i64 {
    (x * FP_SCALE).round() as i64
}

#[inline]
fn dequantize(q: i64) -> f64 {
    q as f64 / FP_SCALE
}

/// One phrase's fully-resolved effect on a summary: the marker
/// assignments quantized to the fixed-point accumulator grid, plus the
/// unmatched verdict. Splitting resolution ([`Self::compute`], the
/// marker-similarity loop) from accumulation ([`MarkerSummary::apply`])
/// gives every aggregation site — the build-time summaries, the
/// review-bucket partials, the raw-rescan fallback — one shared
/// resolution path, so their updates are identical by construction.
/// (Sharing one *computed* contribution across the full summary and
/// its bucket partial within a single build pass is the follow-on the
/// ROADMAP's batching item describes.)
#[derive(Debug, Clone)]
pub struct PhraseContribution<'p> {
    phrase: &'p str,
    review_id: usize,
    unmatched: bool,
    /// `(marker, quantized weight, quantized sentiment·weight)`.
    assignments: Vec<(usize, i64, i64)>,
}

impl<'p> PhraseContribution<'p> {
    /// Resolves a phrase against a marker set (Sec. 4.2.2 aggregation
    /// step). `min_similarity` is the threshold below which the phrase
    /// counts as unmatched rather than being forced onto a marker.
    pub fn compute(
        phrase: &'p str,
        rep: &[f32],
        sentiment: f64,
        markers: &MarkerSet,
        mode: AssignMode,
        min_similarity: f32,
        review_id: usize,
    ) -> Self {
        let assignments = markers.assign(rep, mode);
        let best_sim = markers
            .markers
            .iter()
            .map(|m| cosine(rep, &m.rep))
            .fold(f32::NEG_INFINITY, f32::max);
        let unmatched = assignments.is_empty() || best_sim < min_similarity;
        let assignments = if unmatched {
            Vec::new()
        } else {
            assignments
                .into_iter()
                .map(|(idx, weight)| (idx, quantize(weight), quantize(sentiment * weight)))
                .collect()
        };
        PhraseContribution {
            phrase,
            review_id,
            unmatched,
            assignments,
        }
    }
}

/// A per-entity marker-summary instance.
///
/// Per-marker mass and weighted sentiment accumulate in fixed-point
/// `i64` (see the module docs); [`Self::merge`] of disjoint summaries is
/// therefore bit-identical to aggregating all their phrases into one
/// summary, in any order.
#[derive(Debug, Clone)]
pub struct MarkerSummary {
    /// Quantized phrase mass per marker.
    counts_q: Vec<i64>,
    /// Quantized `Σ sentiment·weight` per marker.
    senti_q: Vec<i64>,
    /// Total phrase count (matched + unmatched). Whole phrases only, so
    /// the `f64` is exact.
    pub total: f64,
    /// Count of phrases whose best marker similarity fell below the
    /// unmatched threshold.
    pub unmatched: f64,
    /// Provenance of every aggregated phrase (empty for the compact
    /// review-bucket partials, which skip provenance to stay small).
    pub provenance: Vec<Provenance>,
}

impl MarkerSummary {
    /// Empty summary for a marker set with `k` markers.
    pub fn empty(k: usize) -> Self {
        Self {
            counts_q: vec![0; k],
            senti_q: vec![0; k],
            total: 0.0,
            unmatched: 0.0,
            provenance: Vec::new(),
        }
    }

    /// Incrementally aggregates one extracted phrase (Sec. 4.2.2: "the
    /// marker summaries can be incrementally computed").
    #[allow(clippy::too_many_arguments)]
    pub fn add_phrase(
        &mut self,
        phrase: &str,
        rep: &[f32],
        sentiment: f64,
        markers: &MarkerSet,
        mode: AssignMode,
        min_similarity: f32,
        review_id: usize,
    ) {
        let contribution = PhraseContribution::compute(
            phrase,
            rep,
            sentiment,
            markers,
            mode,
            min_similarity,
            review_id,
        );
        self.apply(&contribution, true);
    }

    /// Applies one precomputed phrase contribution. With
    /// `track_provenance` false the phrase text is not recorded — used
    /// by the review-bucket partials, whose provenance would duplicate
    /// the full summaries'.
    pub fn apply(&mut self, contribution: &PhraseContribution<'_>, track_provenance: bool) {
        self.total += 1.0;
        if track_provenance {
            self.provenance.push(Provenance {
                review_id: contribution.review_id,
                phrase: contribution.phrase.to_string(),
            });
        }
        if contribution.unmatched {
            self.unmatched += 1.0;
            return;
        }
        for &(idx, weight_q, senti_q) in &contribution.assignments {
            self.counts_q[idx] += weight_q;
            self.senti_q[idx] += senti_q;
        }
    }

    /// Merges another summary over the same marker set into this one.
    ///
    /// Associative and commutative at the bit level: integer
    /// accumulators add exactly, so merging any partition of a phrase
    /// multiset reproduces the from-scratch build of the union
    /// bit-for-bit (provenance concatenates in merge order).
    pub fn merge(&mut self, other: &MarkerSummary) {
        debug_assert_eq!(
            self.counts_q.len(),
            other.counts_q.len(),
            "merging summaries over different marker sets"
        );
        for (a, b) in self.counts_q.iter_mut().zip(&other.counts_q) {
            *a += b;
        }
        for (a, b) in self.senti_q.iter_mut().zip(&other.senti_q) {
            *a += b;
        }
        self.total += other.total;
        self.unmatched += other.unmatched;
        if !other.provenance.is_empty() {
            self.provenance.extend(other.provenance.iter().cloned());
        }
    }

    /// Merges raw fixed-point accumulators (the storage
    /// [`Self::quantized_counts`] / [`Self::quantized_sentiments`]
    /// expose) into this summary — the flat-layout twin of
    /// [`Self::merge`], used by partial-summary stores that keep many
    /// summaries' accumulators in one contiguous allocation.
    #[inline]
    pub fn merge_quantized(
        &mut self,
        counts_q: &[i64],
        senti_q: &[i64],
        total: f64,
        unmatched: f64,
    ) {
        debug_assert_eq!(self.counts_q.len(), counts_q.len());
        debug_assert_eq!(self.senti_q.len(), senti_q.len());
        for (a, b) in self.counts_q.iter_mut().zip(counts_q) {
            *a += b;
        }
        for (a, b) in self.senti_q.iter_mut().zip(senti_q) {
            *a += b;
        }
        self.total += total;
        self.unmatched += unmatched;
    }

    /// The raw fixed-point mass accumulators, one per marker.
    pub fn quantized_counts(&self) -> &[i64] {
        &self.counts_q
    }

    /// The raw fixed-point `Σ sentiment·weight` accumulators.
    pub fn quantized_sentiments(&self) -> &[i64] {
        &self.senti_q
    }

    /// Number of markers this summary aggregates over.
    pub fn num_markers(&self) -> usize {
        self.counts_q.len()
    }

    /// Phrase mass on marker `i`.
    pub fn count(&self, i: usize) -> f64 {
        dequantize(self.counts_q[i])
    }

    /// Phrase mass per marker.
    pub fn counts(&self) -> Vec<f64> {
        self.counts_q.iter().map(|&q| dequantize(q)).collect()
    }

    /// Mean sentiment of the phrases assigned to marker `i` (0 when the
    /// marker holds no mass).
    pub fn sentiment_mean(&self, i: usize) -> f64 {
        if self.counts_q[i] == 0 {
            0.0
        } else {
            self.senti_q[i] as f64 / self.counts_q[i] as f64
        }
    }

    /// Fraction of matched mass on each marker (zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        let matched = (self.total - self.unmatched).max(1e-12);
        self.counts_q
            .iter()
            .map(|&q| dequantize(q) / matched)
            .collect()
    }

    /// Fraction of phrases that matched no marker.
    pub fn unmatched_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.unmatched / self.total
        }
    }

    /// Total matched mass across markers.
    pub fn matched_mass(&self) -> f64 {
        dequantize(self.counts_q.iter().sum())
    }

    /// Exact equality of the numeric aggregate state (mass, sentiment
    /// accumulators, totals) — the "bit-identical" comparison the
    /// merge/rebuild equivalence tests use. Provenance is excluded: the
    /// bucket-merge path deliberately drops it.
    pub fn same_aggregates(&self, other: &MarkerSummary) -> bool {
        self.counts_q == other.counts_q
            && self.senti_q == other.senti_q
            && self.total.to_bits() == other.total.to_bits()
            && self.unmatched.to_bits() == other.unmatched.to_bits()
    }

    /// Approximate heap bytes of the numeric accumulators (provenance
    /// excluded) — sizing information for the partial-summary store.
    pub fn accumulator_bytes(&self) -> usize {
        (self.counts_q.len() + self.senti_q.len()) * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LinguisticDomain;
    use opine_embed::{PhraseEmbedder, Word2Vec, Word2VecConfig};
    use opine_text::{IdfModel, Vocab, WordId};

    fn fixture() -> (Vocab, PhraseEmbedder, LinguisticDomain) {
        let mut vocab = Vocab::new();
        let sentences = [
            vec!["room", "very", "clean", "fresh"],
            vec!["room", "clean", "fresh"],
            vec!["room", "average", "fine"],
            vec!["room", "dirty", "bad"],
            vec!["room", "very", "dirty", "bad"],
        ];
        let interned: Vec<Vec<WordId>> = (0..40)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let mut idf = IdfModel::new(&vocab);
        for s in &interned {
            idf.add_document(s);
        }
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 8,
                seed: 6,
                ..Default::default()
            },
        );
        let embedder = PhraseEmbedder::new(w2v, idf);
        let mut domain = LinguisticDomain::new();
        for (p, s) in [
            ("very clean", 0.9),
            ("clean", 0.65),
            ("average", 0.0),
            ("dirty", -0.7),
            ("very dirty", -0.9),
        ] {
            domain.observe(p, s, &embedder, &vocab);
        }
        (vocab, embedder, domain)
    }

    #[test]
    fn linear_markers_are_sentiment_ordered() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("room_cleanliness", &domain, SummaryKind::Linear, 4, 1);
        assert_eq!(set.markers.len(), 4);
        // Buckets are in ascending sentiment order by construction.
        for w in set.markers.windows(2) {
            assert!(w[0].sentiment <= w[1].sentiment);
        }
    }

    #[test]
    fn categorical_markers_are_domain_members() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("style", &domain, SummaryKind::Categorical, 3, 1);
        assert_eq!(set.markers.len(), 3);
        for m in &set.markers {
            assert!(domain.get(&m.phrase).is_some());
        }
    }

    #[test]
    fn discover_with_k_larger_than_domain_clamps() {
        let (_, _, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 50, 1);
        assert!(set.markers.len() <= domain.len());
    }

    #[test]
    fn best_assignment_has_unit_mass() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut rep = embedder.rep("clean", &vocab);
        opine_embed::normalize(&mut rep);
        let a = set.assign(&rep, AssignMode::Best);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].1, 1.0);
    }

    #[test]
    fn proportional_assignment_conserves_mass() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut rep = embedder.rep("clean", &vocab);
        opine_embed::normalize(&mut rep);
        let a = set.assign(&rep, AssignMode::Proportional);
        assert_eq!(a.len(), 2);
        let mass: f64 = a.iter().map(|(_, w)| w).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_aggregation_tracks_counts_and_provenance() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut s = MarkerSummary::empty(set.markers.len());
        for (i, phrase) in ["very clean", "clean", "dirty"].iter().enumerate() {
            let mut rep = embedder.rep(phrase, &vocab);
            opine_embed::normalize(&mut rep);
            s.add_phrase(phrase, &rep, 0.5, &set, AssignMode::Best, -1.0, i);
        }
        assert_eq!(s.total, 3.0);
        assert_eq!(s.matched_mass(), 3.0);
        assert_eq!(s.provenance.len(), 3);
        assert_eq!(s.provenance[0].phrase, "very clean");
        let fracs = s.fractions();
        assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dissimilar_phrase_goes_to_unmatched() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut s = MarkerSummary::empty(set.markers.len());
        // A zero rep has cosine 0 with everything; threshold 0.5 rejects it.
        let rep = embedder.rep("qqqq zzzz", &vocab);
        s.add_phrase("qqqq zzzz", &rep, 0.0, &set, AssignMode::Best, 0.5, 0);
        assert_eq!(s.unmatched, 1.0);
        assert_eq!(s.matched_mass(), 0.0);
        assert!((s.unmatched_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_has_zero_fractions() {
        let s = MarkerSummary::empty(4);
        assert_eq!(s.fractions(), vec![0.0; 4]);
        assert_eq!(s.unmatched_fraction(), 0.0);
    }

    /// Builds a summary over the fixture phrases through add_phrase.
    fn build_summary(
        phrases: &[(&str, f64)],
        set: &MarkerSet,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
        id_base: usize,
    ) -> MarkerSummary {
        let mut s = MarkerSummary::empty(set.markers.len());
        for (i, (p, sent)) in phrases.iter().enumerate() {
            let mut rep = embedder.rep(p, vocab);
            opine_embed::normalize(&mut rep);
            s.add_phrase(
                p,
                &rep,
                *sent,
                set,
                AssignMode::Proportional,
                0.0,
                id_base + i,
            );
        }
        s
    }

    #[test]
    fn merge_of_partition_is_bit_identical_to_from_scratch() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let phrases = [
            ("very clean", 0.9),
            ("clean", 0.65),
            ("average", 0.0),
            ("dirty", -0.7),
            ("very dirty", -0.9),
            ("clean", 0.65),
        ];
        let whole = build_summary(&phrases, &set, &embedder, &vocab, 0);
        let part_a = build_summary(&phrases[..2], &set, &embedder, &vocab, 0);
        let part_b = build_summary(&phrases[2..4], &set, &embedder, &vocab, 2);
        let part_c = build_summary(&phrases[4..], &set, &embedder, &vocab, 4);
        // Merge in an order different from the build order: fixed-point
        // accumulation is exactly commutative.
        let mut merged = MarkerSummary::empty(set.markers.len());
        merged.merge(&part_c);
        merged.merge(&part_a);
        merged.merge(&part_b);
        assert!(merged.same_aggregates(&whole));
        assert_eq!(merged.provenance.len(), whole.provenance.len());
        for i in 0..merged.num_markers() {
            assert_eq!(merged.count(i).to_bits(), whole.count(i).to_bits());
            assert_eq!(
                merged.sentiment_mean(i).to_bits(),
                whole.sentiment_mean(i).to_bits()
            );
        }
    }

    #[test]
    fn apply_without_provenance_keeps_aggregates() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let mut rep = embedder.rep("clean", &vocab);
        opine_embed::normalize(&mut rep);
        let c = PhraseContribution::compute("clean", &rep, 0.65, &set, AssignMode::Best, 0.0, 7);
        let mut with = MarkerSummary::empty(set.markers.len());
        with.apply(&c, true);
        let mut without = MarkerSummary::empty(set.markers.len());
        without.apply(&c, false);
        assert!(with.same_aggregates(&without));
        assert_eq!(with.provenance.len(), 1);
        assert!(without.provenance.is_empty());
    }

    #[test]
    fn merge_empty_is_identity() {
        let (vocab, embedder, domain) = fixture();
        let set = MarkerSet::discover("a", &domain, SummaryKind::Linear, 3, 1);
        let built = build_summary(&[("clean", 0.65)], &set, &embedder, &vocab, 0);
        let mut merged = built.clone();
        merged.merge(&MarkerSummary::empty(set.markers.len()));
        assert!(merged.same_aggregates(&built));
    }
}
