//! A small bounded, thread-safe memo used on the query hot path.
//!
//! The interpreter memo and the prepared-phrase memo both need the same
//! thing: a string-keyed map that never grows past a fixed capacity, can
//! be shared across query threads, and reports hit/miss counts so benches
//! can verify cache behaviour instead of guessing.

use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss counters of a [`BoundedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe, string-keyed memo with FIFO eviction.
///
/// FIFO (rather than LRU) means lookups never mutate the map, so the
/// warm path — every concurrent reader of a hot entry, including the
/// serving layer's result cache — takes only a read lock and scales
/// with threads; predicate working sets are small and recur, so
/// recency tracking buys nothing measurable here.
#[derive(Debug)]
pub struct BoundedCache<V> {
    capacity: usize,
    inner: RwLock<Inner<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct Inner<V> {
    map: HashMap<String, V>,
    order: VecDeque<String>,
}

impl<V> Default for Inner<V> {
    fn default() -> Self {
        Inner {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

impl<V: Clone> BoundedCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedCache {
            capacity: capacity.max(1),
            inner: RwLock::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting the outcome. Readers share the lock.
    pub fn get(&self, key: &str) -> Option<V> {
        let hit = self.inner.read().map.get(key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts `key → value`, evicting the oldest entry at capacity.
    /// Racing inserts of the same key keep the latest value.
    pub fn insert(&self, key: &str, value: V) {
        let mut inner = self.inner.write();
        if inner.map.insert(key.to_string(), value).is_none() {
            inner.order.push_back(key.to_string());
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Returns the cached value, computing and caching it on miss.
    ///
    /// `compute` runs outside the lock; concurrent misses may compute
    /// twice but the cache stays consistent.
    pub fn get_or_insert_with(&self, key: &str, compute: impl FnOnce() -> V) -> V {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let value = compute();
        self.insert(key, value.clone());
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `f` to every cached value under the read lock (no
    /// counter updates) — used for aggregate reporting like the degree
    /// columns' memory footprint.
    pub fn for_each_value(&self, mut f: impl FnMut(&V)) {
        for v in self.inner.read().map.values() {
            f(v);
        }
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.order.clear();
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let cache = BoundedCache::new(8);
        assert_eq!(cache.get("a"), None);
        cache.insert("a", 1);
        assert_eq!(cache.get("a"), Some(1));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = BoundedCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        assert_eq!(cache.get("a"), None, "oldest entry must be evicted");
        assert_eq!(cache.get("b"), Some(2));
        assert_eq!(cache.get("c"), Some(3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let cache = BoundedCache::new(2);
        cache.insert("a", 1);
        cache.insert("a", 10);
        cache.insert("b", 2);
        assert_eq!(cache.get("a"), Some(10));
        assert_eq!(cache.get("b"), Some(2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_or_insert_with_computes_once_per_key() {
        let cache = BoundedCache::new(4);
        let mut calls = 0;
        let v = cache.get_or_insert_with("k", || {
            calls += 1;
            7
        });
        assert_eq!(v, 7);
        let v = cache.get_or_insert_with("k", || {
            calls += 1;
            8
        });
        assert_eq!(v, 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = BoundedCache::new(4);
        cache.insert("a", 1);
        let _ = cache.get("a");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = std::sync::Arc::new(BoundedCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 31 + i) % 80);
                        cache.get_or_insert_with(&key, || i);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
