//! Linguistic domains: the phrase sets underlying subjective attributes.

use opine_embed::PhraseEmbedder;
use opine_text::Vocab;
use std::collections::HashMap;

/// One linguistic variation and its corpus statistics.
#[derive(Debug, Clone)]
pub struct Variation {
    /// The opinion phrase, e.g. "very clean".
    pub phrase: String,
    /// Number of extracted occurrences across the corpus.
    pub count: u32,
    /// Average sentiment of the phrase in context.
    pub sentiment: f64,
    /// IDF-weighted phrase embedding (Eq. 1), unit-normalized.
    pub rep: Vec<f32>,
}

/// The linguistic domain of one subjective attribute: "a set of short
/// linguistic phrases that describe a particular aspect of an object"
/// (Sec. 2). Bootstrapped from extraction rather than enumerated.
#[derive(Debug, Clone, Default)]
pub struct LinguisticDomain {
    variations: Vec<Variation>,
    index: HashMap<String, usize>,
}

impl LinguisticDomain {
    /// Empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `phrase` with the given sentiment,
    /// creating the variation on first sight.
    ///
    /// The embedding is computed once on creation (phrases are stable) and
    /// the sentiment is maintained as a running mean.
    pub fn observe(
        &mut self,
        phrase: &str,
        sentiment: f64,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
    ) {
        if let Some(&i) = self.index.get(phrase) {
            let v = &mut self.variations[i];
            v.sentiment = (v.sentiment * v.count as f64 + sentiment) / (v.count as f64 + 1.0);
            v.count += 1;
            return;
        }
        let mut rep = embedder.rep(phrase, vocab);
        opine_embed::normalize(&mut rep);
        self.index.insert(phrase.to_string(), self.variations.len());
        self.variations.push(Variation {
            phrase: phrase.to_string(),
            count: 1,
            sentiment,
            rep,
        });
    }

    /// All variations, in first-seen order.
    pub fn variations(&self) -> &[Variation] {
        &self.variations
    }

    /// Lookup of a variation by exact phrase.
    pub fn get(&self, phrase: &str) -> Option<&Variation> {
        self.index.get(phrase).map(|&i| &self.variations[i])
    }

    /// Number of distinct variations.
    pub fn len(&self) -> usize {
        self.variations.len()
    }

    /// True when no variation has been observed.
    pub fn is_empty(&self) -> bool {
        self.variations.is_empty()
    }

    /// Total occurrences across all variations.
    pub fn total_count(&self) -> u64 {
        self.variations.iter().map(|v| v.count as u64).sum()
    }

    /// The variation most similar to a query representation, with its
    /// cosine similarity.
    pub fn best_match(&self, query_rep: &[f32]) -> Option<(&Variation, f32)> {
        self.variations
            .iter()
            .map(|v| (v, opine_embed::cosine(query_rep, &v.rep)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opine_embed::{Word2Vec, Word2VecConfig};
    use opine_text::{IdfModel, WordId};

    fn embedder() -> (Vocab, PhraseEmbedder) {
        let mut vocab = Vocab::new();
        let sentences = [
            vec!["room", "clean", "nice"],
            vec!["room", "spotless", "nice"],
            vec!["room", "dirty", "bad"],
        ];
        let interned: Vec<Vec<WordId>> = (0..30)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let mut idf = IdfModel::new(&vocab);
        for s in &interned {
            idf.add_document(s);
        }
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 6,
                seed: 2,
                ..Default::default()
            },
        );
        (vocab, PhraseEmbedder::new(w2v, idf))
    }

    #[test]
    fn observe_counts_and_averages() {
        let (vocab, e) = embedder();
        let mut d = LinguisticDomain::new();
        d.observe("clean", 0.8, &e, &vocab);
        d.observe("clean", 0.6, &e, &vocab);
        d.observe("dirty", -0.7, &e, &vocab);
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_count(), 3);
        let clean = d.get("clean").unwrap();
        assert_eq!(clean.count, 2);
        assert!((clean.sentiment - 0.7).abs() < 1e-9);
    }

    #[test]
    fn best_match_finds_similar_variation() {
        let (vocab, e) = embedder();
        let mut d = LinguisticDomain::new();
        d.observe("clean", 0.8, &e, &vocab);
        d.observe("dirty", -0.7, &e, &vocab);
        let mut q = e.rep("spotless", &vocab);
        opine_embed::normalize(&mut q);
        let (best, sim) = d.best_match(&q).unwrap();
        assert_eq!(best.phrase, "clean");
        assert!(sim > -1.0);
    }

    #[test]
    fn empty_domain_has_no_match() {
        let d = LinguisticDomain::new();
        assert!(d.best_match(&[1.0, 0.0]).is_none());
        assert!(d.is_empty());
    }
}
