//! Fagin's Threshold Algorithm for fuzzy top-k (the classic technique the
//! paper cites as [15] for efficient evaluation of fuzzy selections).
//!
//! Given one degree column per predicate and the product t-norm as the
//! combiner, TA scans the per-predicate *sorted orders* in parallel,
//! random-accessing each newly seen entity's remaining degrees, and stops
//! as soon as the k-th best combined score beats the threshold — the
//! product of the degrees at the current scan positions.
//!
//! The hot entry point is [`threshold_topk_dense`]: degrees live in
//! entity-id-indexed `Vec<f64>` columns (O(1) random access, no hashing),
//! seen-tracking is a `Vec<bool>` bitmap, and the current top-k is a
//! fixed-size binary min-heap instead of a re-sorted vector. The original
//! sorted-pair-list API ([`threshold_topk`]) densifies its input and
//! delegates, so callers holding `(entity, degree)` lists keep working.
//!
//! Ranking is a total order: combined degree descending, entity id
//! ascending on ties. Both the TA and the full-scan reference break ties
//! identically, which the property tests assert exactly.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A ranked candidate; the `Ord` impl is the ranking total order
/// (higher degree first, smaller entity id on ties).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    score: f64,
    entity: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater = ranks earlier; defined via `rank_cmp` (where Less =
        // ranks earlier) so there is exactly one ranking rule to edit.
        rank_cmp(&(self.entity, self.score), &(other.entity, other.score)).reverse()
    }
}

/// The ranking comparator shared by every entry point: combined degree
/// descending, entity id ascending on ties.
#[inline]
pub fn rank_cmp(a: &(usize, f64), b: &(usize, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// Top-k entities by product-combined degree over dense columns.
///
/// * `columns[p][e]` — degree of entity `e` under predicate `p`; all
///   columns must have the same length (one slot per entity).
/// * `sorted[p]` — entity ids in descending-degree order for predicate
///   `p` (ties in any order); this is TA's sorted-access sequence.
///
/// Returns `(entity, combined degree)` in ranking order; fewer than `k`
/// results when there are fewer entities.
pub fn threshold_topk_dense<C, S>(columns: &[C], sorted: &[S], k: usize) -> Vec<(usize, f64)>
where
    C: AsRef<[f64]>,
    S: AsRef<[u32]>,
{
    assert_eq!(
        columns.len(),
        sorted.len(),
        "one sorted order per degree column"
    );
    if columns.is_empty() || k == 0 {
        return Vec::new();
    }
    let columns: Vec<&[f64]> = columns.iter().map(AsRef::as_ref).collect();
    let sorted: Vec<&[u32]> = sorted.iter().map(AsRef::as_ref).collect();
    let num_entities = columns[0].len();
    let mut seen = vec![false; num_entities];
    // Min-heap of the current top-k: the root is the candidate that would
    // be evicted first (lowest score, then largest entity id).
    let mut best: BinaryHeap<Reverse<Candidate>> = BinaryHeap::with_capacity(k + 1);
    // Heap evictions are counted locally and flushed to the ambient
    // trace once per call, so the loop body stays atomic-free.
    let mut heap_pops = 0u64;

    let depth_max = sorted.iter().map(|s| s.len()).max().unwrap_or(0);
    for depth in 0..depth_max {
        // Cancellation checkpoint per sorted-access depth: an expired
        // request deadline unwinds out of the scan here instead of
        // walking the remaining entities.
        opine_faults::checkpoint();
        // lint:allow(checkpoint_coverage, reason = "bounded by predicate count; the enclosing depth loop checkpoints once per sorted-access round")
        for order in &sorted {
            let Some(&entity) = order.get(depth) else {
                continue;
            };
            let entity = entity as usize;
            if seen[entity] {
                continue;
            }
            seen[entity] = true;
            let score: f64 = columns.iter().map(|c| c[entity]).product();
            let candidate = Candidate { score, entity };
            if best.len() < k {
                best.push(Reverse(candidate));
            } else if candidate > best.peek().expect("non-empty heap").0 {
                best.pop();
                heap_pops += 1;
                best.push(Reverse(candidate));
            }
        }

        // Threshold: product of the degrees at the current scan depth.
        // Any unseen entity sits deeper in every sorted order, so its
        // combined degree is bounded by this product.
        let threshold: f64 = sorted
            .iter()
            .zip(&columns)
            .map(|(order, column)| order.get(depth).map(|&e| column[e as usize]).unwrap_or(0.0))
            .product();
        // Strict inequality: at equality an unseen entity could still tie
        // the k-th candidate and win the entity-id tiebreak.
        if best.len() >= k && best.peek().expect("non-empty heap").0.score > threshold {
            break;
        }
    }
    if heap_pops != 0 {
        opine_trace::count("ta_topk", "heap_pops", heap_pops);
    }

    let mut out: Vec<(usize, f64)> = best
        .into_iter()
        .map(|Reverse(c)| (c.entity, c.score))
        .collect();
    out.sort_by(rank_cmp);
    out
}

/// [`threshold_topk_dense`] with **restricted sorted access**: only
/// entities for which `is_candidate` returns true are eligible (the
/// executor's objective-prefilter bitmap, mapped to entity ids).
///
/// Each list keeps its own cursor and skips non-candidates, so the
/// stopping threshold uses the *corrected bound*: the product of the
/// degrees of the last **candidate** accessed per list. Any unseen
/// candidate sits deeper than every cursor, so its combined degree is
/// bounded by that product — the plain at-depth threshold would be
/// needlessly loose (or, with lockstep depth, scan non-candidates
/// forever on selective filters).
///
/// Returns `(entity, combined degree)` in ranking order; only candidate
/// entities appear.
pub fn threshold_topk_dense_filtered<C, S, F>(
    columns: &[C],
    sorted: &[S],
    k: usize,
    is_candidate: F,
) -> Vec<(usize, f64)>
where
    C: AsRef<[f64]>,
    S: AsRef<[u32]>,
    F: Fn(usize) -> bool,
{
    assert_eq!(
        columns.len(),
        sorted.len(),
        "one sorted order per degree column"
    );
    if columns.is_empty() || k == 0 {
        return Vec::new();
    }
    let columns: Vec<&[f64]> = columns.iter().map(AsRef::as_ref).collect();
    let sorted: Vec<&[u32]> = sorted.iter().map(AsRef::as_ref).collect();
    let num_entities = columns[0].len();
    ta_restricted(
        &sorted,
        num_entities,
        |p, e| columns[p][e],
        |e| columns.iter().map(|c| c[e]).product(),
        is_candidate,
        k,
    )
}

/// TA over **upper-bound** degree columns with exact rescoring — the
/// quantized-column path. `sorted[p]` must be ordered by `upper(p, ·)`
/// descending; `upper(p, e)` must over-approximate entity `e`'s true
/// degree under predicate `p` (ceil quantization guarantees this);
/// `exact` returns the exact combined degree and is called once per
/// entity brought in by sorted access (the top-k *frontier* — rescoring
/// cost is proportional to how deep TA scans, not to the corpus).
///
/// The result is the exact top-k: the heap ranks by exact scores, while
/// the stopping threshold is the product of upper bounds at the
/// cursors, which dominates any unseen entity's exact combined degree.
pub fn threshold_topk_rescored<S, U, E, F>(
    sorted: &[S],
    num_entities: usize,
    upper: U,
    exact: E,
    is_candidate: F,
    k: usize,
) -> Vec<(usize, f64)>
where
    S: AsRef<[u32]>,
    U: Fn(usize, usize) -> f64,
    E: FnMut(usize) -> f64,
    F: Fn(usize) -> bool,
{
    if sorted.is_empty() || k == 0 {
        return Vec::new();
    }
    let sorted: Vec<&[u32]> = sorted.iter().map(AsRef::as_ref).collect();
    ta_restricted(&sorted, num_entities, upper, exact, is_candidate, k)
}

/// The shared TA engine behind the filtered and rescored entry points.
///
/// Invariants required of the inputs:
/// * every sorted order contains **all** entity ids, descending by
///   `upper(p, ·)` — so when one list runs out of candidates, every
///   candidate has been seen and the scan can stop;
/// * `upper(p, e)` ≥ entity `e`'s contribution to `exact(e)` under
///   predicate `p`, with equality in the unquantized case.
fn ta_restricted<U, E, F>(
    sorted: &[&[u32]],
    num_entities: usize,
    upper: U,
    mut exact: E,
    is_candidate: F,
    k: usize,
) -> Vec<(usize, f64)>
where
    U: Fn(usize, usize) -> f64,
    E: FnMut(usize) -> f64,
    F: Fn(usize) -> bool,
{
    let mut seen = vec![false; num_entities];
    let mut best: BinaryHeap<Reverse<Candidate>> = BinaryHeap::with_capacity(k + 1);
    // See `threshold_topk_dense`: flushed to the trace once per call.
    let mut heap_pops = 0u64;
    let mut cursors = vec![0usize; sorted.len()];
    // Degree upper bound of the last candidate accessed per list.
    let mut bounds = vec![0.0f64; sorted.len()];

    'scan: loop {
        // Cancellation checkpoint per sorted-access round (see
        // `threshold_topk_dense`).
        opine_faults::checkpoint();
        for (p, order) in sorted.iter().enumerate() {
            let mut cur = cursors[p];
            while let Some(&e) = order.get(cur) {
                if is_candidate(e as usize) {
                    break;
                }
                // The non-candidate skip can walk a long sparse prefix;
                // keep the deadline honest while it does.
                opine_faults::checkpoint();
                cur += 1;
            }
            let Some(&e) = order.get(cur) else {
                // This list is out of candidates; since it covers every
                // entity, all candidates have been seen.
                break 'scan;
            };
            cursors[p] = cur + 1;
            let entity = e as usize;
            bounds[p] = upper(p, entity);
            if seen[entity] {
                continue;
            }
            seen[entity] = true;
            let candidate = Candidate {
                score: exact(entity),
                entity,
            };
            if best.len() < k {
                best.push(Reverse(candidate));
            } else if candidate > best.peek().expect("non-empty heap").0 {
                best.pop();
                heap_pops += 1;
                best.push(Reverse(candidate));
            }
        }

        let threshold: f64 = bounds.iter().product();
        // Strict inequality: at equality an unseen candidate could still
        // tie the k-th exact score and win the entity-id tiebreak.
        if best.len() >= k && best.peek().expect("non-empty heap").0.score > threshold {
            break;
        }
    }
    if heap_pops != 0 {
        opine_trace::count("ta_topk", "heap_pops", heap_pops);
    }

    let mut out: Vec<(usize, f64)> = best
        .into_iter()
        .map(|Reverse(c)| (c.entity, c.score))
        .collect();
    out.sort_by(rank_cmp);
    out
}

/// Top-k entities by product-combined degree across sorted
/// `(entity, degree)` lists (the pre-densification API).
///
/// Every list must cover the same entity set and be sorted by degree
/// descending. Internally the lists are densified once — entity-indexed
/// columns plus sorted-order vectors — and ranked by
/// [`threshold_topk_dense`]; no per-depth hashing, re-sorting, or
/// `HashSet` tracking happens anymore.
pub fn threshold_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() || k == 0 {
        return Vec::new();
    }
    let (columns, sorted) = densify(lists);
    threshold_topk_dense(&columns, &sorted, k)
}

/// Converts sorted `(entity, degree)` lists into dense degree columns and
/// sorted-order vectors (entity ids must be dense, as produced by
/// [`crate::OpineDb`]).
pub fn densify(lists: &[Vec<(usize, f64)>]) -> (Vec<Vec<f64>>, Vec<Vec<u32>>) {
    let num_entities = lists
        .iter()
        .flat_map(|l| l.iter().map(|&(e, _)| e + 1))
        .max()
        .unwrap_or(0);
    let mut columns = Vec::with_capacity(lists.len());
    let mut sorted = Vec::with_capacity(lists.len());
    for list in lists {
        opine_faults::checkpoint();
        let mut column = vec![0.0f64; num_entities];
        let mut order = Vec::with_capacity(list.len());
        for &(entity, degree) in list {
            column[entity] = degree;
            order.push(entity as u32);
        }
        columns.push(column);
        sorted.push(order);
    }
    (columns, sorted)
}

/// Reference implementation over dense columns: combine every entity,
/// sort, truncate.
pub fn full_scan_topk_dense<C: AsRef<[f64]>>(columns: &[C], k: usize) -> Vec<(usize, f64)> {
    if columns.is_empty() {
        return Vec::new();
    }
    let columns: Vec<&[f64]> = columns.iter().map(AsRef::as_ref).collect();
    let num_entities = columns[0].len();
    let mut combined: Vec<(usize, f64)> = (0..num_entities)
        .map(|e| (e, columns.iter().map(|c| c[e]).product()))
        .collect();
    combined.sort_by(rank_cmp);
    combined.truncate(k);
    combined
}

/// Reference implementation: full scan over all entities (list API).
///
/// Only entities that appear in at least one input list are candidates
/// — an id gap in a sparse id space is not an entity, so (unlike the
/// dense-column API, where every column slot is an entity) no
/// zero-score results are fabricated for ids absent from every list.
/// This matches [`threshold_topk`], which can only surface entities via
/// sorted access.
pub fn full_scan_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() {
        return Vec::new();
    }
    let (columns, sorted) = densify(lists);
    let mut present = vec![false; columns[0].len()];
    for order in &sorted {
        for &entity in order {
            present[entity as usize] = true;
        }
    }
    let mut combined: Vec<(usize, f64)> = present
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p)
        .map(|(e, _)| (e, columns.iter().map(|c| c[e]).product()))
        .collect();
    combined.sort_by(rank_cmp);
    combined.truncate(k);
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_list(degrees: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut l = degrees.to_vec();
        l.sort_by(|a, b| b.1.total_cmp(&a.1));
        l
    }

    #[test]
    fn matches_full_scan_on_small_case() {
        let l1 = sorted_list(&[(0, 0.9), (1, 0.8), (2, 0.1)]);
        let l2 = sorted_list(&[(0, 0.2), (1, 0.9), (2, 0.9)]);
        let ta = threshold_topk(&[l1.clone(), l2.clone()], 2);
        let fs = full_scan_topk(&[l1, l2], 2);
        assert_eq!(ta, fs);
        assert_eq!(ta[0].0, 1); // 0.8 * 0.9 = 0.72 is the best product
    }

    #[test]
    fn matches_full_scan_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = 50;
            let lists: Vec<Vec<(usize, f64)>> = (0..3)
                .map(|_| sorted_list(&(0..n).map(|e| (e, rng.gen::<f64>())).collect::<Vec<_>>()))
                .collect();
            let ta = threshold_topk(&lists, 5);
            let fs = full_scan_topk(&lists, 5);
            assert_eq!(ta, fs, "TA must equal the reference exactly");
        }
    }

    #[test]
    fn matches_full_scan_with_heavy_ties() {
        // Quantized degrees force score ties; ranking must still agree
        // exactly because both sides tiebreak on entity id.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = 30;
            let lists: Vec<Vec<(usize, f64)>> = (0..2)
                .map(|_| {
                    sorted_list(
                        &(0..n)
                            .map(|e| (e, f64::from(rng.gen_range(0..4u32)) / 4.0))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            for k in [1, 3, 7, 30] {
                let ta = threshold_topk(&lists, k);
                let fs = full_scan_topk(&lists, k);
                assert_eq!(ta, fs, "k={k}");
            }
        }
    }

    #[test]
    fn dense_entry_point_equals_list_entry_point() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200;
        let lists: Vec<Vec<(usize, f64)>> = (0..3)
            .map(|_| sorted_list(&(0..n).map(|e| (e, rng.gen::<f64>())).collect::<Vec<_>>()))
            .collect();
        let (columns, sorted) = densify(&lists);
        assert_eq!(
            threshold_topk(&lists, 10),
            threshold_topk_dense(&columns, &sorted, 10),
        );
        assert_eq!(
            full_scan_topk(&lists, 10),
            full_scan_topk_dense(&columns, 10),
        );
    }

    #[test]
    fn early_termination_happens() {
        // One dominant entity: TA should stop after ~1 depth.
        let l1 = sorted_list(
            &(0..1000)
                .map(|e| (e, if e == 0 { 1.0 } else { 0.001 }))
                .collect::<Vec<_>>(),
        );
        let l2 = l1.clone();
        let top = threshold_topk(&[l1, l2], 1);
        assert_eq!(top[0].0, 0);
        assert!((top[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(threshold_topk(&[], 3).is_empty());
        let l = sorted_list(&[(0, 0.5)]);
        assert!(threshold_topk(&[l], 0).is_empty());
        assert!(threshold_topk_dense::<Vec<f64>, Vec<u32>>(&[], &[], 3).is_empty());
    }

    #[test]
    fn k_larger_than_entity_count() {
        let l = sorted_list(&[(0, 0.5), (1, 0.4)]);
        let top = threshold_topk(&[l], 10);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn sparse_entity_ids_are_not_fabricated() {
        // Entity ids 0..5 absent from every list: neither entry point may
        // invent them as zero-score results.
        let lists = vec![sorted_list(&[(5, 0.9), (7, 0.2)])];
        let fs = full_scan_topk(&lists, 4);
        let ta = threshold_topk(&lists, 4);
        assert_eq!(fs, vec![(5, 0.9), (7, 0.2)]);
        assert_eq!(ta, fs);
    }

    /// Filtered full-scan reference: combine candidate entities only.
    fn full_scan_filtered<C: AsRef<[f64]>>(
        columns: &[C],
        k: usize,
        is_candidate: impl Fn(usize) -> bool,
    ) -> Vec<(usize, f64)> {
        let columns: Vec<&[f64]> = columns.iter().map(AsRef::as_ref).collect();
        let mut combined: Vec<(usize, f64)> = (0..columns[0].len())
            .filter(|&e| is_candidate(e))
            .map(|e| (e, columns.iter().map(|c| c[e]).product()))
            .collect();
        combined.sort_by(rank_cmp);
        combined.truncate(k);
        combined
    }

    #[test]
    fn filtered_ta_matches_filtered_full_scan() {
        let mut rng = StdRng::seed_from_u64(123);
        for round in 0..30 {
            let n = 80;
            let lists: Vec<Vec<(usize, f64)>> = (0..3)
                .map(|_| {
                    sorted_list(
                        &(0..n)
                            // Quantize every other round to force ties.
                            .map(|e| {
                                let d = if round % 2 == 0 {
                                    rng.gen::<f64>()
                                } else {
                                    f64::from(rng.gen_range(0..5u32)) / 5.0
                                };
                                (e, d)
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let (columns, sorted) = densify(&lists);
            // Selective, mid, and non-selective candidate sets.
            let masks: Vec<Box<dyn Fn(usize) -> bool>> = vec![
                Box::new(|e| e % 13 == 0),
                Box::new(|e| e % 2 == 0),
                Box::new(|_| true),
                Box::new(|_| false),
            ];
            for mask in &masks {
                for k in [1, 4, 200] {
                    let ta = threshold_topk_dense_filtered(&columns, &sorted, k, mask);
                    let fs = full_scan_filtered(&columns, k, mask);
                    assert_eq!(ta, fs, "round {round} k={k}");
                }
            }
        }
    }

    #[test]
    fn filtered_ta_with_all_candidates_equals_unfiltered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 120;
        let lists: Vec<Vec<(usize, f64)>> = (0..2)
            .map(|_| sorted_list(&(0..n).map(|e| (e, rng.gen::<f64>())).collect::<Vec<_>>()))
            .collect();
        let (columns, sorted) = densify(&lists);
        assert_eq!(
            threshold_topk_dense_filtered(&columns, &sorted, 9, |_| true),
            threshold_topk_dense(&columns, &sorted, 9),
        );
    }

    #[test]
    fn filtered_ta_early_terminates_on_selective_filters() {
        // One dominant candidate among many non-candidates: the cursor
        // skipping must still find it and stop (this is a liveness
        // check — an at-depth threshold would walk all 10k rows).
        let n = 10_000;
        let lists: Vec<Vec<(usize, f64)>> = (0..2)
            .map(|_| {
                sorted_list(
                    &(0..n)
                        .map(|e| (e, if e == 4242 { 0.95 } else { 0.5 }))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let (columns, sorted) = densify(&lists);
        let top = threshold_topk_dense_filtered(&columns, &sorted, 1, |e| e == 4242);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, 4242);
        assert!((top[0].1 - 0.95 * 0.95).abs() < 1e-12);
    }

    /// Ceil quantization to `u16`, the upper-bound transform the
    /// rescored TA is built for.
    fn quantize(d: f64) -> f64 {
        (d * 65535.0).ceil() / 65535.0
    }

    #[test]
    fn rescored_ta_over_quantized_uppers_is_exact() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let n = 60;
            let exact_cols: Vec<Vec<f64>> = (0..3)
                .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
                .collect();
            // Sorted orders come from the *quantized* views, as they
            // would from a cached quantized column.
            let sorted: Vec<Vec<u32>> = exact_cols
                .iter()
                .map(|col| {
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    order.sort_by(|&a, &b| {
                        quantize(col[b as usize])
                            .total_cmp(&quantize(col[a as usize]))
                            .then_with(|| a.cmp(&b))
                    });
                    order
                })
                .collect();
            let mut rescores = 0usize;
            let ta = threshold_topk_rescored(
                &sorted,
                n,
                |p, e| quantize(exact_cols[p][e]),
                |e| {
                    rescores += 1;
                    exact_cols.iter().map(|c| c[e]).product()
                },
                |_| true,
                5,
            );
            let fs = full_scan_topk_dense(&exact_cols, 5);
            assert_eq!(ta, fs, "rescored TA must return the exact top-k");
            assert!(rescores <= n, "each entity rescored at most once");
        }
    }

    #[test]
    fn all_zero_degrees_rank_by_entity_id() {
        let lists = vec![sorted_list(&[(2, 0.0), (0, 0.0), (1, 0.0)])];
        let ta = threshold_topk(&lists, 2);
        let fs = full_scan_topk(&lists, 2);
        assert_eq!(ta, fs);
        assert_eq!(ta, vec![(0, 0.0), (1, 0.0)]);
    }
}
