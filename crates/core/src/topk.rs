//! Fagin's Threshold Algorithm for fuzzy top-k (the classic technique the
//! paper cites as [15] for efficient evaluation of fuzzy selections).
//!
//! Given one sorted `(entity, degree)` list per predicate and the product
//! t-norm as the combiner, TA scans the lists in parallel, random-accessing
//! each newly seen entity's remaining degrees, and stops as soon as the
//! k-th best combined score is at least the threshold — the product of the
//! current scan positions' degrees.

use std::collections::{HashMap, HashSet};

/// Top-k entities by product-combined degree across `lists`.
///
/// Every list must cover the same entity set and be sorted by degree
/// descending. Returns `(entity, combined degree)` sorted descending;
/// fewer than `k` results when the entity set is smaller.
pub fn threshold_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() || k == 0 {
        return Vec::new();
    }
    // Random-access maps per list.
    let access: Vec<HashMap<usize, f64>> = lists
        .iter()
        .map(|l| l.iter().copied().collect())
        .collect();
    let depth_max = lists.iter().map(Vec::len).max().unwrap_or(0);

    let mut seen: HashSet<usize> = HashSet::new();
    let mut best: Vec<(usize, f64)> = Vec::new();

    for depth in 0..depth_max {
        // Sorted access: one entry per list at this depth.
        for list in lists {
            let Some(&(entity, _)) = list.get(depth) else {
                continue;
            };
            if !seen.insert(entity) {
                continue;
            }
            let combined: f64 = access
                .iter()
                .map(|m| m.get(&entity).copied().unwrap_or(0.0))
                .product();
            best.push((entity, combined));
        }
        best.sort_by(|a, b| b.1.total_cmp(&a.1));
        best.truncate(k.max(1));

        // Threshold: product of degrees at the current scan depth.
        let threshold: f64 = lists
            .iter()
            .map(|l| l.get(depth).map(|&(_, d)| d).unwrap_or(0.0))
            .product();
        if best.len() >= k && best[k - 1].1 >= threshold {
            break;
        }
    }
    best
}

/// Reference implementation: full scan over all entities.
pub fn full_scan_topk(lists: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    if lists.is_empty() {
        return Vec::new();
    }
    let access: Vec<HashMap<usize, f64>> = lists
        .iter()
        .map(|l| l.iter().copied().collect())
        .collect();
    let mut combined: Vec<(usize, f64)> = lists[0]
        .iter()
        .map(|&(e, _)| {
            (
                e,
                access
                    .iter()
                    .map(|m| m.get(&e).copied().unwrap_or(0.0))
                    .product(),
            )
        })
        .collect();
    combined.sort_by(|a, b| b.1.total_cmp(&a.1));
    combined.truncate(k);
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_list(degrees: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut l = degrees.to_vec();
        l.sort_by(|a, b| b.1.total_cmp(&a.1));
        l
    }

    #[test]
    fn matches_full_scan_on_small_case() {
        let l1 = sorted_list(&[(0, 0.9), (1, 0.8), (2, 0.1)]);
        let l2 = sorted_list(&[(0, 0.2), (1, 0.9), (2, 0.9)]);
        let ta = threshold_topk(&[l1.clone(), l2.clone()], 2);
        let fs = full_scan_topk(&[l1, l2], 2);
        assert_eq!(ta, fs);
        assert_eq!(ta[0].0, 1); // 0.8 * 0.9 = 0.72 is the best product
    }

    #[test]
    fn matches_full_scan_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = 50;
            let lists: Vec<Vec<(usize, f64)>> = (0..3)
                .map(|_| {
                    sorted_list(
                        &(0..n)
                            .map(|e| (e, rng.gen::<f64>()))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let ta = threshold_topk(&lists, 5);
            let fs = full_scan_topk(&lists, 5);
            let ta_scores: Vec<f64> = ta.iter().map(|&(_, s)| s).collect();
            let fs_scores: Vec<f64> = fs.iter().map(|&(_, s)| s).collect();
            for (a, b) in ta_scores.iter().zip(&fs_scores) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn early_termination_happens() {
        // One dominant entity: TA should stop after ~1 depth.
        let l1 = sorted_list(&(0..1000).map(|e| (e, if e == 0 { 1.0 } else { 0.001 })).collect::<Vec<_>>());
        let l2 = l1.clone();
        let top = threshold_topk(&[l1, l2], 1);
        assert_eq!(top[0].0, 0);
        assert!((top[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(threshold_topk(&[], 3).is_empty());
        let l = sorted_list(&[(0, 0.5)]);
        assert!(threshold_topk(&[l], 0).is_empty());
    }

    #[test]
    fn k_larger_than_entity_count() {
        let l = sorted_list(&[(0, 0.5), (1, 0.4)]);
        let top = threshold_topk(&[l], 10);
        assert_eq!(top.len(), 2);
    }
}
