//! **OpineDB core** — the paper's primary contribution.
//!
//! A subjective database models attributes like `room_cleanliness` as
//! aggregates over phrases mined from reviews:
//!
//! * [`domain`] — linguistic domains: the set of phrases describing an
//!   attribute, with counts, sentiment, and embeddings;
//! * [`summary`] — markers and marker summaries: designer-chosen landmarks
//!   and the per-entity histograms over them, with incremental updates and
//!   provenance (Sec. 2, Sec. 4.2.2);
//! * [`membership`] — learned membership functions translating a marker
//!   summary + query phrase into a degree of truth (Sec. 3.3);
//! * [`interpret`] — the three-stage predicate interpreter: word2vec →
//!   co-occurrence → text-retrieval fallback (Sec. 3.2, Fig. 5);
//! * [`builder`] — the construction pipeline from a raw review corpus
//!   (Sec. 4): extraction, attribute classification, marker discovery,
//!   summary aggregation;
//! * [`db`] — [`OpineDb`]: the end-to-end engine executing Subjective SQL
//!   with fuzzy combination (Sec. 3.1);
//! * [`ingest`] — live ingest: the copy-on-write delta segment behind
//!   snapshot-isolated `INSERT` at serve time;
//! * [`topk`] — Fagin's Threshold Algorithm for fuzzy top-k (an extension
//!   the paper cites as the standard technique \[15\]).

pub mod builder;
pub mod cache;
pub mod db;
/// Deadlines, cooperative cancellation, and fault-injection failpoints
/// (re-exported from the workspace's bottom-layer `opine-faults` crate
/// so `ir`/`store`/`server` share the same ambient tokens).
pub use opine_faults as faults;
/// Per-query stage spans, counters, and notes (re-exported from the
/// workspace's `opine-trace` crate so every layer enriches the same
/// thread-ambient context).
pub use opine_trace as trace;
pub mod domain;
pub mod ingest;
pub mod interpret;
pub mod membership;
pub mod par;
pub mod snapshot;
pub mod summary;
pub mod topk;

pub use builder::{build, BuildConfig, ExtractionMode};
pub use cache::{BoundedCache, CacheStats};
pub use db::{
    CacheReport, DegreeColumn, MetricValue, OpineDb, OpineError, PreparedPhrase, QualifiedScorer,
    QueryOutput, QueryRef,
};
pub use domain::LinguisticDomain;
pub use ingest::IngestReceipt;
pub use interpret::{Interpretation, Interpreter, InterpreterConfig};
pub use membership::MembershipModel;
pub use snapshot::{Snapshot, SnapshotCell};
pub use summary::{AssignMode, Marker, MarkerSet, MarkerSummary, SummaryKind};
