//! Learned membership functions (Sec. 3.3 of the paper).
//!
//! A membership function maps a marker summary plus a query phrase to a
//! degree of truth in `[0, 1]`. OpineDB trains a logistic regression on
//! labelled `(summary, phrase, y)` tuples and uses its probability output
//! directly as the degree of truth.
//!
//! Two feature families implement the Table 7 comparison:
//! [`marker_features`] uses only the precomputed per-marker aggregates
//! (fast — the paper's 3.3–6.6× speedup), while [`scan_features`] recomputes
//! statistics from every extracted phrase at query time (the no-marker
//! baseline).

use crate::summary::{MarkerSet, MarkerSummary};
use opine_embed::cosine;
use opine_ml::{LogRegConfig, LogisticRegression};

/// Number of features both families produce.
pub const FEATURE_DIM: usize = 9;

/// Features computed from the marker summary only.
pub fn marker_features(
    summary: &MarkerSummary,
    markers: &MarkerSet,
    query_rep: &[f32],
    query_sentiment: f64,
) -> Vec<f64> {
    let fracs = summary.fractions();
    let mut support = 0.0;
    let mut avg_sent = 0.0;
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, m) in markers.markers.iter().enumerate() {
        let sim = cosine(query_rep, &m.rep);
        support += fracs.get(i).copied().unwrap_or(0.0) * sim.max(0.0) as f64;
        avg_sent += fracs.get(i).copied().unwrap_or(0.0) * summary.sentiment_mean(i);
        if sim > best.1 {
            best = (i, sim);
        }
    }
    let (best_idx, best_sim) = best;
    let (best_frac, best_sent) = if markers.markers.is_empty() {
        (0.0, 0.0)
    } else {
        (
            fracs.get(best_idx).copied().unwrap_or(0.0),
            summary.sentiment_mean(best_idx),
        )
    };
    vec![
        support,
        avg_sent,
        best_frac,
        best_sim.max(-1.0) as f64,
        best_sent,
        (summary.total + 1.0).ln(),
        summary.unmatched_fraction(),
        query_sentiment,
        avg_sent * query_sentiment,
    ]
}

/// Features recomputed from all raw extracted phrases (no markers).
///
/// `phrases` is the entity's full extraction list for the attribute as
/// `(rep, sentiment)` pairs; this is deliberately O(#phrases) per query.
pub fn scan_features(
    phrases: &[(&[f32], f64)],
    query_rep: &[f32],
    query_sentiment: f64,
) -> Vec<f64> {
    if phrases.is_empty() {
        return vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, query_sentiment, 0.0];
    }
    let n = phrases.len() as f64;
    let mut support = 0.0;
    let mut similar = 0.0;
    let mut similar_sent = 0.0;
    let mut avg_sent = 0.0;
    let mut best_sim = f32::NEG_INFINITY;
    for (rep, sent) in phrases {
        let sim = cosine(query_rep, rep);
        support += sim.max(0.0) as f64;
        avg_sent += sent;
        if sim > 0.5 {
            similar += 1.0;
            similar_sent += sent;
        }
        if sim > best_sim {
            best_sim = sim;
        }
    }
    support /= n;
    avg_sent /= n;
    let similar_frac = similar / n;
    let similar_sent = if similar > 0.0 {
        similar_sent / similar
    } else {
        0.0
    };
    vec![
        support,
        avg_sent,
        similar_frac,
        best_sim as f64,
        similar_sent,
        (n + 1.0).ln(),
        0.0,
        query_sentiment,
        avg_sent * query_sentiment,
    ]
}

/// A trained membership function.
#[derive(Debug, Clone)]
pub struct MembershipModel {
    model: LogisticRegression,
}

impl MembershipModel {
    /// Trains from `(features, label)` tuples produced by either feature
    /// family.
    pub fn train(tuples: &[(Vec<f64>, bool)], config: &LogRegConfig) -> Self {
        Self {
            model: LogisticRegression::train(tuples, config),
        }
    }

    /// The degree of truth for a feature vector.
    pub fn degree(&self, features: &[f64]) -> f64 {
        self.model.predict_proba(features)
    }

    /// Classification accuracy at the 0.5 threshold (the LR-accuracy rows
    /// of Table 7).
    pub fn accuracy(&self, tuples: &[(Vec<f64>, bool)]) -> f64 {
        self.model.accuracy(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::LinguisticDomain;
    use crate::summary::{AssignMode, SummaryKind};
    use opine_embed::{PhraseEmbedder, Word2Vec, Word2VecConfig};
    use opine_text::{IdfModel, Vocab, WordId};

    fn fixture() -> (Vocab, PhraseEmbedder, MarkerSet) {
        let mut vocab = Vocab::new();
        let sentences = [
            vec!["room", "clean", "fresh"],
            vec!["room", "spotless", "fresh"],
            vec!["room", "dirty", "bad"],
            vec!["room", "filthy", "bad"],
        ];
        let interned: Vec<Vec<WordId>> = (0..40)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let mut idf = IdfModel::new(&vocab);
        for s in &interned {
            idf.add_document(s);
        }
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 8,
                seed: 12,
                ..Default::default()
            },
        );
        let embedder = PhraseEmbedder::new(w2v, idf);
        let mut domain = LinguisticDomain::new();
        for (p, s) in [
            ("clean", 0.7),
            ("spotless", 0.9),
            ("dirty", -0.7),
            ("filthy", -0.9),
        ] {
            domain.observe(p, s, &embedder, &vocab);
        }
        let set = MarkerSet::discover("room_cleanliness", &domain, SummaryKind::Linear, 4, 1);
        (vocab, embedder, set)
    }

    fn summary_from(
        phrases: &[(&str, f64)],
        set: &MarkerSet,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
    ) -> MarkerSummary {
        let mut s = MarkerSummary::empty(set.markers.len());
        for (i, (p, sent)) in phrases.iter().enumerate() {
            let mut rep = embedder.rep(p, vocab);
            opine_embed::normalize(&mut rep);
            s.add_phrase(p, &rep, *sent, set, AssignMode::Best, -1.0, i);
        }
        s
    }

    #[test]
    fn feature_vectors_have_fixed_dim() {
        let (vocab, embedder, set) = fixture();
        let s = summary_from(&[("clean", 0.7)], &set, &embedder, &vocab);
        let q = embedder.rep("clean", &vocab);
        assert_eq!(marker_features(&s, &set, &q, 0.7).len(), FEATURE_DIM);
        assert_eq!(scan_features(&[], &q, 0.7).len(), FEATURE_DIM);
    }

    #[test]
    fn trained_membership_separates_clean_from_dirty_summaries() {
        let (vocab, embedder, set) = fixture();
        let clean = summary_from(
            &[("clean", 0.7), ("spotless", 0.9), ("clean", 0.7)],
            &set,
            &embedder,
            &vocab,
        );
        let dirty = summary_from(
            &[("dirty", -0.7), ("filthy", -0.9), ("dirty", -0.7)],
            &set,
            &embedder,
            &vocab,
        );
        let q = embedder.rep("clean", &vocab);
        let tuples = vec![
            (marker_features(&clean, &set, &q, 0.7), true),
            (marker_features(&dirty, &set, &q, 0.7), false),
        ];
        // Duplicate for a trainable set.
        let train: Vec<_> = (0..30).flat_map(|_| tuples.clone()).collect();
        let m = MembershipModel::train(&train, &LogRegConfig::default());
        let d_clean = m.degree(&marker_features(&clean, &set, &q, 0.7));
        let d_dirty = m.degree(&marker_features(&dirty, &set, &q, 0.7));
        assert!(
            d_clean > 0.6 && d_dirty < 0.4,
            "clean={d_clean} dirty={d_dirty}"
        );
    }

    #[test]
    fn scan_features_reflect_similarity() {
        let (vocab, embedder, _) = fixture();
        let clean_rep = {
            let mut r = embedder.rep("clean", &vocab);
            opine_embed::normalize(&mut r);
            r
        };
        let q = embedder.rep("clean", &vocab);
        let feats = scan_features(&[(&clean_rep, 0.7)], &q, 0.7);
        assert!(feats[0] > 0.5, "support should be high: {}", feats[0]);
        assert!(feats[3] > 0.9, "best sim should be ~1: {}", feats[3]);
    }

    #[test]
    fn empty_phrase_list_is_neutral() {
        let (vocab, embedder, _) = fixture();
        let q = embedder.rep("clean", &vocab);
        let feats = scan_features(&[], &q, 0.7);
        assert_eq!(feats[0], 0.0);
        assert_eq!(feats[5], 0.0);
    }
}
