//! The subjective query interpreter (Sec. 3.2, Fig. 5 of the paper).
//!
//! Three stages, each falling back to the next when confidence is low:
//!
//! 1. **word2vec** — find the linguistic variation most similar to the
//!    query predicate; interpret onto that variation's attribute when the
//!    similarity reaches `theta1`;
//! 2. **co-occurrence** — retrieve the top-k positive reviews containing
//!    the predicate (ranked by `BM25(d, q) · senti(d)`, Eq. 3) and pick the
//!    attributes whose extractions co-occur most, scored by
//!    `freq_k(A) · idf(A)`;
//! 3. **text retrieval** — give up on the schema and fall back to BM25
//!    over concatenated entity documents with a sigmoid link.

use crate::cache::{BoundedCache, CacheStats};
use crate::domain::LinguisticDomain;
use crate::summary::MarkerSet;
use opine_embed::PhraseEmbedder;
use opine_ir::{Bm25Params, InvertedIndex};
use opine_text::Vocab;

/// Interpreter thresholds and fan-outs.
#[derive(Debug, Clone)]
pub struct InterpreterConfig {
    /// Minimum w2v similarity for a direct interpretation (paper: 0.5).
    pub theta1: f32,
    /// Minimum co-occurrence score `freq·idf` for the second stage.
    pub theta2: f64,
    /// Top-k reviews examined by the co-occurrence method.
    pub top_k_reviews: usize,
    /// Number of attributes a co-occurrence interpretation may name
    /// (paper's example uses 2: service ⊕ style).
    pub top_n_attributes: usize,
    /// Fraction of relevant top-k reviews that must mention *all* chosen
    /// attributes for the interpretation to become conjunctive (⊗).
    pub conjunction_threshold: f64,
    /// Capacity of the predicate → interpretation memo. The three-stage
    /// cascade (word2vec scan → BM25 retrieval + co-occurrence scoring →
    /// text fallback) is by far the most expensive per-predicate step, so
    /// distinct predicates are interpreted once and replayed from here.
    pub cache_capacity: usize,
}

impl Default for InterpreterConfig {
    fn default() -> Self {
        Self {
            // Sec. 3.2 quotes 0.5 as the stage-1 threshold, but the Table 8
            // combined method "with the fallback similarity threshold set
            // to 0.8" is what the evaluation ships; 0.8 also routes concept
            // predicates ("romantic getaway") to the co-occurrence stage.
            theta1: 0.8,
            theta2: 1.0,
            top_k_reviews: 40,
            top_n_attributes: 2,
            conjunction_threshold: 0.6,
            cache_capacity: 1024,
        }
    }
}

/// The result of interpreting one query predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Interpretation {
    /// Stage 1: the predicate maps to a single attribute; the degree of
    /// truth is computed from that attribute's summary against the
    /// original query phrase.
    Direct {
        /// Attribute index.
        attribute: usize,
        /// Similarity to the best-matching linguistic variation.
        similarity: f32,
    },
    /// Stage 2: a combination of `(attribute, marker)` conditions.
    CoOccur {
        /// The `A.m` terms.
        terms: Vec<(usize, usize)>,
        /// `⊗` when true, `⊕` when false.
        conjunctive: bool,
    },
    /// Stage 3: fall back to text retrieval over entity documents.
    TextFallback,
}

/// Per-review extraction digest used by the co-occurrence stage: which
/// `(attribute, marker)` pairs were extracted from each review.
pub type ReviewDigest = Vec<Vec<(usize, usize)>>;

/// The subjective query interpreter.
#[derive(Debug)]
pub struct Interpreter {
    config: InterpreterConfig,
    domains: Vec<LinguisticDomain>,
    marker_sets: Vec<MarkerSet>,
    review_index: InvertedIndex,
    review_sentiments: Vec<f64>,
    review_digest: ReviewDigest,
    /// Number of reviews containing at least one extraction of attribute A.
    attr_review_df: Vec<u32>,
    /// Bounded predicate → interpretation memo (see
    /// [`InterpreterConfig::cache_capacity`]).
    cache: BoundedCache<Interpretation>,
}

impl Clone for Interpreter {
    fn clone(&self) -> Self {
        Interpreter {
            config: self.config.clone(),
            domains: self.domains.clone(),
            marker_sets: self.marker_sets.clone(),
            review_index: self.review_index.clone(),
            review_sentiments: self.review_sentiments.clone(),
            review_digest: self.review_digest.clone(),
            attr_review_df: self.attr_review_df.clone(),
            // The memo is per-instance state, not model state: a clone
            // starts cold with fresh counters.
            cache: BoundedCache::new(self.config.cache_capacity),
        }
    }
}

impl Interpreter {
    /// Assembles an interpreter over prepared per-attribute domains, the
    /// review inverted index, per-review sentiment, and the extraction
    /// digest (aligned with the review index's doc ids).
    pub fn new(
        config: InterpreterConfig,
        domains: Vec<LinguisticDomain>,
        marker_sets: Vec<MarkerSet>,
        review_index: InvertedIndex,
        review_sentiments: Vec<f64>,
        review_digest: ReviewDigest,
    ) -> Self {
        let num_attrs = domains.len();
        let mut attr_review_df = vec![0u32; num_attrs];
        for digest in &review_digest {
            let mut seen = vec![false; num_attrs];
            for &(a, _) in digest {
                if !seen[a] {
                    seen[a] = true;
                    attr_review_df[a] += 1;
                }
            }
        }
        let cache = BoundedCache::new(config.cache_capacity);
        // Freeze the block-max retrieval structure now, not inside the
        // first cold interpretation.
        review_index.freeze();
        Self {
            config,
            domains,
            marker_sets,
            review_index,
            review_sentiments,
            review_digest,
            attr_review_df,
            cache,
        }
    }

    /// The marker sets, indexed by attribute.
    pub fn marker_sets(&self) -> &[MarkerSet] {
        &self.marker_sets
    }

    /// The linguistic domains, indexed by attribute.
    pub fn domains(&self) -> &[LinguisticDomain] {
        &self.domains
    }

    /// The configured thresholds.
    pub fn config(&self) -> &InterpreterConfig {
        &self.config
    }

    /// The review inverted index the co-occurrence stage retrieves
    /// from — exposed so the engine can flip its Block-Max-WAND
    /// ablation toggle and aggregate its retrieval counters.
    pub fn review_index(&self) -> &InvertedIndex {
        &self.review_index
    }

    /// Interprets `predicate` with the full three-stage fallback.
    pub fn interpret(
        &self,
        predicate: &str,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
    ) -> Interpretation {
        if let Some(direct) = self.word2vec_stage(predicate, embedder, vocab) {
            return direct;
        }
        if let Some(cooccur) = self.cooccurrence_stage(predicate, vocab) {
            return cooccur;
        }
        Interpretation::TextFallback
    }

    /// Interprets `predicate`, replaying from the bounded memo when the
    /// predicate has been interpreted before. Thread-safe; the cascade
    /// runs outside the cache lock.
    pub fn interpret_cached(
        &self,
        predicate: &str,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
    ) -> Interpretation {
        self.cache
            .get_or_insert_with(predicate, || self.interpret(predicate, embedder, vocab))
    }

    /// Hit/miss counters of the interpretation memo.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops all memoized interpretations (counters survive).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Stage 1 only (for the Table 8 ablation).
    pub fn word2vec_stage(
        &self,
        predicate: &str,
        embedder: &PhraseEmbedder,
        vocab: &Vocab,
    ) -> Option<Interpretation> {
        let mut rep = embedder.rep(predicate, vocab);
        opine_embed::normalize(&mut rep);
        let mut best: Option<(usize, f32)> = None;
        for (attr, domain) in self.domains.iter().enumerate() {
            if let Some((_, sim)) = domain.best_match(&rep) {
                if best.is_none_or(|(_, b)| sim > b) {
                    best = Some((attr, sim));
                }
            }
        }
        let (attribute, similarity) = best?;
        if similarity < self.config.theta1 {
            return None;
        }
        Some(Interpretation::Direct {
            attribute,
            similarity,
        })
    }

    /// Stage 2 only (for the Table 8 ablation).
    pub fn cooccurrence_stage(&self, predicate: &str, vocab: &Vocab) -> Option<Interpretation> {
        // Retrieve candidate reviews by BM25 and rescore with sentiment
        // (Eq. 3), keeping positive reviews only.
        let raw_hits = self.review_index.search(
            predicate,
            self.config.top_k_reviews * 4,
            vocab,
            &Bm25Params::default(),
        );
        let mut scored: Vec<(usize, f64)> = raw_hits
            .iter()
            .filter_map(|h| {
                let senti = self.review_sentiments[h.doc.index()];
                (senti > 0.0).then_some((h.doc.index(), h.score * senti))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(self.config.top_k_reviews);
        if scored.is_empty() {
            return None;
        }

        // freq_k(A) and the per-(A, marker) frequencies in the top-k set.
        let num_attrs = self.domains.len();
        let mut freq = vec![0u32; num_attrs];
        let mut marker_freq: Vec<std::collections::HashMap<usize, u32>> =
            vec![Default::default(); num_attrs];
        for &(doc, _) in &scored {
            for &(a, m) in &self.review_digest[doc] {
                freq[a] += 1;
                *marker_freq[a].entry(m).or_insert(0) += 1;
            }
        }

        let n_reviews = self.review_index.num_docs() as f64;
        let mut attr_scores: Vec<(usize, f64)> = (0..num_attrs)
            .filter(|&a| freq[a] > 0)
            .map(|a| {
                let idf = (n_reviews / (1.0 + self.attr_review_df[a] as f64))
                    .ln()
                    .max(0.0);
                (a, freq[a] as f64 * idf)
            })
            .collect();
        attr_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
        attr_scores.truncate(self.config.top_n_attributes);
        if attr_scores
            .first()
            .is_none_or(|(_, s)| *s < self.config.theta2)
        {
            return None;
        }

        let terms: Vec<(usize, usize)> = attr_scores
            .iter()
            .map(|&(a, _)| {
                // Tie-break by smallest marker index: `HashMap`
                // iteration order is arbitrary, and a count-only max
                // made tied markers resolve differently run to run.
                let marker = marker_freq[a]
                    .iter()
                    .max_by_key(|(&m, &c)| (c, std::cmp::Reverse(m)))
                    .map(|(&m, _)| m)
                    .unwrap_or(0);
                (a, marker)
            })
            .collect();

        // ⊕ vs ⊗: conjunctive when the chosen attributes are usually
        // mentioned together in the relevant reviews.
        let conjunctive = if terms.len() < 2 {
            false
        } else {
            let mut any = 0usize;
            let mut all = 0usize;
            for &(doc, _) in &scored {
                let digest = &self.review_digest[doc];
                let has: Vec<bool> = terms
                    .iter()
                    .map(|&(a, _)| digest.iter().any(|&(da, _)| da == a))
                    .collect();
                if has.iter().any(|&h| h) {
                    any += 1;
                }
                if has.iter().all(|&h| h) {
                    all += 1;
                }
            }
            any > 0 && (all as f64 / any as f64) >= self.config.conjunction_threshold
        };

        Some(Interpretation::CoOccur { terms, conjunctive })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryKind;
    use opine_embed::{Word2Vec, Word2VecConfig};
    use opine_text::IdfModel;

    /// Two attributes (cleanliness, service); reviews mention "romantic
    /// getaway" together with positive service phrases.
    fn fixture() -> (Vocab, PhraseEmbedder, Interpreter) {
        let mut vocab = Vocab::new();
        let review_texts = [
            "the room was very clean and fresh",
            "spotless room lovely stay",
            "a romantic getaway with exceptional service",
            "romantic getaway exceptional service wonderful",
            "the service was exceptional",
            "the room was dirty and bad",
        ];
        let mut review_index = InvertedIndex::new();
        let mut interned = Vec::new();
        for _ in 0..20 {
            for t in &review_texts {
                let toks = opine_text::tokenize(t);
                interned.push(toks.iter().map(|w| vocab.intern(w)).collect::<Vec<_>>());
            }
        }
        for t in &review_texts {
            review_index.add_document(t, &mut vocab);
        }
        let mut idf = IdfModel::new(&vocab);
        for s in &interned {
            idf.add_document(s);
        }
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 6,
                seed: 3,
                ..Default::default()
            },
        );
        let embedder = PhraseEmbedder::new(w2v, idf);

        let mut clean_domain = LinguisticDomain::new();
        for (p, s) in [("very clean", 0.9), ("spotless", 0.95), ("dirty", -0.7)] {
            clean_domain.observe(p, s, &embedder, &vocab);
        }
        let mut service_domain = LinguisticDomain::new();
        for (p, s) in [("exceptional", 0.95), ("bad", -0.6)] {
            service_domain.observe(p, s, &embedder, &vocab);
        }
        let clean_set =
            MarkerSet::discover("room_cleanliness", &clean_domain, SummaryKind::Linear, 3, 1);
        let service_set =
            MarkerSet::discover("service", &service_domain, SummaryKind::Linear, 2, 1);

        // Digest: review 0,1 mention cleanliness; 2,3,4 service; 5 cleanliness.
        let ex_marker = |set: &MarkerSet, phrase: &str| set.marker_index(phrase).unwrap_or(0);
        let digest: ReviewDigest = vec![
            vec![(0, ex_marker(&clean_set, "very clean"))],
            vec![(0, ex_marker(&clean_set, "spotless"))],
            vec![(1, ex_marker(&service_set, "exceptional"))],
            vec![(1, ex_marker(&service_set, "exceptional"))],
            vec![(1, ex_marker(&service_set, "exceptional"))],
            vec![(0, ex_marker(&clean_set, "dirty"))],
        ];
        let sentiments = vec![0.7, 0.8, 0.8, 0.85, 0.9, -0.6];

        let interp = Interpreter::new(
            InterpreterConfig {
                theta2: 0.1,
                ..Default::default()
            },
            vec![clean_domain, service_domain],
            vec![clean_set, service_set],
            review_index,
            sentiments,
            digest,
        );
        (vocab, embedder, interp)
    }

    #[test]
    fn word2vec_stage_handles_direct_predicates() {
        let (vocab, embedder, interp) = fixture();
        match interp.interpret("very clean room", &embedder, &vocab) {
            Interpretation::Direct {
                attribute,
                similarity,
            } => {
                assert_eq!(attribute, 0);
                assert!(similarity >= 0.5);
            }
            other => panic!("expected Direct, got {other:?}"),
        }
    }

    #[test]
    fn cooccurrence_stage_maps_romantic_getaway_to_service() {
        let (vocab, _, interp) = fixture();
        let result = interp.cooccurrence_stage("romantic getaway", &vocab);
        match result {
            Some(Interpretation::CoOccur { terms, .. }) => {
                assert!(
                    terms.iter().any(|&(a, _)| a == 1),
                    "service attribute expected in {terms:?}"
                );
            }
            other => panic!("expected CoOccur, got {other:?}"),
        }
    }

    #[test]
    fn unknown_predicate_falls_back_to_text() {
        let (vocab, embedder, interp) = fixture();
        let result = interp.interpret("zebra enclosure paddock", &embedder, &vocab);
        assert_eq!(result, Interpretation::TextFallback);
    }

    #[test]
    fn stage1_prefers_lexically_close_predicates() {
        let (vocab, embedder, interp) = fixture();
        // Co-occurrence-trained embeddings legitimately pull "romantic
        // getaway" toward "exceptional" (they share review contexts), so
        // the robust property is *relative*: the direct predicate must
        // match its variation more strongly than the concept phrase
        // matches anything.
        let direct = interp
            .word2vec_stage("very clean room", &embedder, &vocab)
            .expect("direct predicate must interpret");
        let Interpretation::Direct {
            similarity: s_direct,
            ..
        } = direct
        else {
            panic!("expected Direct");
        };
        let concept_sim = match interp.word2vec_stage("romantic getaway", &embedder, &vocab) {
            Some(Interpretation::Direct { similarity, .. }) => similarity,
            _ => -1.0,
        };
        assert!(
            s_direct > concept_sim,
            "direct {s_direct} should beat concept {concept_sim}"
        );
    }
}
