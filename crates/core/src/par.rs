//! Chunked fork-join over entity ids.
//!
//! The query hot path scores every entity independently, which is
//! embarrassingly parallel. `rayon` cannot be vendored in this offline
//! build environment, so this module provides the one primitive the
//! engine needs — `par_map`, an indexed map over `0..n` executed on
//! `std::thread::scope` with contiguous chunks per worker — with the same
//! determinism guarantee (output order is by index, whatever the thread
//! interleaving).

use std::num::NonZeroUsize;
use std::thread;

/// Inputs smaller than this run serially: thread spawn overhead (~tens of
/// microseconds) dwarfs per-entity membership scoring below this size.
pub const PAR_THRESHOLD: usize = 512;

/// Maps `f` over `0..n`, in parallel when `n` is large enough.
///
/// Equivalent to `(0..n).map(f).collect()` including output order. `f`
/// runs once per index; chunks are contiguous so per-thread memory access
/// stays sequential over entity-indexed columns.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = available_workers();
    if workers <= 1 || n < PAR_THRESHOLD {
        return (0..n).map(f).collect();
    }
    let workers = workers.min(n);
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    // The spawning request's cancellation token, trace context, and
    // pinned delta generation are thread-ambient; re-install all three
    // in every worker so deadline checkpoints inside `f` keep firing
    // across the fan-out, worker spans/counters aggregate into the
    // coordinator's trace tree, and delta-aware reads inside `f` see
    // the coordinator's pinned epoch rather than a possibly newer
    // published one (snapshot isolation must survive the fan-out).
    let deadline = opine_faults::current_deadline();
    let trace = opine_trace::current_trace();
    let pin = crate::ingest::current_pin();
    thread::scope(|scope| {
        let f = &f;
        let deadline = &deadline;
        let trace = &trace;
        let pin = &pin;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    opine_faults::with_deadline(deadline.clone(), || {
                        opine_trace::with_trace(trace.clone(), || {
                            crate::ingest::with_pin(pin.clone(), || {
                                let lo = w * chunk;
                                let hi = ((w + 1) * chunk).min(n);
                                (lo..hi).map(f).collect::<Vec<T>>()
                            })
                        })
                    })
                })
            })
            .collect();
        // lint:allow(checkpoint_coverage, reason = "bounded by worker count; joins finished workers rather than scanning data")
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                // Propagate the worker's own payload (a cancellation
                // unwind, an injected fault, a genuine bug) instead of
                // flattening it into a generic expect message — the
                // catch sites upstream dispatch on the payload type.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Worker count: the machine's logical CPUs, overridable (e.g. for CI or
/// benchmarking the serial path) with `OPINE_THREADS`.
pub fn available_workers() -> usize {
    if let Ok(v) = std::env::var("OPINE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_map_above_threshold() {
        let n = PAR_THRESHOLD * 3 + 17;
        let expected: Vec<usize> = (0..n).map(|i| i * 2 + 1).collect();
        assert_eq!(par_map(n, |i| i * 2 + 1), expected);
    }

    #[test]
    fn small_inputs_run_serially_and_in_order() {
        assert_eq!(par_map(5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn trace_context_survives_the_fan_out() {
        let ctx = opine_trace::TraceContext::new();
        let n = PAR_THRESHOLD * 2;
        opine_trace::with_trace(Some(ctx.clone()), || {
            let out = par_map(n, |i| {
                opine_trace::count("rescore", "scored", 1);
                i
            });
            assert_eq!(out.len(), n);
        });
        // Every worker's increments land in the one shared tree, each
        // index counted exactly once — no double-counting across the
        // scoped fan-out.
        let snap = ctx.snapshot();
        assert_eq!(snap.stage("rescore").unwrap().counter("scored"), n as u64);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let n = PAR_THRESHOLD * 2;
        let counter = AtomicUsize::new(0);
        let out = par_map(n, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }
}
