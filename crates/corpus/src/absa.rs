//! Labelled opinion-extraction datasets for the Table 6 experiment.
//!
//! The paper evaluates its tagger on SemEval-14 Restaurant/Laptop,
//! SemEval-15 Restaurant, and a hand-labelled Booking.com hotel set
//! (3 841 / 3 845 / 2 000 / 912 sentences). We generate synthetic datasets
//! of the same sizes and train/test splits, with gold BIO tags over aspect
//! (AS) and opinion (OP) terms.
//!
//! Each dataset draws opinions from a bank of which only a fraction appears
//! in its training split; the held-out fraction appears only at test time.
//! A tagger with *pre-trained embedding features* (trained on the large
//! unlabeled review corpus) can generalize to those unseen words through
//! their embedding neighbourhood — the mechanism by which BERT beats the
//! train-from-scratch SOTA models in the paper, strongest on the smallest
//! (hotel) training set.

use crate::hotel::hotel_spec;
use crate::restaurant::restaurant_spec;
use crate::spec::{AspectKind, AspectSpec, DomainSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BIO tag ids used across the repository.
pub mod tags {
    /// Outside any term.
    pub const O: usize = 0;
    /// Beginning of an aspect term.
    pub const B_AS: usize = 1;
    /// Inside an aspect term.
    pub const I_AS: usize = 2;
    /// Beginning of an opinion term.
    pub const B_OP: usize = 3;
    /// Inside an opinion term.
    pub const I_OP: usize = 4;
    /// Number of tags.
    pub const COUNT: usize = 5;
}

/// One labelled sentence.
#[derive(Debug, Clone)]
pub struct AbsaSentence {
    /// Lowercased tokens.
    pub tokens: Vec<String>,
    /// BIO tag per token (see [`tags`]).
    pub tags: Vec<usize>,
}

impl AbsaSentence {
    /// `(start, end)` spans (end exclusive) of a term type, where `begin` /
    /// `inside` are the B-/I- tags of that type.
    pub fn spans(&self, begin: usize, inside: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.tags.len() {
            if self.tags[i] == begin {
                let start = i;
                i += 1;
                while i < self.tags.len() && self.tags[i] == inside {
                    i += 1;
                }
                out.push((start, i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Aspect-term spans.
    pub fn aspect_spans(&self) -> Vec<(usize, usize)> {
        self.spans(tags::B_AS, tags::I_AS)
    }

    /// Opinion-term spans.
    pub fn opinion_spans(&self) -> Vec<(usize, usize)> {
        self.spans(tags::B_OP, tags::I_OP)
    }
}

/// A named dataset with train/test splits.
#[derive(Debug, Clone)]
pub struct AbsaDataset {
    /// Dataset name as in Table 6.
    pub name: String,
    /// Training sentences.
    pub train: Vec<AbsaSentence>,
    /// Test sentences.
    pub test: Vec<AbsaSentence>,
}

/// A miniature laptop domain for the SemEval-14 Laptop stand-in.
pub fn laptop_spec() -> DomainSpec {
    let aspects = vec![
        AspectSpec::linear(
            "battery",
            &["battery", "battery life", "charge"],
            &[
                ("dead", 0.05),
                ("terrible", 0.1),
                ("short", 0.25),
                ("weak", 0.3),
                ("average", 0.5),
                ("decent", 0.6),
                ("long", 0.75),
                ("excellent", 0.88),
                ("incredible", 0.95),
            ],
            0.5,
        ),
        AspectSpec::linear(
            "screen",
            &["screen", "display", "panel"],
            &[
                ("cracked", 0.05),
                ("dim", 0.2),
                ("washed-out", 0.28),
                ("grainy", 0.32),
                ("fine", 0.5),
                ("sharp", 0.7),
                ("bright", 0.75),
                ("gorgeous", 0.9),
                ("stunning", 0.95),
            ],
            0.5,
        ),
        AspectSpec::linear(
            "keyboard",
            &["keyboard", "keys", "trackpad"],
            &[
                ("mushy", 0.15),
                ("sticky", 0.2),
                ("cramped", 0.3),
                ("stiff", 0.35),
                ("usable", 0.5),
                ("comfortable", 0.68),
                ("responsive", 0.78),
                ("clicky", 0.72),
                ("superb", 0.9),
            ],
            0.45,
        ),
        AspectSpec::linear(
            "performance",
            &["performance", "speed", "processor"],
            &[
                ("sluggish", 0.1),
                ("slow", 0.2),
                ("laggy", 0.25),
                ("adequate", 0.5),
                ("snappy", 0.72),
                ("fast", 0.78),
                ("blazing", 0.9),
                ("phenomenal", 0.95),
            ],
            0.55,
        ),
        AspectSpec::linear(
            "price",
            &["price", "cost", "value"],
            &[
                ("outrageous", 0.08),
                ("overpriced", 0.18),
                ("steep", 0.3),
                ("fair", 0.55),
                ("reasonable", 0.65),
                ("great", 0.8),
                ("unbeatable", 0.92),
            ],
            0.4,
        ),
    ];
    DomainSpec {
        name: "laptop".into(),
        aspects,
        concepts: vec![],
        filler: (
            vec!["would buy again".into(), "totally worth it".into()],
            vec![
                "i bought this last month".into(),
                "it arrived in two days".into(),
            ],
            vec!["returning it tomorrow".into(), "what a waste".into()],
        ),
    }
}

/// Generation knobs for one dataset.
#[derive(Debug, Clone)]
struct DatasetConfig {
    name: &'static str,
    train: usize,
    test: usize,
    /// Fraction of each opinion bank visible to the training split.
    train_bank_fraction: f64,
    /// Probability of a two-aspect sentence.
    multi_aspect_prob: f64,
    seed: u64,
}

/// Builds the four Table 6 datasets at paper sizes.
pub fn absa_datasets(seed: u64) -> Vec<AbsaDataset> {
    let configs = [
        (
            restaurant_spec(),
            DatasetConfig {
                name: "SemEval-14 Restaurant",
                train: 3041,
                test: 800,
                train_bank_fraction: 0.85,
                multi_aspect_prob: 0.35,
                seed: seed ^ 0x0001,
            },
        ),
        (
            laptop_spec(),
            DatasetConfig {
                name: "SemEval-14 Laptop",
                train: 3045,
                test: 800,
                train_bank_fraction: 0.8,
                multi_aspect_prob: 0.35,
                seed: seed ^ 0x0002,
            },
        ),
        (
            restaurant_spec(),
            DatasetConfig {
                name: "SemEval-15 Restaurant",
                train: 1315,
                test: 685,
                train_bank_fraction: 0.72,
                multi_aspect_prob: 0.45,
                seed: seed ^ 0x0003,
            },
        ),
        (
            hotel_spec(),
            DatasetConfig {
                name: "Booking.com Hotel",
                train: 800,
                test: 112,
                train_bank_fraction: 0.6,
                multi_aspect_prob: 0.4,
                seed: seed ^ 0x0004,
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(spec, cfg)| generate_dataset(&spec, &cfg))
        .collect()
}

fn generate_dataset(spec: &DomainSpec, cfg: &DatasetConfig) -> AbsaDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let train = (0..cfg.train)
        .map(|_| {
            generate_sentence(
                spec,
                cfg.train_bank_fraction,
                cfg.multi_aspect_prob,
                &mut rng,
            )
        })
        .collect();
    let test = (0..cfg.test)
        .map(|_| generate_sentence(spec, 1.0, cfg.multi_aspect_prob, &mut rng))
        .collect();
    AbsaDataset {
        name: cfg.name.to_string(),
        train,
        test,
    }
}

/// Renders one labelled sentence; `bank_fraction` limits which opinion
/// phrases (by bank prefix) may appear.
fn generate_sentence(
    spec: &DomainSpec,
    bank_fraction: f64,
    multi_aspect_prob: f64,
    rng: &mut StdRng,
) -> AbsaSentence {
    let mut tokens: Vec<String> = Vec::new();
    let mut tag_ids: Vec<usize> = Vec::new();

    let num_aspects = if rng.gen_bool(multi_aspect_prob) {
        2
    } else {
        1
    };
    let connectors = ["but", "and", "while"];

    for i in 0..num_aspects {
        if i > 0 {
            push_plain(
                &mut tokens,
                &mut tag_ids,
                connectors[rng.gen_range(0..3usize)],
            );
        }
        let aspect_idx = rng.gen_range(0..spec.aspects.len());
        let aspect = &spec.aspects[aspect_idx];
        let aspect_term = &aspect.aspect_terms[rng.gen_range(0..aspect.aspect_terms.len())];
        let opinion_term = sample_opinion(aspect, bank_fraction, rng);

        match rng.gen_range(0..3) {
            0 => {
                // "the {asp} was [really] {op}" — the optional untagged
                // intensifier breaks "first word after the copula is an
                // opinion" position heuristics.
                push_plain(&mut tokens, &mut tag_ids, "the");
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    aspect_term,
                    tags::B_AS,
                    tags::I_AS,
                );
                push_plain(&mut tokens, &mut tag_ids, "was");
                if rng.gen_bool(0.35) {
                    let adv = ["really", "honestly", "overall", "frankly"];
                    push_plain(&mut tokens, &mut tag_ids, adv[rng.gen_range(0..4usize)]);
                }
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    &opinion_term,
                    tags::B_OP,
                    tags::I_OP,
                );
            }
            1 => {
                // "{op} {asp}"
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    &opinion_term,
                    tags::B_OP,
                    tags::I_OP,
                );
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    aspect_term,
                    tags::B_AS,
                    tags::I_AS,
                );
            }
            _ => {
                // "{asp} a bit {op} honestly"
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    aspect_term,
                    tags::B_AS,
                    tags::I_AS,
                );
                push_plain(&mut tokens, &mut tag_ids, "a");
                push_plain(&mut tokens, &mut tag_ids, "bit");
                push_term(
                    &mut tokens,
                    &mut tag_ids,
                    &opinion_term,
                    tags::B_OP,
                    tags::I_OP,
                );
                if rng.gen_bool(0.4) {
                    push_plain(&mut tokens, &mut tag_ids, "honestly");
                }
            }
        }
    }

    // Objective clause: an aspect word in a non-opinionated statement, all
    // tagged O ("the room was near the station"). Position and even word
    // identity of the noun no longer determine the tags; the tagger has to
    // recognize *opinion vocabulary*, which is where pre-trained embedding
    // clusters pay off for words unseen in training.
    if rng.gen_bool(0.4) {
        let aspect = &spec.aspects[rng.gen_range(0..spec.aspects.len())];
        let noun = &aspect.aspect_terms[rng.gen_range(0..aspect.aspect_terms.len())];
        let objective = [
            "near the entrance",
            "on the third floor",
            "behind the station",
            "next to the lobby",
            "by the window",
        ];
        push_plain(&mut tokens, &mut tag_ids, "and the");
        push_plain(&mut tokens, &mut tag_ids, noun);
        push_plain(&mut tokens, &mut tag_ids, "was");
        push_plain(
            &mut tokens,
            &mut tag_ids,
            objective[rng.gen_range(0..objective.len())],
        );
    }

    // Occasionally no-opinion filler before/after.
    if rng.gen_bool(0.25) {
        let (_, neu, _) = &spec.filler;
        for w in neu[rng.gen_range(0..neu.len())].split_whitespace() {
            push_plain(&mut tokens, &mut tag_ids, w);
        }
    }

    AbsaSentence {
        tokens,
        tags: tag_ids,
    }
}

fn sample_opinion(aspect: &AspectSpec, bank_fraction: f64, rng: &mut StdRng) -> String {
    let phrases: Vec<String> = match &aspect.kind {
        AspectKind::Linear { opinions } => opinions.iter().map(|(p, _)| p.clone()).collect(),
        AspectKind::Categorical { opinions, .. } => {
            opinions.iter().map(|(p, _, _)| p.clone()).collect()
        }
    };
    let visible = ((phrases.len() as f64 * bank_fraction).ceil() as usize).max(1);
    phrases[rng.gen_range(0..visible.min(phrases.len()))].clone()
}

fn push_plain(tokens: &mut Vec<String>, tag_ids: &mut Vec<usize>, text: &str) {
    for w in text.split_whitespace() {
        tokens.push(w.to_lowercase());
        tag_ids.push(tags::O);
    }
}

fn push_term(
    tokens: &mut Vec<String>,
    tag_ids: &mut Vec<usize>,
    term: &str,
    begin: usize,
    inside: usize,
) {
    for (i, w) in term.split_whitespace().enumerate() {
        tokens.push(w.to_lowercase());
        tag_ids.push(if i == 0 { begin } else { inside });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_match_paper_sizes() {
        let ds = absa_datasets(7);
        let sizes: Vec<(usize, usize)> = ds.iter().map(|d| (d.train.len(), d.test.len())).collect();
        assert_eq!(
            sizes,
            vec![(3041, 800), (3045, 800), (1315, 685), (800, 112)]
        );
    }

    #[test]
    fn tags_align_with_tokens() {
        for ds in absa_datasets(11) {
            for s in ds.train.iter().chain(&ds.test).take(200) {
                assert_eq!(s.tokens.len(), s.tags.len());
                assert!(s.tags.iter().all(|&t| t < tags::COUNT));
            }
        }
    }

    #[test]
    fn i_tags_never_start_a_span() {
        for ds in absa_datasets(13) {
            for s in ds.train.iter().take(300) {
                let mut prev = tags::O;
                for &t in &s.tags {
                    if t == tags::I_AS {
                        assert!(prev == tags::B_AS || prev == tags::I_AS);
                    }
                    if t == tags::I_OP {
                        assert!(prev == tags::B_OP || prev == tags::I_OP);
                    }
                    prev = t;
                }
            }
        }
    }

    #[test]
    fn spans_extract_correctly() {
        let s = AbsaSentence {
            tokens: vec![
                "the".into(),
                "battery".into(),
                "life".into(),
                "was".into(),
                "short".into(),
            ],
            tags: vec![tags::O, tags::B_AS, tags::I_AS, tags::O, tags::B_OP],
        };
        assert_eq!(s.aspect_spans(), vec![(1, 3)]);
        assert_eq!(s.opinion_spans(), vec![(4, 5)]);
    }

    #[test]
    fn most_sentences_have_an_aspect_and_opinion() {
        let ds = &absa_datasets(17)[0];
        let with_both = ds
            .train
            .iter()
            .filter(|s| !s.aspect_spans().is_empty() && !s.opinion_spans().is_empty())
            .count();
        assert!(with_both as f64 > ds.train.len() as f64 * 0.95);
    }

    #[test]
    fn test_split_uses_full_bank_train_does_not() {
        // The hotel dataset hides 40% of each bank from training.
        let ds = absa_datasets(23)
            .into_iter()
            .find(|d| d.name == "Booking.com Hotel")
            .unwrap();
        let collect_opinions = |sents: &[AbsaSentence]| -> std::collections::HashSet<String> {
            sents
                .iter()
                .flat_map(|s| {
                    s.opinion_spans()
                        .into_iter()
                        .map(|(a, b)| s.tokens[a..b].join(" "))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let train_ops = collect_opinions(&ds.train);
        let test_ops = collect_opinions(&ds.test);
        let unseen: Vec<&String> = test_ops.difference(&train_ops).collect();
        assert!(
            !unseen.is_empty(),
            "test split must contain opinions unseen in training"
        );
    }

    #[test]
    fn laptop_spec_is_wellformed() {
        let spec = laptop_spec();
        assert_eq!(spec.name, "laptop");
        assert_eq!(spec.aspects.len(), 5);
    }
}
