//! The review-corpus generator.
//!
//! Entities receive latent per-aspect qualities; reviews are rendered from
//! the domain's phrase banks conditioned on those qualities. The latent
//! state is retained so every experiment has exact ground truth.

use crate::spec::{AspectKind, DomainSpec, Entity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of entities to generate.
    pub num_entities: usize,
    /// Mean reviews per entity (actual counts vary ±50%).
    pub mean_reviews: usize,
    /// Master seed; generation is fully deterministic.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_entities: 60,
            mean_reviews: 30,
            seed: 42,
        }
    }
}

/// One extracted gold opinion pair (ground truth for the extractor).
#[derive(Debug, Clone)]
pub struct GoldPair {
    /// Index into `DomainSpec::aspects`.
    pub aspect: usize,
    /// The aspect term as written in the sentence.
    pub aspect_term: String,
    /// The opinion term as written in the sentence.
    pub opinion_term: String,
}

/// A generated review with provenance back to the latent state.
#[derive(Debug, Clone)]
pub struct Review {
    /// Dense review id.
    pub id: usize,
    /// The reviewed entity.
    pub entity_id: usize,
    /// The authoring reviewer (for "qualified reviewer" filters).
    pub reviewer_id: usize,
    /// Publication year (2005..=2019).
    pub year: u32,
    /// Helpful votes (0..=25).
    pub helpful_votes: u32,
    /// Full review text.
    pub text: String,
    /// Gold aspect/opinion pairs, for extractor evaluation.
    pub gold: Vec<GoldPair>,
}

/// A generated corpus: domain spec + entities + reviews.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The domain schema the corpus was generated from.
    pub spec: DomainSpec,
    /// Entities with latent ground truth.
    pub entities: Vec<Entity>,
    /// All reviews, grouped by entity in id order.
    pub reviews: Vec<Review>,
}

impl Corpus {
    /// Generates a corpus for `spec`.
    pub fn generate(spec: DomainSpec, config: &CorpusConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let is_hotel = spec.name == "hotel";

        let entities: Vec<Entity> = (0..config.num_entities)
            .map(|id| generate_entity(id, &spec, is_hotel, &mut rng))
            .collect();

        // Reviewer pool: ~1 reviewer per 4 reviews, 15% prolific (weight 8).
        let expected_reviews = config.num_entities * config.mean_reviews;
        let num_reviewers = (expected_reviews / 4).max(8);
        let prolific_cutoff = num_reviewers / 7 + 1;

        let mut reviews = Vec::with_capacity(expected_reviews);
        for entity in &entities {
            let lo = (config.mean_reviews / 2).max(1);
            let hi = config.mean_reviews * 3 / 2 + 1;
            let n = rng.gen_range(lo..hi.max(lo + 1));
            for _ in 0..n {
                let reviewer_id = if rng.gen_bool(0.45) {
                    rng.gen_range(0..prolific_cutoff)
                } else {
                    rng.gen_range(prolific_cutoff..num_reviewers)
                };
                let id = reviews.len();
                reviews.push(generate_review(
                    id,
                    entity,
                    reviewer_id,
                    &spec,
                    is_hotel,
                    &mut rng,
                ));
            }
        }

        Self {
            spec,
            entities,
            reviews,
        }
    }

    /// Reviews of one entity, in id order.
    pub fn reviews_of(&self, entity_id: usize) -> impl Iterator<Item = &Review> {
        self.reviews
            .iter()
            .filter(move |r| r.entity_id == entity_id)
    }

    /// Number of reviews written by each reviewer id.
    pub fn reviewer_counts(&self) -> std::collections::HashMap<usize, usize> {
        let mut counts = std::collections::HashMap::new();
        for r in &self.reviews {
            *counts.entry(r.reviewer_id).or_insert(0) += 1;
        }
        counts
    }

    /// All review text of an entity concatenated into one document (the
    /// entity-document representation of the GZ12 baseline).
    pub fn entity_document(&self, entity_id: usize) -> String {
        let mut doc = String::new();
        for r in self.reviews_of(entity_id) {
            doc.push_str(&r.text);
            doc.push(' ');
        }
        doc
    }
}

fn generate_entity(id: usize, spec: &DomainSpec, is_hotel: bool, rng: &mut StdRng) -> Entity {
    // Latent quality: hotels are mixed, restaurants skew positive (the Yelp
    // subset in Table 4 has much higher average polarity than Booking.com).
    // A shared per-entity factor correlates aspects (ρ ≈ 0.36) — real
    // venues' aspect qualities co-vary through management quality, which is
    // also what makes overall-rating sorting a sane baseline at all.
    let (mu, sigma) = if is_hotel { (0.55, 0.22) } else { (0.68, 0.18) };
    let global = gauss(rng);
    let quality: Vec<f64> = spec
        .aspects
        .iter()
        .map(|_| (mu + sigma * (0.6 * global + 0.8 * gauss(rng))).clamp(0.02, 0.98))
        .collect();
    let category: Vec<usize> = spec
        .aspects
        .iter()
        .map(|a| match &a.kind {
            AspectKind::Linear { .. } => 0,
            AspectKind::Categorical { categories, .. } => rng.gen_range(0..categories.len()),
        })
        .collect();

    let (city, price, cuisine) = if is_hotel {
        let city = if id % 10 < 7 { "London" } else { "Amsterdam" };
        // Price correlates loosely with quality, plus noise.
        let mean_q: f64 = quality.iter().sum::<f64>() / quality.len() as f64;
        let price = 60.0 + 400.0 * (0.35 * mean_q + 0.65 * rng.gen::<f64>());
        (city.to_string(), price, String::new())
    } else {
        let cuisines = [
            "Japanese", "Italian", "Chinese", "Thai", "Canadian", "Mexican", "Indian", "French",
        ];
        // Japanese gets extra mass so the "JP Cuisine" slice is sizeable.
        let cuisine = if id % 8 < 2 {
            "Japanese"
        } else {
            cuisines[id % cuisines.len()]
        };
        let price_range = 1 + (rng.gen::<f64>().powf(1.3) * 4.0) as u8;
        let price = price_range as f64 * 18.0 + rng.gen::<f64>() * 10.0;
        ("Toronto".to_string(), price, cuisine.to_string())
    };
    let price_range = if is_hotel {
        ((price / 150.0).ceil() as u8).clamp(1, 4)
    } else {
        ((price / 18.0).floor() as u8).clamp(1, 4)
    };

    let mean_q: f64 = quality.iter().sum::<f64>() / quality.len() as f64;
    let rating = (1.0 + 4.0 * mean_q + 0.3 * gauss(rng)).clamp(1.0, 5.0);
    // Published per-aspect scores are *coarse* public aggregates: heavy
    // noise plus one-decimal quantization, like booking.com's 8 category
    // scores — far weaker signals than the latent state itself.
    let aspect_ratings: Vec<f64> = quality
        .iter()
        .map(|q| {
            let noisy = (1.0 + 4.0 * q + 0.7 * gauss(rng)).clamp(1.0, 5.0);
            (noisy * 10.0).round() / 10.0
        })
        .collect();

    Entity {
        id,
        name: format!("{} {}", if is_hotel { "Hotel" } else { "Restaurant" }, id),
        city,
        price,
        price_range,
        cuisine,
        capacity: 20 + (id as u32 % 40) * 10,
        quality,
        category,
        rating,
        aspect_ratings,
    }
}

fn generate_review(
    id: usize,
    entity: &Entity,
    reviewer_id: usize,
    spec: &DomainSpec,
    is_hotel: bool,
    rng: &mut StdRng,
) -> Review {
    let mut sentences: Vec<String> = Vec::new();
    let mut gold: Vec<GoldPair> = Vec::new();

    // Hotels: short reviews (~34 words); restaurants: long (~105+ words).
    let (min_aspects, extra_aspects, filler_count) = if is_hotel {
        (2usize, 2usize, 1usize)
    } else {
        (4, 5, 3)
    };
    let target_aspects = min_aspects + rng.gen_range(0..=extra_aspects);

    // Sample aspects weighted by mention probability, without replacement.
    let mut chosen: Vec<usize> = Vec::new();
    let mut attempts = 0;
    while chosen.len() < target_aspects && attempts < 80 {
        attempts += 1;
        let idx = rng.gen_range(0..spec.aspects.len());
        if !chosen.contains(&idx) && rng.gen_bool(spec.aspects[idx].mention_prob) {
            chosen.push(idx);
        }
    }
    if chosen.is_empty() {
        chosen.push(0);
    }

    for &aspect_idx in &chosen {
        let (sentence, pair) = render_aspect_sentence(entity, aspect_idx, spec, rng);
        sentences.push(sentence);
        gold.push(pair);
    }

    // Concept mentions: when the entity qualifies, inject the concept phrase
    // and (usually) positive mentions of the required aspects — the
    // co-occurrence signal.
    for concept in &spec.concepts {
        if entity.has_concept(concept) && rng.gen_bool(concept.mention_prob) {
            let phrase = &concept.mention_phrases[rng.gen_range(0..concept.mention_phrases.len())];
            sentences.push(phrase.clone());
            for req in &concept.requires {
                if rng.gen_bool(0.7) {
                    let aspect_idx = match *req {
                        crate::spec::ConceptRequirement::MinQuality(a, _) => a,
                        crate::spec::ConceptRequirement::Category(a, _) => a,
                    };
                    let (sentence, pair) = render_aspect_sentence(entity, aspect_idx, spec, rng);
                    sentences.push(sentence);
                    gold.push(pair);
                }
            }
        }
    }

    // Filler, polarity-matched to the entity's average quality.
    let mean_q: f64 = entity.quality.iter().sum::<f64>() / entity.quality.len() as f64;
    let (pos, neu, neg) = &spec.filler;
    for _ in 0..rng.gen_range(0..=filler_count) {
        let pool = if mean_q > 0.62 {
            pos
        } else if mean_q < 0.42 {
            neg
        } else {
            neu
        };
        sentences.push(pool[rng.gen_range(0..pool.len())].clone());
    }

    let text = sentences.join(". ") + ".";
    Review {
        id,
        entity_id: entity.id,
        reviewer_id,
        year: 2005 + rng.gen_range(0..15u32),
        helpful_votes: (rng.gen::<f64>().powi(3) * 25.0) as u32,
        text,
        gold,
    }
}

/// Renders one aspect sentence for `entity`, returning the gold pair.
pub(crate) fn render_aspect_sentence(
    entity: &Entity,
    aspect_idx: usize,
    spec: &DomainSpec,
    rng: &mut StdRng,
) -> (String, GoldPair) {
    let aspect = &spec.aspects[aspect_idx];
    let aspect_term = aspect.aspect_terms[rng.gen_range(0..aspect.aspect_terms.len())].clone();

    let opinion_term = match &aspect.kind {
        AspectKind::Linear { opinions } => {
            let observed = (entity.quality[aspect_idx] + 0.12 * gauss(rng)).clamp(0.0, 1.0);
            // Occasionally phrase a low opinion as a negated high one
            // ("not clean", "not quiet") — the trap that defeats raw BM25.
            if observed < 0.45 && rng.gen_bool(0.18) {
                let target = 1.0 - observed;
                format!("not {}", nearest_linear(opinions, target, rng))
            } else {
                nearest_linear(opinions, observed, rng)
            }
        }
        AspectKind::Categorical { opinions, .. } => {
            let cat = entity.category[aspect_idx];
            // Mostly the dominant category; sometimes a stray other style.
            let target_cat = if rng.gen_bool(0.8) {
                cat
            } else {
                opinions[rng.gen_range(0..opinions.len())].1
            };
            let candidates: Vec<&(String, usize, f64)> = opinions
                .iter()
                .filter(|(_, c, _)| *c == target_cat)
                .collect();
            candidates[rng.gen_range(0..candidates.len())].0.clone()
        }
    };

    let template = rng.gen_range(0..4);
    let sentence = match template {
        0 => format!("the {aspect_term} was {opinion_term}"),
        1 => format!("{opinion_term} {aspect_term}"),
        2 => format!("the {aspect_term} seemed {opinion_term}"),
        _ => format!("we found the {aspect_term} {opinion_term}"),
    };
    (
        sentence,
        GoldPair {
            aspect: aspect_idx,
            aspect_term,
            opinion_term,
        },
    )
}

/// Picks a phrase whose quality is near `target` (with mild randomness
/// between the two closest so banks do not collapse to one phrase).
fn nearest_linear(opinions: &[(String, f64)], target: f64, rng: &mut StdRng) -> String {
    let mut sorted: Vec<&(String, f64)> = opinions.iter().collect();
    sorted.sort_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()));
    let pick = if sorted.len() > 1 && rng.gen_bool(0.3) {
        1
    } else {
        0
    };
    sorted[pick].0.clone()
}

/// Standard normal via Box–Muller.
pub(crate) fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotel::hotel_spec;
    use crate::restaurant::restaurant_spec;

    fn small_hotel() -> Corpus {
        Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 20,
                mean_reviews: 10,
                seed: 1,
            },
        )
    }

    #[test]
    fn generates_requested_entities() {
        let c = small_hotel();
        assert_eq!(c.entities.len(), 20);
        assert!(!c.reviews.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_hotel();
        let b = small_hotel();
        assert_eq!(a.reviews.len(), b.reviews.len());
        assert_eq!(a.reviews[0].text, b.reviews[0].text);
        assert_eq!(a.entities[3].quality, b.entities[3].quality);
    }

    #[test]
    fn reviews_reference_valid_entities_and_years() {
        let c = small_hotel();
        for r in &c.reviews {
            assert!(r.entity_id < c.entities.len());
            assert!((2005..2020).contains(&r.year));
            assert!(r.helpful_votes <= 25);
            assert!(!r.text.is_empty());
        }
    }

    #[test]
    fn gold_pairs_appear_in_text() {
        let c = small_hotel();
        for r in c.reviews.iter().take(50) {
            for g in &r.gold {
                assert!(
                    r.text.contains(&g.aspect_term),
                    "aspect term '{}' missing from '{}'",
                    g.aspect_term,
                    r.text
                );
                assert!(
                    r.text.contains(&g.opinion_term),
                    "opinion term '{}' missing from '{}'",
                    g.opinion_term,
                    r.text
                );
            }
        }
    }

    #[test]
    fn high_quality_entities_get_positive_phrases() {
        let c = small_hotel();
        // Find the entity with the best room cleanliness.
        let best = c
            .entities
            .iter()
            .max_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
            .unwrap();
        let worst = c
            .entities
            .iter()
            .min_by(|a, b| a.quality[0].total_cmp(&b.quality[0]))
            .unwrap();
        let doc_best = c.entity_document(best.id);
        let doc_worst = c.entity_document(worst.id);
        // Cheap proxy: the best entity's document should contain more
        // positive cleanliness words than the worst's.
        let count = |doc: &str, w: &str| doc.matches(w).count();
        if best.quality[0] > 0.8 && worst.quality[0] < 0.3 {
            assert!(
                count(&doc_best, "clean") + count(&doc_best, "spotless")
                    >= count(&doc_worst, "spotless")
            );
        }
    }

    #[test]
    fn restaurant_reviews_are_longer_than_hotel_reviews() {
        let h = small_hotel();
        let r = Corpus::generate(
            restaurant_spec(),
            &CorpusConfig {
                num_entities: 20,
                mean_reviews: 10,
                seed: 2,
            },
        );
        let avg = |c: &Corpus| {
            c.reviews
                .iter()
                .map(|r| r.text.split_whitespace().count())
                .sum::<usize>() as f64
                / c.reviews.len() as f64
        };
        assert!(
            avg(&r) > avg(&h) * 1.5,
            "restaurant {} vs hotel {}",
            avg(&r),
            avg(&h)
        );
    }

    #[test]
    fn hotel_cities_split_london_amsterdam() {
        let c = small_hotel();
        let london = c.entities.iter().filter(|e| e.city == "London").count();
        let amsterdam = c.entities.iter().filter(|e| e.city == "Amsterdam").count();
        assert!(london > amsterdam);
        assert!(amsterdam > 0);
    }

    #[test]
    fn reviewer_pool_contains_prolific_reviewers() {
        let c = Corpus::generate(
            hotel_spec(),
            &CorpusConfig {
                num_entities: 30,
                mean_reviews: 20,
                seed: 3,
            },
        );
        let counts = c.reviewer_counts();
        assert!(
            counts.values().any(|&n| n >= 10),
            "need prolific reviewers for the qualified-reviewer experiment"
        );
    }

    #[test]
    fn entity_document_concatenates_reviews() {
        let c = small_hotel();
        let n = c.reviews_of(0).count();
        assert!(n > 0);
        let doc = c.entity_document(0);
        let first = &c.reviews_of(0).next().unwrap().text;
        assert!(doc.contains(first.as_str()));
    }
}
