//! Synthetic data substrate for the OpineDB reproduction.
//!
//! The paper evaluates on the Booking.com (515k reviews, 1 493 hotels) and
//! Yelp Toronto (176k reviews, 860 restaurants) datasets, labelled SemEval
//! ABSA data, and an MTurk user survey — none of which ship with this
//! repository. This crate substitutes a **seeded generative simulator**:
//!
//! * every entity carries a *latent* per-aspect quality θ ∈ \[0,1\] (and a
//!   dominant category for categorical aspects such as bathroom style);
//! * reviews are rendered from phrase banks conditioned on θ, with
//!   negations, intensifiers, filler text, reviewer profiles, years and
//!   helpful votes;
//! * latent *concepts* ("romantic getaway") fire when their aspect
//!   requirements hold and inject correlated mentions — exactly the signal
//!   the co-occurrence interpreter mines;
//! * the latent state doubles as **exact ground truth** for the sat(q, e)
//!   labels that the paper had to crowd-source.
//!
//! Sub-modules: [`spec`] (domain schemas), [`hotel`] / [`restaurant`]
//! (the two evaluation domains), [`gen`] (corpus generator), [`workload`]
//! (the 190/185 query-predicate banks with gold attributes and sat rules),
//! [`survey`] (Table 3), [`absa`] (Table 6 datasets), [`pairing`]
//! (Appendix C data).

pub mod absa;
pub mod gen;
pub mod hotel;
pub mod pairing;
pub mod restaurant;
pub mod spec;
pub mod survey;
pub mod workload;

pub use gen::{Corpus, CorpusConfig, Review};
pub use spec::{AspectKind, AspectSpec, ConceptRequirement, ConceptSpec, DomainSpec, Entity};
pub use workload::{SatRule, WorkloadPredicate};
