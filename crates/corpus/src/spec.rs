//! Domain schema types: aspects, phrase banks, concepts, entities.

/// How an aspect's linguistic domain is structured (Sec. 2 of the paper).
#[derive(Debug, Clone)]
pub enum AspectKind {
    /// Opinions lie on a linear quality scale; each phrase carries the
    /// latent quality level (0 = worst, 1 = best) it expresses.
    Linear {
        /// `(phrase, quality)` pairs, e.g. `("spotless", 0.95)`.
        opinions: Vec<(String, f64)>,
    },
    /// Opinions fall into unordered categories (e.g. bathroom styles);
    /// each phrase carries its category index and an inherent positivity.
    Categorical {
        /// Category names, e.g. `["old", "standard", "modern", "luxurious"]`.
        categories: Vec<String>,
        /// `(phrase, category, positivity)` triples.
        opinions: Vec<(String, usize, f64)>,
    },
}

impl AspectKind {
    /// True for [`AspectKind::Linear`].
    pub fn is_linear(&self) -> bool {
        matches!(self, AspectKind::Linear { .. })
    }

    /// All opinion phrases in the bank.
    pub fn phrases(&self) -> Vec<&str> {
        match self {
            AspectKind::Linear { opinions } => opinions.iter().map(|(p, _)| p.as_str()).collect(),
            AspectKind::Categorical { opinions, .. } => {
                opinions.iter().map(|(p, _, _)| p.as_str()).collect()
            }
        }
    }
}

/// Direction of a workload query predicate relative to the latent state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryDirection {
    /// Satisfied when θ ≥ threshold (e.g. "clean rooms").
    High(f64),
    /// Satisfied when θ ≤ threshold (e.g. "cheap and basic").
    Low(f64),
    /// Satisfied when the entity's dominant category matches.
    Category(usize),
}

/// A natural-language query predicate attached to an aspect.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The predicate text as a user would type it.
    pub text: String,
    /// Its satisfaction rule against the latent state.
    pub direction: QueryDirection,
}

/// One subjective aspect of the domain (becomes a subjective attribute).
#[derive(Debug, Clone)]
pub struct AspectSpec {
    /// Attribute name, e.g. `room_cleanliness`.
    pub name: String,
    /// Nouns that reviews use for this aspect ("room", "carpet", …).
    pub aspect_terms: Vec<String>,
    /// The opinion phrase bank.
    pub kind: AspectKind,
    /// Probability that a review mentions this aspect.
    pub mention_prob: f64,
    /// Workload query predicates targeting this aspect.
    pub queries: Vec<QuerySpec>,
}

impl AspectSpec {
    /// Builds a linear aspect.
    pub fn linear(
        name: &str,
        aspect_terms: &[&str],
        opinions: &[(&str, f64)],
        mention_prob: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            aspect_terms: aspect_terms.iter().map(|s| s.to_string()).collect(),
            kind: AspectKind::Linear {
                opinions: opinions.iter().map(|(p, q)| (p.to_string(), *q)).collect(),
            },
            mention_prob,
            queries: Vec::new(),
        }
    }

    /// Builds a categorical aspect.
    pub fn categorical(
        name: &str,
        aspect_terms: &[&str],
        categories: &[&str],
        opinions: &[(&str, usize, f64)],
        mention_prob: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            aspect_terms: aspect_terms.iter().map(|s| s.to_string()).collect(),
            kind: AspectKind::Categorical {
                categories: categories.iter().map(|s| s.to_string()).collect(),
                opinions: opinions
                    .iter()
                    .map(|(p, c, s)| (p.to_string(), *c, *s))
                    .collect(),
            },
            mention_prob,
            queries: Vec::new(),
        }
    }

    /// Adds "θ-high" query predicates (threshold 0.65).
    pub fn with_high_queries(mut self, texts: &[&str]) -> Self {
        for t in texts {
            self.queries.push(QuerySpec {
                text: t.to_string(),
                direction: QueryDirection::High(0.65),
            });
        }
        self
    }

    /// Adds category-targeted query predicates.
    pub fn with_category_query(mut self, text: &str, category: usize) -> Self {
        self.queries.push(QuerySpec {
            text: text.to_string(),
            direction: QueryDirection::Category(category),
        });
        self
    }
}

/// A requirement for a latent concept to hold for an entity.
#[derive(Debug, Clone, Copy)]
pub enum ConceptRequirement {
    /// θ of the aspect must reach the threshold.
    MinQuality(usize, f64),
    /// The entity's dominant category of the aspect must match.
    Category(usize, usize),
}

/// A latent concept such as "romantic getaway".
///
/// When its requirements hold for an entity, reviews of that entity inject
/// `mention_phrases` alongside positive mentions of the required aspects —
/// this is the co-occurrence signal Sec. 3.2 mines.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    /// Concept name.
    pub name: String,
    /// Sentences injected into reviews when the concept holds.
    pub mention_phrases: Vec<String>,
    /// Workload predicate texts for the concept.
    pub queries: Vec<String>,
    /// Conjunctive requirements over the latent state.
    pub requires: Vec<ConceptRequirement>,
    /// Probability a review of a qualifying entity mentions the concept.
    pub mention_prob: f64,
    /// Index of the attribute a human labeller would call "closest"
    /// (the Table 8 gold label).
    pub gold_aspect: usize,
}

/// A full domain schema: the subjective aspects plus latent concepts.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Domain name ("hotel" / "restaurant" / "laptop").
    pub name: String,
    /// Subjective aspects, in attribute-index order.
    pub aspects: Vec<AspectSpec>,
    /// Latent concepts.
    pub concepts: Vec<ConceptSpec>,
    /// Filler sentences by polarity: (positive, neutral, negative).
    pub filler: (Vec<String>, Vec<String>, Vec<String>),
}

impl DomainSpec {
    /// Index of the aspect named `name`.
    pub fn aspect_index(&self, name: &str) -> Option<usize> {
        self.aspects.iter().position(|a| a.name == name)
    }
}

/// An entity (hotel or restaurant) with latent subjective state and
/// objective attributes.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense id.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// City (hotels: London/Amsterdam; restaurants: Toronto).
    pub city: String,
    /// Price per night (hotels) or typical bill (restaurants).
    pub price: f64,
    /// Yelp-style price range 1..=4 (restaurants; hotels derive from price).
    pub price_range: u8,
    /// Cuisine (restaurants) or empty (hotels).
    pub cuisine: String,
    /// Room capacity (hotels) or seat count (restaurants).
    pub capacity: u32,
    /// Latent per-aspect quality θ ∈ [0,1], indexed like `DomainSpec::aspects`.
    pub quality: Vec<f64>,
    /// Dominant category per aspect (0 for linear aspects).
    pub category: Vec<usize>,
    /// Published star rating in [1, 5] (derived from θ with noise).
    pub rating: f64,
    /// "Scraped" per-aspect ratings in [1, 5] — what booking.com exposes;
    /// used by the attribute-based baseline.
    pub aspect_ratings: Vec<f64>,
}

impl Entity {
    /// True when the entity's latent state satisfies `req`.
    pub fn meets(&self, req: &ConceptRequirement) -> bool {
        match *req {
            ConceptRequirement::MinQuality(aspect, min) => self.quality[aspect] >= min,
            ConceptRequirement::Category(aspect, cat) => self.category[aspect] == cat,
        }
    }

    /// True when every requirement of `concept` holds.
    pub fn has_concept(&self, concept: &ConceptSpec) -> bool {
        concept.requires.iter().all(|r| self.meets(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_builder_roundtrip() {
        let a = AspectSpec::linear(
            "cleanliness",
            &["room"],
            &[("dirty", 0.1), ("clean", 0.8)],
            0.5,
        )
        .with_high_queries(&["clean rooms"]);
        assert!(a.kind.is_linear());
        assert_eq!(a.kind.phrases(), vec!["dirty", "clean"]);
        assert_eq!(a.queries.len(), 1);
    }

    #[test]
    fn categorical_builder_roundtrip() {
        let a = AspectSpec::categorical(
            "style",
            &["bathroom"],
            &["old", "luxurious"],
            &[("old-fashioned", 0, -0.2), ("luxurious", 1, 0.8)],
            0.4,
        )
        .with_category_query("luxurious bathrooms", 1);
        assert!(!a.kind.is_linear());
        match &a.queries[0].direction {
            QueryDirection::Category(c) => assert_eq!(*c, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_concept_requirements() {
        let e = Entity {
            id: 0,
            name: "H".into(),
            city: "London".into(),
            price: 100.0,
            price_range: 2,
            cuisine: String::new(),
            capacity: 10,
            quality: vec![0.9, 0.2],
            category: vec![0, 3],
            rating: 4.0,
            aspect_ratings: vec![4.5, 2.0],
        };
        assert!(e.meets(&ConceptRequirement::MinQuality(0, 0.8)));
        assert!(!e.meets(&ConceptRequirement::MinQuality(1, 0.8)));
        assert!(e.meets(&ConceptRequirement::Category(1, 3)));
        let concept = ConceptSpec {
            name: "romantic".into(),
            mention_phrases: vec![],
            queries: vec![],
            requires: vec![
                ConceptRequirement::MinQuality(0, 0.8),
                ConceptRequirement::Category(1, 3),
            ],
            mention_prob: 0.3,
            gold_aspect: 0,
        };
        assert!(e.has_concept(&concept));
    }
}
