//! The Table 3 user-survey simulator.
//!
//! The paper ran an MTurk study: 30 workers per domain each list 7 search
//! criteria, which the authors labelled subjective or objective. We cannot
//! re-run MTurk, so we simulate respondents drawing from per-domain
//! criterion banks whose subjective/objective composition encodes the
//! study's finding; the *analysis* code (sampling, counting, percentage) is
//! the same computation the paper performs over its responses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One survey domain with its criterion bank.
#[derive(Debug, Clone)]
pub struct SurveyDomain {
    /// Domain name as in Table 3.
    pub name: &'static str,
    /// `(criterion, is_subjective)` bank.
    pub criteria: Vec<(&'static str, bool)>,
}

/// Result row: domain, % subjective, example subjective criteria.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Domain name.
    pub domain: &'static str,
    /// Percentage of listed criteria judged subjective.
    pub pct_subjective: f64,
    /// A few example subjective criteria that respondents listed.
    pub examples: Vec<String>,
}

/// The seven survey domains of Table 3.
pub fn survey_domains() -> Vec<SurveyDomain> {
    // Bank compositions are tuned so sampled percentages land near the
    // paper's: Hotel 69.0, Restaurant 64.3, Vacation 82.6, College 77.4,
    // Home 68.8, Career 65.8, Car 56.0.
    vec![
        SurveyDomain {
            name: "Hotel",
            criteria: vec![
                ("cleanliness", true),
                ("comfortable beds", true),
                ("good food", true),
                ("friendly staff", true),
                ("quiet rooms", true),
                ("nice views", true),
                ("relaxing atmosphere", true),
                ("good service", true),
                ("safety feeling", true),
                ("location", false),
                ("wifi available", false),
                ("parking", false),
                ("pool", false),
            ],
        },
        SurveyDomain {
            name: "Restaurant",
            criteria: vec![
                ("food quality", true),
                ("ambiance", true),
                ("variety", true),
                ("service", true),
                ("cleanliness", true),
                ("portion generosity", true),
                ("romantic setting", true),
                ("location", false),
                ("cuisine type", false),
                ("opening hours", false),
                ("parking", false),
            ],
        },
        SurveyDomain {
            name: "Vacation",
            criteria: vec![
                ("weather", true),
                ("safety", true),
                ("culture", true),
                ("nightlife", true),
                ("beauty of scenery", true),
                ("relaxation", true),
                ("friendliness of locals", true),
                ("food scene", true),
                ("adventure options", true),
                ("flight duration", false),
                ("visa requirements", false),
            ],
        },
        SurveyDomain {
            name: "College",
            criteria: vec![
                ("dorm quality", true),
                ("faculty quality", true),
                ("diversity", true),
                ("campus vibe", true),
                ("social life", true),
                ("teaching style", true),
                ("career support", true),
                ("tuition", false),
                ("location", false),
                ("class size", false),
            ],
        },
        SurveyDomain {
            name: "Home",
            criteria: vec![
                ("space feeling", true),
                ("good schools", true),
                ("quiet neighborhood", true),
                ("safety", true),
                ("charm", true),
                ("natural light", true),
                ("neighbors", true),
                ("price", false),
                ("bedrooms", false),
                ("square footage", false),
                ("commute distance", false),
            ],
        },
        SurveyDomain {
            name: "Career",
            criteria: vec![
                ("work-life balance", true),
                ("colleagues", true),
                ("culture", true),
                ("growth opportunities", true),
                ("meaningful work", true),
                ("management quality", true),
                ("salary", false),
                ("benefits", false),
                ("remote policy", false),
                ("title", false),
            ],
        },
        SurveyDomain {
            name: "Car",
            criteria: vec![
                ("comfortable ride", true),
                ("safety feeling", true),
                ("reliability", true),
                ("styling", true),
                ("fun to drive", true),
                ("fuel economy", false),
                ("price", false),
                ("cargo space", false),
                ("warranty", false),
            ],
        },
    ]
}

/// Simulates the survey: `workers` respondents × `criteria_per_worker`
/// criteria per domain, then computes the percentage judged subjective.
pub fn run_survey(workers: usize, criteria_per_worker: usize, seed: u64) -> Vec<SurveyRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    survey_domains()
        .into_iter()
        .map(|domain| {
            let mut subjective = 0usize;
            let mut total = 0usize;
            let mut examples: Vec<String> = Vec::new();
            for _ in 0..workers {
                // Each worker samples distinct criteria from the bank.
                let mut bank = domain.criteria.clone();
                for _ in 0..criteria_per_worker.min(bank.len()) {
                    let idx = rng.gen_range(0..bank.len());
                    let (criterion, is_subj) = bank.swap_remove(idx);
                    total += 1;
                    if is_subj {
                        subjective += 1;
                        if examples.len() < 4 && !examples.iter().any(|e| e == criterion) {
                            examples.push(criterion.to_string());
                        }
                    }
                }
            }
            SurveyRow {
                domain: domain.name,
                pct_subjective: 100.0 * subjective as f64 / total.max(1) as f64,
                examples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_covers_seven_domains() {
        let rows = run_survey(30, 7, 42);
        assert_eq!(rows.len(), 7);
        let names: Vec<&str> = rows.iter().map(|r| r.domain).collect();
        assert!(names.contains(&"Hotel"));
        assert!(names.contains(&"Car"));
    }

    #[test]
    fn majorities_are_subjective_in_every_domain() {
        // The paper's core finding: a significant share of criteria are
        // subjective in all seven domains (min 56% for Car).
        for row in run_survey(30, 7, 42) {
            assert!(
                row.pct_subjective > 50.0,
                "{}: {}",
                row.domain,
                row.pct_subjective
            );
            assert!(row.pct_subjective < 95.0);
        }
    }

    #[test]
    fn vacation_is_most_subjective_car_least() {
        let rows = run_survey(30, 7, 42);
        let get = |n: &str| rows.iter().find(|r| r.domain == n).unwrap().pct_subjective;
        assert!(get("Vacation") > get("Car"));
    }

    #[test]
    fn examples_are_populated() {
        for row in run_survey(30, 7, 42) {
            assert!(!row.examples.is_empty(), "{} has no examples", row.domain);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run_survey(30, 7, 7);
        let b = run_survey(30, 7, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pct_subjective, y.pct_subjective);
        }
    }
}
