//! The hotel domain: 15 subjective aspects (the paper reports 15 attributes
//! for hotels, Sec. 4.2) with phrase banks, query predicates, and latent
//! concepts, modelled on the Booking.com schema of Fig. 2.

use crate::spec::{AspectSpec, ConceptRequirement, ConceptSpec, DomainSpec};

/// Aspect indices, fixed by construction order (handy for tests/benches).
pub mod aspect {
    /// `room_cleanliness`
    pub const CLEANLINESS: usize = 0;
    /// `bathroom_style` (categorical)
    pub const BATHROOM_STYLE: usize = 1;
    /// `service`
    pub const SERVICE: usize = 2;
    /// `bed_comfort`
    pub const BED_COMFORT: usize = 3;
    /// `room_quietness`
    pub const QUIETNESS: usize = 4;
    /// `breakfast`
    pub const BREAKFAST: usize = 5;
    /// `staff`
    pub const STAFF: usize = 6;
    /// `location`
    pub const LOCATION: usize = 7;
    /// `wifi`
    pub const WIFI: usize = 8;
    /// `amenities`
    pub const AMENITIES: usize = 9;
    /// `value`
    pub const VALUE: usize = 10;
    /// `bar`
    pub const BAR: usize = 11;
    /// `view`
    pub const VIEW: usize = 12;
    /// `food`
    pub const FOOD: usize = 13;
    /// `bathroom_cleanliness`
    pub const BATHROOM_CLEAN: usize = 14;
}

/// Bathroom style category indices.
pub mod bathroom_style {
    /// old
    pub const OLD: usize = 0;
    /// standard
    pub const STANDARD: usize = 1;
    /// modern
    pub const MODERN: usize = 2;
    /// luxurious
    pub const LUXURIOUS: usize = 3;
}

/// Builds the hotel [`DomainSpec`].
pub fn hotel_spec() -> DomainSpec {
    let aspects = vec![
        AspectSpec::linear(
            "room_cleanliness",
            &["room", "carpet", "bedroom", "floor", "furniture", "linen"],
            &[
                ("filthy", 0.02),
                ("disgusting", 0.04),
                ("very dirty", 0.08),
                ("grimy", 0.12),
                ("dirty", 0.18),
                ("stained", 0.22),
                ("dusty", 0.3),
                ("a bit dirty", 0.38),
                ("average", 0.5),
                ("ok", 0.52),
                ("tidy", 0.62),
                ("clean", 0.72),
                ("very clean", 0.85),
                ("spotless", 0.93),
                ("immaculate", 0.97),
            ],
            0.6,
        )
        .with_high_queries(&[
            "clean rooms",
            "has really clean rooms",
            "spotless rooms",
            "immaculate bedroom",
            "very clean room",
            "meticulously clean rooms",
            "rooms without dust",
            "a tidy room",
            "fresh and clean rooms",
            "clean carpet",
        ]),
        AspectSpec::categorical(
            "bathroom_style",
            &["bathroom", "shower", "bathtub", "faucet"],
            &["old", "standard", "modern", "luxurious"],
            &[
                ("old", bathroom_style::OLD, -0.25),
                ("old-fashioned", bathroom_style::OLD, -0.2),
                ("dated", bathroom_style::OLD, -0.3),
                ("worn", bathroom_style::OLD, -0.35),
                ("standard", bathroom_style::STANDARD, 0.05),
                ("basic", bathroom_style::STANDARD, -0.05),
                ("adequate", bathroom_style::STANDARD, 0.1),
                ("ok", bathroom_style::STANDARD, 0.05),
                ("modern", bathroom_style::MODERN, 0.5),
                ("sleek", bathroom_style::MODERN, 0.5),
                ("renovated", bathroom_style::MODERN, 0.45),
                ("stylish", bathroom_style::MODERN, 0.55),
                ("luxurious", bathroom_style::LUXURIOUS, 0.85),
                ("five-star", bathroom_style::LUXURIOUS, 0.85),
                ("marble", bathroom_style::LUXURIOUS, 0.6),
                ("extravagant", bathroom_style::LUXURIOUS, 0.7),
            ],
            0.35,
        )
        .with_category_query("luxurious bathrooms", bathroom_style::LUXURIOUS)
        .with_category_query("has a luxurious bathroom", bathroom_style::LUXURIOUS)
        .with_category_query("modern bathroom", bathroom_style::MODERN)
        .with_category_query("sleek modern shower", bathroom_style::MODERN)
        .with_category_query("marble bathtub", bathroom_style::LUXURIOUS)
        .with_category_query("renovated stylish bathroom", bathroom_style::MODERN),
        AspectSpec::linear(
            "service",
            &["service", "concierge", "reception", "check-in"],
            &[
                ("very bad", 0.05),
                ("terrible", 0.08),
                ("bad", 0.18),
                ("slow", 0.28),
                ("indifferent", 0.38),
                ("average", 0.5),
                ("decent", 0.58),
                ("good", 0.68),
                ("attentive", 0.78),
                ("excellent", 0.88),
                ("exceptional", 0.95),
                ("outstanding", 0.97),
            ],
            0.5,
        )
        .with_high_queries(&[
            "excellent service",
            "exceptional service",
            "great customer service",
            "attentive concierge",
            "fast check-in",
            "good service",
            "helpful concierge",
            "outstanding service",
            "top notch service",
            "service that goes the extra mile",
        ]),
        AspectSpec::linear(
            "bed_comfort",
            &["bed", "mattress", "pillow", "bedding"],
            &[
                ("worn-out", 0.05),
                ("lumpy", 0.1),
                ("very hard", 0.18),
                ("uncomfortable", 0.22),
                ("too soft", 0.32),
                ("ok", 0.5),
                ("firm", 0.6),
                ("comfortable", 0.72),
                ("comfy", 0.75),
                ("very comfortable", 0.85),
                ("heavenly", 0.95),
            ],
            0.5,
        )
        .with_high_queries(&[
            "comfortable beds",
            "has firm beds",
            "comfy mattress",
            "very comfortable bed",
            "soft pillows",
            "great bedding",
            "a bed you sink into",
            "heavenly beds",
        ]),
        AspectSpec::linear(
            "room_quietness",
            &["room", "street", "night", "walls"],
            &[
                ("unbearably noisy", 0.03),
                ("very noisy", 0.08),
                ("constant noise", 0.12),
                ("traffic noise", 0.18),
                ("noisy", 0.22),
                ("loud", 0.28),
                ("annoying", 0.32),
                ("thin walls", 0.35),
                ("some noise", 0.45),
                ("fairly quiet", 0.62),
                ("quiet", 0.75),
                ("very quiet", 0.85),
                ("peaceful", 0.92),
                ("silent", 0.95),
            ],
            0.45,
        )
        .with_high_queries(&[
            "quiet room",
            "a quiet place to sleep",
            "peaceful nights",
            "very quiet rooms",
            "no street noise",
            "silent at night",
            "calm and peaceful room",
            "thick walls no noise",
        ]),
        AspectSpec::linear(
            "breakfast",
            &["breakfast", "buffet", "coffee", "croissants"],
            &[
                ("inedible", 0.05),
                ("terrible", 0.1),
                ("stale", 0.18),
                ("cold", 0.25),
                ("bland", 0.32),
                ("limited", 0.4),
                ("average", 0.5),
                ("decent", 0.6),
                ("good", 0.7),
                ("fresh", 0.78),
                ("delicious", 0.88),
                ("amazing", 0.95),
            ],
            0.45,
        )
        .with_high_queries(&[
            "good breakfast",
            "delicious breakfast",
            "great breakfast buffet",
            "fresh croissants",
            "amazing coffee",
            "rich breakfast choices",
            "breakfast worth waking up for",
            "tasty morning buffet",
        ]),
        AspectSpec::linear(
            "staff",
            &["staff", "receptionist", "housekeeping", "porter"],
            &[
                ("hostile", 0.03),
                ("rude", 0.08),
                ("unfriendly", 0.15),
                ("cold", 0.25),
                ("indifferent", 0.35),
                ("ok", 0.5),
                ("polite", 0.62),
                ("friendly", 0.72),
                ("helpful", 0.78),
                ("very kind", 0.85),
                ("wonderful", 0.92),
                ("went above and beyond", 0.97),
            ],
            0.55,
        )
        .with_high_queries(&[
            "friendly staff",
            "helpful staff",
            "kind receptionist",
            "welcoming staff",
            "staff that cares",
            "very kind staff",
            "polite housekeeping",
            "warm welcome",
        ]),
        AspectSpec::linear(
            "location",
            &["location", "area", "neighborhood", "surroundings"],
            &[
                ("dangerous", 0.05),
                ("sketchy", 0.12),
                ("far from everything", 0.18),
                ("inconvenient", 0.25),
                ("remote", 0.32),
                ("average", 0.5),
                ("convenient", 0.65),
                ("good", 0.7),
                ("central", 0.78),
                ("great", 0.85),
                ("perfect", 0.93),
                ("unbeatable", 0.97),
            ],
            0.5,
        )
        .with_high_queries(&[
            "nice location",
            "great location",
            "central location",
            "close to attractions",
            "convenient area",
            "perfect location for sightseeing",
            "walkable neighborhood",
            "in the middle of everything",
        ]),
        AspectSpec::linear(
            "wifi",
            &["wifi", "internet", "connection"],
            &[
                ("broken", 0.05),
                ("unusable", 0.1),
                ("very slow", 0.18),
                ("spotty", 0.28),
                ("unreliable", 0.35),
                ("ok", 0.5),
                ("decent", 0.6),
                ("stable", 0.7),
                ("fast", 0.8),
                ("blazing fast", 0.92),
            ],
            0.3,
        )
        .with_high_queries(&[
            "fast wifi",
            "reliable internet",
            "stable connection",
            "good wifi for work",
            "strong wifi signal",
            "fast and reliable wifi",
        ]),
        AspectSpec::linear(
            "amenities",
            &["pool", "gym", "spa", "facilities", "parking"],
            &[
                ("nonexistent", 0.05),
                ("closed", 0.12),
                ("rundown", 0.2),
                ("outdated", 0.3),
                ("limited", 0.4),
                ("average", 0.5),
                ("decent", 0.6),
                ("good", 0.7),
                ("well-equipped", 0.8),
                ("excellent", 0.9),
                ("world-class", 0.96),
            ],
            0.35,
        )
        .with_high_queries(&[
            "nice pool",
            "good gym",
            "relaxing spa",
            "well-equipped facilities",
            "easy parking",
            "great fitness center",
            "heated swimming pool",
        ]),
        AspectSpec::linear(
            "value",
            &["price", "value", "rate", "cost"],
            &[
                ("a ripoff", 0.05),
                ("overpriced", 0.15),
                ("expensive", 0.28),
                ("pricey", 0.35),
                ("fair", 0.55),
                ("reasonable", 0.65),
                ("good value", 0.75),
                ("a bargain", 0.85),
                ("unbeatable value", 0.95),
            ],
            0.35,
        )
        .with_high_queries(&[
            "good value for money",
            "reasonable price",
            "worth the price",
            "fair rates",
            "a real bargain",
            "affordable comfort",
        ]),
        AspectSpec::linear(
            "bar",
            &["bar", "lounge", "rooftop bar", "cocktails"],
            &[
                ("closed", 0.08),
                ("dead", 0.15),
                ("boring", 0.25),
                ("empty", 0.32),
                ("average", 0.5),
                ("cozy", 0.62),
                ("nice", 0.68),
                ("fun", 0.75),
                ("lively", 0.85),
                ("buzzing", 0.92),
            ],
            0.25,
        )
        .with_high_queries(&[
            "a lively bar scene",
            "fun hotel bar",
            "great cocktails",
            "buzzing rooftop bar",
            "cozy lounge",
            "a bar with atmosphere",
        ]),
        AspectSpec::linear(
            "view",
            &["view", "window", "scenery", "skyline"],
            &[
                ("a brick wall", 0.05),
                ("depressing", 0.12),
                ("blocked", 0.2),
                ("nothing special", 0.4),
                ("ok", 0.5),
                ("pleasant", 0.62),
                ("nice", 0.7),
                ("lovely", 0.78),
                ("stunning", 0.9),
                ("breathtaking", 0.96),
            ],
            0.3,
        )
        .with_high_queries(&[
            "stunning views",
            "nice view from the room",
            "breathtaking skyline view",
            "lovely scenery",
            "room with a view",
            "panoramic city views",
        ]),
        AspectSpec::linear(
            "food",
            &["dinner", "food", "room service", "restaurant"],
            &[
                ("inedible", 0.05),
                ("awful", 0.1),
                ("bland", 0.25),
                ("mediocre", 0.38),
                ("average", 0.5),
                ("decent", 0.6),
                ("good", 0.7),
                ("tasty", 0.78),
                ("delicious", 0.88),
                ("exquisite", 0.95),
            ],
            0.3,
        )
        .with_high_queries(&[
            "delicious food",
            "good dinner options",
            "tasty room service",
            "great hotel restaurant",
            "exquisite dining",
            "multiple eating options",
        ]),
        AspectSpec::linear(
            "bathroom_cleanliness",
            &["bathroom", "shower", "toilet", "sink"],
            &[
                ("moldy", 0.05),
                ("filthy", 0.08),
                ("smelly", 0.15),
                ("dirty", 0.22),
                ("grubby", 0.3),
                ("average", 0.5),
                ("clean", 0.7),
                ("very clean", 0.85),
                ("sparkling", 0.92),
                ("spotless", 0.95),
            ],
            0.35,
        )
        .with_high_queries(&[
            "clean bathroom",
            "spotless shower",
            "sparkling clean bathroom",
            "hygienic bathroom",
            "very clean toilet",
            "fresh smelling bathroom",
        ]),
    ];

    let concepts = vec![
        ConceptSpec {
            name: "romantic getaway".into(),
            mention_phrases: vec![
                "a perfect romantic getaway".into(),
                "so romantic".into(),
                "ideal for a romantic weekend".into(),
                "we came here for a romantic escape".into(),
            ],
            queries: vec![
                "is a romantic getaway".into(),
                "romantic hotel for couples".into(),
                "a romantic escape".into(),
            ],
            requires: vec![
                ConceptRequirement::MinQuality(aspect::SERVICE, 0.75),
                ConceptRequirement::Category(aspect::BATHROOM_STYLE, bathroom_style::LUXURIOUS),
            ],
            mention_prob: 0.3,
            gold_aspect: aspect::SERVICE,
        },
        ConceptSpec {
            name: "anniversary".into(),
            mention_phrases: vec![
                "we celebrated our anniversary here".into(),
                "perfect for our anniversary".into(),
                "made our anniversary special".into(),
            ],
            queries: vec![
                "for our anniversary".into(),
                "anniversary celebration".into(),
            ],
            requires: vec![
                ConceptRequirement::MinQuality(aspect::SERVICE, 0.75),
                ConceptRequirement::MinQuality(aspect::STAFF, 0.7),
            ],
            mention_prob: 0.2,
            gold_aspect: aspect::STAFF,
        },
        ConceptSpec {
            name: "kid friendly".into(),
            mention_phrases: vec![
                "very kid friendly".into(),
                "great with our kids".into(),
                "the children loved it".into(),
            ],
            queries: vec![
                "kid friendly hotel".into(),
                "good for families with children".into(),
            ],
            requires: vec![
                ConceptRequirement::MinQuality(aspect::STAFF, 0.7),
                ConceptRequirement::MinQuality(aspect::AMENITIES, 0.6),
            ],
            mention_prob: 0.25,
            gold_aspect: aspect::STAFF,
        },
        ConceptSpec {
            name: "business travel".into(),
            mention_phrases: vec![
                "great for business trips".into(),
                "ideal for a work stay".into(),
            ],
            queries: vec!["good for business travelers".into()],
            requires: vec![
                ConceptRequirement::MinQuality(aspect::WIFI, 0.7),
                ConceptRequirement::MinQuality(aspect::LOCATION, 0.6),
            ],
            mention_prob: 0.2,
            gold_aspect: aspect::WIFI,
        },
        ConceptSpec {
            name: "motorcyclists".into(),
            mention_phrases: vec![
                "secure parking for our motorcycles".into(),
                "great for motorcyclists".into(),
            ],
            queries: vec!["good for motorcyclists".into()],
            requires: vec![ConceptRequirement::MinQuality(aspect::AMENITIES, 0.7)],
            mention_prob: 0.03,
            gold_aspect: aspect::AMENITIES,
        },
    ];

    let filler = (
        vec![
            "would definitely come back".into(),
            "we loved our stay".into(),
            "highly recommended".into(),
            "a wonderful stay overall".into(),
        ],
        vec![
            "we stayed for three nights".into(),
            "checked in late in the evening".into(),
            "the hotel is near the station".into(),
            "we booked through the website".into(),
        ],
        vec![
            "we will not be returning".into(),
            "quite disappointing overall".into(),
            "not what we expected".into(),
            "would not recommend".into(),
        ],
    );

    DomainSpec {
        name: "hotel".into(),
        aspects,
        concepts,
        filler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_fifteen_aspects() {
        let spec = hotel_spec();
        assert_eq!(spec.aspects.len(), 15, "paper reports 15 hotel attributes");
    }

    #[test]
    fn aspect_indices_match_names() {
        let spec = hotel_spec();
        assert_eq!(spec.aspects[aspect::CLEANLINESS].name, "room_cleanliness");
        assert_eq!(spec.aspects[aspect::BATHROOM_STYLE].name, "bathroom_style");
        assert_eq!(spec.aspects[aspect::QUIETNESS].name, "room_quietness");
        assert_eq!(
            spec.aspects[aspect::BATHROOM_CLEAN].name,
            "bathroom_cleanliness"
        );
    }

    #[test]
    fn linear_opinions_are_quality_sorted_or_at_least_bounded() {
        let spec = hotel_spec();
        for a in &spec.aspects {
            if let crate::spec::AspectKind::Linear { opinions } = &a.kind {
                for (p, q) in opinions {
                    assert!((0.0..=1.0).contains(q), "{p} quality {q} out of range");
                }
                assert!(opinions.len() >= 8, "{} bank too small", a.name);
            }
        }
    }

    #[test]
    fn every_aspect_has_queries_or_is_categorical_with_queries() {
        let spec = hotel_spec();
        for a in &spec.aspects {
            assert!(!a.queries.is_empty(), "{} has no queries", a.name);
        }
    }

    #[test]
    fn concepts_reference_valid_aspects() {
        let spec = hotel_spec();
        for c in &spec.concepts {
            assert!(c.gold_aspect < spec.aspects.len());
            for r in &c.requires {
                match *r {
                    ConceptRequirement::MinQuality(a, t) => {
                        assert!(a < spec.aspects.len());
                        assert!((0.0..=1.0).contains(&t));
                    }
                    ConceptRequirement::Category(a, cat) => match &spec.aspects[a].kind {
                        crate::spec::AspectKind::Categorical { categories, .. } => {
                            assert!(cat < categories.len());
                        }
                        _ => panic!("category requirement on linear aspect"),
                    },
                }
            }
        }
    }

    #[test]
    fn romantic_getaway_matches_paper_example() {
        // The paper interprets "is a romantic getaway" as exceptional
        // service ⊕ luxurious bathrooms; our latent concept encodes that.
        let spec = hotel_spec();
        let romantic = &spec.concepts[0];
        assert_eq!(romantic.name, "romantic getaway");
        assert_eq!(romantic.requires.len(), 2);
    }
}
