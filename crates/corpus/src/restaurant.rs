//! The restaurant domain: 11 subjective aspects (the paper reports 11
//! attributes for restaurants, Sec. 4.2) modelled on the Yelp Toronto data.

use crate::spec::{AspectSpec, ConceptRequirement, ConceptSpec, DomainSpec};

/// Aspect indices, fixed by construction order.
pub mod aspect {
    /// `food`
    pub const FOOD: usize = 0;
    /// `service`
    pub const SERVICE: usize = 1;
    /// `vibe` (ambience) — categorical
    pub const VIBE: usize = 2;
    /// `staff`
    pub const STAFF: usize = 3;
    /// `cleanliness`
    pub const CLEANLINESS: usize = 4;
    /// `drinks`
    pub const DRINKS: usize = 5;
    /// `portions`
    pub const PORTIONS: usize = 6;
    /// `wait_time`
    pub const WAIT_TIME: usize = 7;
    /// `noise`
    pub const NOISE: usize = 8;
    /// `table` (seating)
    pub const TABLE: usize = 9;
    /// `general`
    pub const GENERAL: usize = 10;
}

/// Vibe category indices.
pub mod vibe {
    /// casual
    pub const CASUAL: usize = 0;
    /// romantic
    pub const ROMANTIC: usize = 1;
    /// trendy
    pub const TRENDY: usize = 2;
    /// family
    pub const FAMILY: usize = 3;
}

/// Builds the restaurant [`DomainSpec`].
pub fn restaurant_spec() -> DomainSpec {
    let aspects = vec![
        AspectSpec::linear(
            "food",
            &["food", "dish", "sushi", "pasta", "flavors", "menu"],
            &[
                ("inedible", 0.03),
                ("disgusting", 0.06),
                ("awful", 0.1),
                ("bland", 0.22),
                ("mediocre", 0.35),
                ("average", 0.5),
                ("decent", 0.58),
                ("good", 0.68),
                ("tasty", 0.75),
                ("fresh", 0.78),
                ("delicious", 0.88),
                ("incredible", 0.94),
                ("exquisite", 0.97),
            ],
            0.85,
        )
        .with_high_queries(&[
            "delicious food",
            "tasty food",
            "serves delicious food",
            "fresh ingredients",
            "amazing dishes",
            "incredible flavors",
            "food to die for",
            "authentic cooking",
            "great menu",
            "mouthwatering dishes",
            "exquisite plates",
            "good options",
        ]),
        AspectSpec::linear(
            "service",
            &["service", "waiter", "server"],
            &[
                ("insulting", 0.04),
                ("terrible", 0.08),
                ("rude", 0.15),
                ("slow", 0.28),
                ("forgetful", 0.35),
                ("average", 0.5),
                ("fine", 0.55),
                ("good", 0.68),
                ("attentive", 0.78),
                ("excellent", 0.88),
                ("impeccable", 0.95),
            ],
            0.6,
        )
        .with_high_queries(&[
            "great service",
            "attentive waiters",
            "excellent service",
            "quick friendly service",
            "impeccable table service",
            "servers who care",
            "good service",
        ]),
        AspectSpec::categorical(
            "vibe",
            &["atmosphere", "ambience", "vibe", "decor"],
            &["casual", "romantic", "trendy", "family"],
            &[
                ("laid-back", vibe::CASUAL, 0.35),
                ("casual", vibe::CASUAL, 0.3),
                ("relaxed", vibe::CASUAL, 0.45),
                ("easygoing", vibe::CASUAL, 0.4),
                ("romantic", vibe::ROMANTIC, 0.7),
                ("intimate", vibe::ROMANTIC, 0.6),
                ("candlelit", vibe::ROMANTIC, 0.6),
                ("quiet place", vibe::ROMANTIC, 0.5),
                ("trendy", vibe::TRENDY, 0.5),
                ("hip", vibe::TRENDY, 0.45),
                ("buzzing", vibe::TRENDY, 0.4),
                ("stylish", vibe::TRENDY, 0.55),
                ("family-friendly", vibe::FAMILY, 0.5),
                ("welcoming to kids", vibe::FAMILY, 0.45),
                ("homey", vibe::FAMILY, 0.45),
            ],
            0.5,
        )
        .with_category_query("romantic atmosphere", vibe::ROMANTIC)
        .with_category_query("intimate candlelit dinner", vibe::ROMANTIC)
        .with_category_query("a romantic rendezvous", vibe::ROMANTIC)
        .with_category_query("trendy vibe", vibe::TRENDY)
        .with_category_query("hip and stylish spot", vibe::TRENDY)
        .with_category_query("casual relaxed atmosphere", vibe::CASUAL)
        .with_category_query("family friendly ambience", vibe::FAMILY)
        .with_category_query("laid-back vibe", vibe::CASUAL),
        AspectSpec::linear(
            "staff",
            &["staff", "host", "hostess", "chef"],
            &[
                ("hostile", 0.05),
                ("rude", 0.1),
                ("cold", 0.22),
                ("indifferent", 0.35),
                ("ok", 0.5),
                ("polite", 0.62),
                ("friendly", 0.72),
                ("very kind", 0.82),
                ("charming", 0.88),
                ("wonderful", 0.93),
            ],
            0.5,
        )
        .with_high_queries(&[
            "friendly staff",
            "kind staff",
            "welcoming host",
            "very kind staff",
            "charming hostess",
            "staff that remembers you",
        ]),
        AspectSpec::linear(
            "cleanliness",
            &["tables", "restroom", "dining room", "cutlery"],
            &[
                ("filthy", 0.05),
                ("sticky", 0.12),
                ("dirty", 0.2),
                ("greasy", 0.28),
                ("untidy", 0.38),
                ("average", 0.5),
                ("clean", 0.7),
                ("very clean", 0.85),
                ("spotless", 0.93),
            ],
            0.3,
        )
        .with_high_queries(&[
            "clean tables",
            "spotless dining room",
            "clean restrooms",
            "hygienic kitchen",
            "very clean place",
        ]),
        AspectSpec::linear(
            "drinks",
            &["drinks", "wine", "cocktails", "sake"],
            &[
                ("watered-down", 0.08),
                ("overpriced", 0.18),
                ("limited", 0.3),
                ("basic", 0.4),
                ("average", 0.5),
                ("decent", 0.6),
                ("good", 0.7),
                ("creative", 0.8),
                ("excellent", 0.88),
                ("world-class", 0.95),
            ],
            0.3,
        )
        .with_high_queries(&[
            "great cocktails",
            "good wine list",
            "creative drinks",
            "excellent sake selection",
            "well-made cocktails",
        ]),
        AspectSpec::linear(
            "portions",
            &["portions", "servings", "plates"],
            &[
                ("microscopic", 0.05),
                ("tiny", 0.12),
                ("small", 0.25),
                ("skimpy", 0.3),
                ("average", 0.5),
                ("fair", 0.58),
                ("good", 0.68),
                ("generous", 0.82),
                ("huge", 0.9),
            ],
            0.3,
        )
        .with_high_queries(&[
            "generous portions",
            "big servings",
            "huge plates",
            "filling portions",
            "good portion sizes",
        ]),
        AspectSpec::linear(
            "wait_time",
            &["wait", "line", "reservation", "seating"],
            &[
                ("endless", 0.05),
                ("ridiculous", 0.1),
                ("very long", 0.18),
                ("long", 0.28),
                ("slow", 0.35),
                ("average", 0.5),
                ("reasonable", 0.62),
                ("short", 0.75),
                ("instant", 0.9),
            ],
            0.3,
        )
        .with_high_queries(&[
            "short wait times",
            "quick seating",
            "no long lines",
            "easy reservations",
            "seated right away",
        ]),
        AspectSpec::linear(
            "noise",
            &["room", "music", "crowd"],
            &[
                ("deafening", 0.05),
                ("very loud", 0.12),
                ("loud", 0.22),
                ("noisy", 0.28),
                ("blaring music", 0.32),
                ("lively", 0.55),
                ("pleasant hum", 0.65),
                ("quiet", 0.78),
                ("peaceful", 0.88),
            ],
            0.3,
        )
        .with_high_queries(&[
            "quiet restaurant",
            "a quiet dinner spot",
            "peaceful dining",
            "not too loud",
            "conversation friendly noise level",
        ]),
        AspectSpec::linear(
            "table",
            &["table", "seats", "booth", "chairs"],
            &[
                ("broken", 0.08),
                ("wobbly", 0.15),
                ("cramped", 0.25),
                ("uncomfortable", 0.32),
                ("average", 0.5),
                ("fine", 0.58),
                ("comfortable", 0.7),
                ("spacious", 0.8),
                ("high chair", 0.72),
                ("cozy booth", 0.75),
            ],
            0.25,
        )
        .with_high_queries(&[
            "comfortable seating",
            "spacious tables",
            "cozy booths",
            "high chairs for kids",
            "comfy chairs",
        ]),
        AspectSpec::linear(
            "general",
            &["place", "spot", "experience", "restaurant"],
            &[
                ("a disaster", 0.05),
                ("awful", 0.1),
                ("disappointing", 0.25),
                ("forgettable", 0.38),
                ("average", 0.5),
                ("solid", 0.6),
                ("good", 0.68),
                ("great place", 0.8),
                ("a gem", 0.9),
                ("unforgettable", 0.95),
            ],
            0.4,
        )
        .with_high_queries(&[
            "a great place",
            "a hidden gem",
            "an unforgettable experience",
            "a solid choice",
            "worth the trip",
        ]),
    ];

    let concepts = vec![
        ConceptSpec {
            name: "dinner with kids".into(),
            mention_phrases: vec![
                "came for dinner with kids".into(),
                "they brought a high chair right away".into(),
                "perfect with children".into(),
            ],
            queries: vec!["dinner with kids".into(), "good for children".into()],
            requires: vec![
                ConceptRequirement::Category(aspect::VIBE, super::restaurant::vibe::FAMILY),
                ConceptRequirement::MinQuality(aspect::TABLE, 0.6),
            ],
            mention_prob: 0.25,
            gold_aspect: aspect::TABLE,
        },
        ConceptSpec {
            name: "private dinner".into(),
            mention_phrases: vec![
                "felt like a private dinner".into(),
                "an intimate quiet corner".into(),
            ],
            queries: vec![
                "private dinner vibe".into(),
                "a discreet intimate dinner".into(),
            ],
            requires: vec![
                ConceptRequirement::Category(aspect::VIBE, super::restaurant::vibe::ROMANTIC),
                ConceptRequirement::MinQuality(aspect::NOISE, 0.65),
            ],
            mention_prob: 0.2,
            gold_aspect: aspect::VIBE,
        },
        ConceptSpec {
            name: "public transportation".into(),
            mention_phrases: vec![
                "right next to the subway".into(),
                "easy to reach by public transportation".into(),
            ],
            queries: vec!["close to public transportation".into()],
            requires: vec![ConceptRequirement::MinQuality(aspect::GENERAL, 0.6)],
            mention_prob: 0.1,
            gold_aspect: aspect::GENERAL,
        },
        ConceptSpec {
            name: "date night".into(),
            mention_phrases: vec![
                "perfect date night spot".into(),
                "took my partner for date night".into(),
            ],
            queries: vec!["good for a date".into(), "date night restaurant".into()],
            requires: vec![
                ConceptRequirement::Category(aspect::VIBE, super::restaurant::vibe::ROMANTIC),
                ConceptRequirement::MinQuality(aspect::FOOD, 0.65),
            ],
            mention_prob: 0.25,
            gold_aspect: aspect::VIBE,
        },
    ];

    let filler = (
        vec![
            "will definitely be back".into(),
            "cannot wait to return".into(),
            "exceeded every expectation".into(),
            "one of our favourites in toronto".into(),
        ],
        vec![
            "we came on a saturday evening".into(),
            "the restaurant is on queen street".into(),
            "we ordered the tasting menu".into(),
            "parking nearby was easy".into(),
        ],
        vec![
            "we left halfway through".into(),
            "a letdown from start to finish".into(),
            "save your money".into(),
            "never again".into(),
        ],
    );

    DomainSpec {
        name: "restaurant".into(),
        aspects,
        concepts,
        filler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AspectKind;

    #[test]
    fn has_eleven_aspects() {
        let spec = restaurant_spec();
        assert_eq!(
            spec.aspects.len(),
            11,
            "paper reports 11 restaurant attributes"
        );
    }

    #[test]
    fn vibe_is_categorical_with_four_categories() {
        let spec = restaurant_spec();
        match &spec.aspects[aspect::VIBE].kind {
            AspectKind::Categorical { categories, .. } => assert_eq!(categories.len(), 4),
            _ => panic!("vibe should be categorical"),
        }
    }

    #[test]
    fn aspect_indices_match_names() {
        let spec = restaurant_spec();
        assert_eq!(spec.aspects[aspect::FOOD].name, "food");
        assert_eq!(spec.aspects[aspect::VIBE].name, "vibe");
        assert_eq!(spec.aspects[aspect::GENERAL].name, "general");
    }

    #[test]
    fn concept_requirements_are_valid() {
        let spec = restaurant_spec();
        for c in &spec.concepts {
            assert!(c.gold_aspect < spec.aspects.len());
            assert!(!c.queries.is_empty());
        }
    }

    #[test]
    fn food_is_the_most_mentioned_aspect() {
        let spec = restaurant_spec();
        let food_prob = spec.aspects[aspect::FOOD].mention_prob;
        for a in &spec.aspects {
            assert!(a.mention_prob <= food_prob);
        }
    }
}
