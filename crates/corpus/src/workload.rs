//! Query-predicate workloads with gold labels and sat rules.
//!
//! The paper "collected 190 subjective query predicates for hotels and 185
//! query predicates for restaurants" (Sec. 5.2.2) and manually labelled
//! each with its closest subjective attribute (Sec. 5.4.3). We derive the
//! banks from the domain specs and pad with intensified paraphrases to hit
//! exactly those counts; the latent sat rule of every predicate gives exact
//! ground truth for sat(q, e).

use crate::spec::{DomainSpec, Entity, QueryDirection};

/// How a predicate's ground-truth satisfaction is decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SatRule {
    /// θ of the aspect ≥ threshold.
    MinQuality(usize, f64),
    /// θ of the aspect ≤ threshold.
    MaxQuality(usize, f64),
    /// Dominant category of the aspect equals the given category.
    Category(usize, usize),
    /// All requirements of the indexed concept hold.
    Concept(usize),
}

/// One workload query predicate.
#[derive(Debug, Clone)]
pub struct WorkloadPredicate {
    /// The natural-language predicate text.
    pub text: String,
    /// The closest subjective attribute (Table 8 gold label).
    pub gold_aspect: usize,
    /// Ground-truth satisfaction rule.
    pub rule: SatRule,
}

impl WorkloadPredicate {
    /// Ground-truth sat(q, e) against the latent state.
    pub fn satisfied_by(&self, entity: &Entity, spec: &DomainSpec) -> bool {
        match self.rule {
            SatRule::MinQuality(a, t) => entity.quality[a] >= t,
            SatRule::MaxQuality(a, t) => entity.quality[a] <= t,
            SatRule::Category(a, c) => entity.category[a] == c,
            SatRule::Concept(c) => entity.has_concept(&spec.concepts[c]),
        }
    }
}

/// Builds the predicate bank for `spec`, padded/truncated to `target` items.
///
/// The paper's banks have 190 (hotel) and 185 (restaurant) predicates; see
/// [`hotel_workload`] and [`restaurant_workload`].
pub fn build_workload(spec: &DomainSpec, target: usize) -> Vec<WorkloadPredicate> {
    let mut out: Vec<WorkloadPredicate> = Vec::new();

    for (aspect_idx, aspect) in spec.aspects.iter().enumerate() {
        for q in &aspect.queries {
            let rule = match q.direction {
                QueryDirection::High(t) => SatRule::MinQuality(aspect_idx, t),
                QueryDirection::Low(t) => SatRule::MaxQuality(aspect_idx, t),
                QueryDirection::Category(c) => SatRule::Category(aspect_idx, c),
            };
            out.push(WorkloadPredicate {
                text: q.text.clone(),
                gold_aspect: aspect_idx,
                rule,
            });
        }
    }
    for (concept_idx, concept) in spec.concepts.iter().enumerate() {
        for q in &concept.queries {
            out.push(WorkloadPredicate {
                text: q.clone(),
                gold_aspect: concept.gold_aspect,
                rule: SatRule::Concept(concept_idx),
            });
        }
    }

    // Pad with deterministic paraphrases until the target count is reached.
    let prefixes = ["really ", "truly ", "definitely ", "genuinely "];
    let base_len = out.len();
    let mut round = 0usize;
    while out.len() < target {
        let source = &out[out.len() % base_len];
        let prefix = prefixes[round % prefixes.len()];
        let text = format!("{prefix}{}", source.text);
        out.push(WorkloadPredicate {
            text,
            gold_aspect: source.gold_aspect,
            rule: source.rule,
        });
        round += 1;
    }
    out.truncate(target);
    out
}

/// The 190-predicate hotel workload.
pub fn hotel_workload(spec: &DomainSpec) -> Vec<WorkloadPredicate> {
    build_workload(spec, 190)
}

/// The 185-predicate restaurant workload.
pub fn restaurant_workload(spec: &DomainSpec) -> Vec<WorkloadPredicate> {
    build_workload(spec, 185)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotel::hotel_spec;
    use crate::restaurant::restaurant_spec;

    #[test]
    fn hotel_workload_has_190_predicates() {
        let spec = hotel_spec();
        assert_eq!(hotel_workload(&spec).len(), 190);
    }

    #[test]
    fn restaurant_workload_has_185_predicates() {
        let spec = restaurant_spec();
        assert_eq!(restaurant_workload(&spec).len(), 185);
    }

    #[test]
    fn every_aspect_is_covered() {
        let spec = hotel_spec();
        let workload = hotel_workload(&spec);
        for i in 0..spec.aspects.len() {
            assert!(
                workload.iter().any(|p| p.gold_aspect == i),
                "aspect {i} has no predicates"
            );
        }
    }

    #[test]
    fn texts_are_unique() {
        let spec = hotel_spec();
        let workload = hotel_workload(&spec);
        let mut texts: Vec<&str> = workload.iter().map(|p| p.text.as_str()).collect();
        let before = texts.len();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), before, "duplicate predicate texts");
    }

    #[test]
    fn satisfaction_follows_latent_state() {
        let spec = hotel_spec();
        let workload = hotel_workload(&spec);
        let clean_pred = workload
            .iter()
            .find(|p| p.text == "clean rooms")
            .expect("clean rooms predicate");
        let mut entity = Entity {
            id: 0,
            name: "H".into(),
            city: "London".into(),
            price: 100.0,
            price_range: 1,
            cuisine: String::new(),
            capacity: 10,
            quality: vec![0.9; spec.aspects.len()],
            category: vec![0; spec.aspects.len()],
            rating: 4.5,
            aspect_ratings: vec![4.5; spec.aspects.len()],
        };
        assert!(clean_pred.satisfied_by(&entity, &spec));
        entity.quality[0] = 0.1;
        assert!(!clean_pred.satisfied_by(&entity, &spec));
    }

    #[test]
    fn concept_predicates_use_concept_rules() {
        let spec = hotel_spec();
        let workload = hotel_workload(&spec);
        let romantic = workload
            .iter()
            .find(|p| p.text.contains("romantic getaway"))
            .expect("romantic predicate");
        assert!(matches!(romantic.rule, SatRule::Concept(_)));
    }
}
