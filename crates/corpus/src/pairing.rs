//! The Appendix C pairing dataset: sentence–phrase pairs labelled with
//! whether the phrase is a correct (aspect, opinion) extraction.
//!
//! The paper constructs 1 000 training and 1 000 test sentence-phrase pairs
//! from hotel review sentences and fine-tunes BERT to 83.87% accuracy; our
//! supervised pairing model is a logistic regression over span features
//! (distance, order, interveners) trained on the same kind of data.

use crate::spec::DomainSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One pairing example over a two-opinion sentence.
#[derive(Debug, Clone)]
pub struct PairingExample {
    /// Sentence tokens.
    pub tokens: Vec<String>,
    /// Aspect span `(start, end)`, end exclusive.
    pub aspect_span: (usize, usize),
    /// Opinion span `(start, end)`, end exclusive.
    pub opinion_span: (usize, usize),
    /// True when the opinion genuinely describes the aspect.
    pub label: bool,
}

/// Generates `n` examples (≈ half positive) from two-aspect sentences of
/// the form "the {a1} was {o1} but the {a2} was {o2}".
pub fn pairing_dataset(spec: &DomainSpec, n: usize, seed: u64) -> Vec<PairingExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let a1 = rng.gen_range(0..spec.aspects.len());
        let mut a2 = rng.gen_range(0..spec.aspects.len());
        if a1 == a2 {
            a2 = (a2 + 1) % spec.aspects.len();
        }
        let term = |idx: usize, rng: &mut StdRng| {
            let a = &spec.aspects[idx];
            (
                a.aspect_terms[rng.gen_range(0..a.aspect_terms.len())].clone(),
                a.kind.phrases()[rng.gen_range(0..a.kind.phrases().len())].to_string(),
            )
        };
        let (asp1, op1) = term(a1, &mut rng);
        let (asp2, op2) = term(a2, &mut rng);

        // "the {asp1} was {op1} but the {asp2} was {op2}"
        let mut tokens: Vec<String> = Vec::new();
        let push = |tokens: &mut Vec<String>, text: &str| -> (usize, usize) {
            let start = tokens.len();
            for w in text.split_whitespace() {
                tokens.push(w.to_lowercase());
            }
            (start, tokens.len())
        };
        push(&mut tokens, "the");
        let span_a1 = push(&mut tokens, &asp1);
        push(&mut tokens, "was");
        let span_o1 = push(&mut tokens, &op1);
        push(&mut tokens, "but the");
        let span_a2 = push(&mut tokens, &asp2);
        push(&mut tokens, "was");
        let span_o2 = push(&mut tokens, &op2);

        // Positive: matched pair; negative: crossed pair.
        let positive = rng.gen_bool(0.5);
        let (aspect_span, opinion_span) = if positive {
            if rng.gen_bool(0.5) {
                (span_a1, span_o1)
            } else {
                (span_a2, span_o2)
            }
        } else if rng.gen_bool(0.5) {
            (span_a1, span_o2)
        } else {
            (span_a2, span_o1)
        };
        out.push(PairingExample {
            tokens,
            aspect_span,
            opinion_span,
            label: positive,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotel::hotel_spec;

    #[test]
    fn generates_requested_count_and_balance() {
        let data = pairing_dataset(&hotel_spec(), 1000, 3);
        assert_eq!(data.len(), 1000);
        let positives = data.iter().filter(|e| e.label).count();
        assert!((380..=620).contains(&positives), "positives={positives}");
    }

    #[test]
    fn spans_are_within_bounds_and_nonempty() {
        for e in pairing_dataset(&hotel_spec(), 200, 5) {
            assert!(e.aspect_span.0 < e.aspect_span.1);
            assert!(e.opinion_span.0 < e.opinion_span.1);
            assert!(e.aspect_span.1 <= e.tokens.len());
            assert!(e.opinion_span.1 <= e.tokens.len());
        }
    }

    #[test]
    fn positive_pairs_are_adjacent_negative_pairs_cross() {
        for e in pairing_dataset(&hotel_spec(), 300, 9) {
            let dist = (e.opinion_span.0 as i64 - e.aspect_span.1 as i64).abs();
            if e.label {
                assert!(dist <= 2, "positive pair should be near: {dist}");
            } else {
                assert!(dist > 2, "negative pair should be far: {dist}");
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = pairing_dataset(&hotel_spec(), 50, 11);
        let b = pairing_dataset(&hotel_spec(), 50, 11);
        assert_eq!(a[10].tokens, b[10].tokens);
        assert_eq!(a[10].label, b[10].label);
    }
}
