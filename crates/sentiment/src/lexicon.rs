//! A seed polarity lexicon for review text.

use std::collections::HashMap;

/// Word → polarity in `[-1, 1]`.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    scores: HashMap<String, f64>,
}

impl Lexicon {
    /// An empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in review-domain seed lexicon.
    pub fn seed() -> Self {
        let mut lex = Self::new();
        for (word, score) in SEED_ENTRIES {
            lex.insert(word, *score);
        }
        lex
    }

    /// Inserts or overwrites a word's polarity (clamped to `[-1, 1]`).
    pub fn insert(&mut self, word: &str, score: f64) {
        self.scores.insert(word.to_string(), score.clamp(-1.0, 1.0));
    }

    /// Polarity of `word`, if known.
    pub fn score(&self, word: &str) -> Option<f64> {
        self.scores.get(word).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the lexicon has no entries.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Iterates over `(word, score)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.scores.iter().map(|(w, &s)| (w.as_str(), s))
    }
}

/// Seed entries covering hotel and restaurant review vocabulary.
static SEED_ENTRIES: &[(&str, f64)] = &[
    // strongly positive
    ("spotless", 0.95),
    ("immaculate", 0.95),
    ("exceptional", 0.95),
    ("outstanding", 0.9),
    ("luxurious", 0.85),
    ("amazing", 0.9),
    ("wonderful", 0.85),
    ("excellent", 0.9),
    ("fantastic", 0.9),
    ("delicious", 0.85),
    ("perfect", 0.9),
    ("superb", 0.9),
    ("gorgeous", 0.85),
    ("heavenly", 0.85),
    ("delightful", 0.8),
    ("romantic", 0.7),
    ("charming", 0.7),
    // positive
    ("great", 0.7),
    ("good", 0.6),
    ("clean", 0.65),
    ("tidy", 0.6),
    ("comfortable", 0.65),
    ("comfy", 0.6),
    ("friendly", 0.65),
    ("helpful", 0.65),
    ("kind", 0.6),
    ("tasty", 0.65),
    ("fresh", 0.6),
    ("quiet", 0.6),
    ("peaceful", 0.65),
    ("cozy", 0.6),
    ("spacious", 0.6),
    ("modern", 0.5),
    ("soft", 0.45),
    ("nice", 0.55),
    ("lively", 0.5),
    ("lovely", 0.65),
    ("attentive", 0.6),
    ("generous", 0.6),
    ("convenient", 0.55),
    ("fast", 0.4),
    ("cheap", 0.3),
    ("affordable", 0.45),
    ("warm", 0.4),
    ("polite", 0.55),
    ("courteous", 0.6),
    ("pleasant", 0.6),
    ("relaxing", 0.65),
    // neutral-ish
    ("average", 0.0),
    ("ok", 0.05),
    ("okay", 0.05),
    ("standard", 0.05),
    ("adequate", 0.1),
    ("decent", 0.2),
    ("fine", 0.2),
    ("firm", 0.1),
    ("basic", -0.05),
    // negative
    ("dirty", -0.7),
    ("stained", -0.6),
    ("dusty", -0.5),
    ("grimy", -0.7),
    ("noisy", -0.6),
    ("loud", -0.5),
    ("annoying", -0.6),
    ("rude", -0.7),
    ("unfriendly", -0.65),
    ("slow", -0.45),
    ("cold", -0.35),
    ("stale", -0.55),
    ("bland", -0.5),
    ("cramped", -0.5),
    ("worn", -0.4),
    ("worn-out", -0.5),
    ("old", -0.2),
    ("dated", -0.35),
    ("tired", -0.35),
    ("expensive", -0.3),
    ("overpriced", -0.55),
    ("uncomfortable", -0.6),
    ("hard", -0.3),
    ("lumpy", -0.5),
    ("small", -0.25),
    ("tiny", -0.35),
    ("bad", -0.6),
    ("poor", -0.6),
    ("mediocre", -0.4),
    ("disappointing", -0.65),
    // strongly negative
    ("filthy", -0.95),
    ("disgusting", -0.9),
    ("terrible", -0.9),
    ("horrible", -0.9),
    ("awful", -0.85),
    ("dreadful", -0.85),
    ("unbearable", -0.8),
    ("broken", -0.6),
    ("moldy", -0.8),
    ("smelly", -0.7),
    ("infested", -0.95),
    ("atrocious", -0.9),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_has_expected_polarity_signs() {
        let lex = Lexicon::seed();
        assert!(lex.score("spotless").unwrap() > 0.8);
        assert!(lex.score("filthy").unwrap() < -0.8);
        assert!(lex.score("average").unwrap().abs() < 0.1);
    }

    #[test]
    fn insert_clamps_to_unit_interval() {
        let mut lex = Lexicon::new();
        lex.insert("sublime", 3.0);
        assert_eq!(lex.score("sublime"), Some(1.0));
        lex.insert("cursed", -3.0);
        assert_eq!(lex.score("cursed"), Some(-1.0));
    }

    #[test]
    fn unknown_word_is_none() {
        assert_eq!(Lexicon::seed().score("zamboni"), None);
    }

    #[test]
    fn seed_is_reasonably_sized() {
        assert!(Lexicon::seed().len() >= 90);
    }
}
