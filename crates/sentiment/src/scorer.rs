//! The `senti(·)` scorer: lexicon lookup with negation and intensifiers.

use crate::lexicon::Lexicon;
use opine_text::token::{is_intensifier, is_negation};
use opine_text::tokenize_keep_stops;

/// Lexicon-based sentiment analyzer.
///
/// Scores are the average polarity of opinion-bearing tokens after applying
/// negation flips ("not clean" → negative) and intensifier boosts ("very
/// clean" → more positive), squashed to `[-1, 1]`. This mirrors what the
/// paper gets from NLTK's analyzer: a polarity per review used in Eq. (3)
/// and for marker generation.
#[derive(Debug, Clone)]
pub struct SentimentAnalyzer {
    lexicon: Lexicon,
    /// Multiplier applied by an intensifier to the following opinion word.
    intensifier_boost: f64,
    /// How many following tokens a negation affects.
    negation_window: usize,
}

impl SentimentAnalyzer {
    /// Analyzer over the built-in seed lexicon.
    pub fn new() -> Self {
        Self::with_lexicon(Lexicon::seed())
    }

    /// Analyzer over a custom (possibly expanded) lexicon.
    pub fn with_lexicon(lexicon: Lexicon) -> Self {
        Self {
            lexicon,
            intensifier_boost: 1.35,
            negation_window: 3,
        }
    }

    /// The underlying lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Scores a phrase, sentence, or whole document in `[-1, 1]`.
    ///
    /// Returns 0.0 for text with no opinion-bearing words.
    pub fn score(&self, text: &str) -> f64 {
        let tokens = tokenize_keep_stops(text);
        let mut total = 0.0;
        let mut hits = 0usize;
        let mut negate_until: Option<usize> = None;
        let mut boost = 1.0f64;

        for (i, token) in tokens.iter().enumerate() {
            if is_negation(token) {
                negate_until = Some(i + self.negation_window);
                boost = 1.0;
                continue;
            }
            if is_intensifier(token) {
                boost *= self.intensifier_boost;
                continue;
            }
            if let Some(mut s) = self.lexicon.score(token) {
                if let Some(until) = negate_until {
                    if i <= until {
                        // Negation flips and dampens: "not clean" is bad but
                        // weaker than "dirty".
                        s *= -0.75;
                    }
                }
                total += (s * boost).clamp(-1.0, 1.0);
                hits += 1;
                boost = 1.0;
            } else if !token.chars().all(|c| c.is_ascii_punctuation()) {
                // A plain content word interrupts intensifier chains.
                boost = 1.0;
            }
        }

        if hits == 0 {
            0.0
        } else {
            (total / hits as f64).clamp(-1.0, 1.0)
        }
    }

    /// Convenience: true when `score(text) > 0`.
    pub fn is_positive(&self, text: &str) -> bool {
        self.score(text) > 0.0
    }
}

impl Default for SentimentAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative_words_score_correctly() {
        let s = SentimentAnalyzer::new();
        assert!(s.score("the room was clean") > 0.3);
        assert!(s.score("the room was filthy") < -0.5);
    }

    #[test]
    fn negation_flips_polarity() {
        let s = SentimentAnalyzer::new();
        assert!(s.score("the room was not clean") < 0.0);
        assert!(s.score("the staff was not rude") > 0.0);
    }

    #[test]
    fn intensifier_boosts_magnitude() {
        let s = SentimentAnalyzer::new();
        assert!(s.score("very clean room") > s.score("clean room"));
        assert!(s.score("very dirty room") < s.score("dirty room"));
    }

    #[test]
    fn negation_window_is_bounded() {
        let s = SentimentAnalyzer::new();
        // Negation 5 tokens before "clean" should no longer flip it.
        let far = s.score("not the hotel we found around here was clean");
        assert!(far > 0.0, "got {far}");
    }

    #[test]
    fn neutral_text_scores_zero() {
        let s = SentimentAnalyzer::new();
        assert_eq!(s.score("the hotel on the corner"), 0.0);
        assert_eq!(s.score(""), 0.0);
    }

    #[test]
    fn mixed_review_lands_between_extremes() {
        let s = SentimentAnalyzer::new();
        let mixed = s.score("clean room but rude staff");
        assert!(mixed > s.score("rude staff"));
        assert!(mixed < s.score("clean room"));
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let s = SentimentAnalyzer::new();
        for text in [
            "very very extremely spotless immaculate perfect",
            "filthy disgusting terrible awful horrible",
            "not not clean",
        ] {
            let v = s.score(text);
            assert!((-1.0..=1.0).contains(&v), "{text} → {v}");
        }
    }

    #[test]
    fn is_positive_matches_score_sign() {
        let s = SentimentAnalyzer::new();
        assert!(s.is_positive("wonderful breakfast"));
        assert!(!s.is_positive("horrible breakfast"));
    }
}
