//! Sentiment analysis substrate for OpineDB.
//!
//! The paper uses NLTK's sentiment analyzer for three things: ranking
//! reviews in the co-occurrence interpretation method (`senti(d)` in
//! Eq. (3)), sorting phrases to generate linearly-ordered markers
//! (Sec. 4.2.1), and the per-marker average-sentiment features of marker
//! summaries. This crate provides an equivalent lexicon-based analyzer:
//!
//! * [`Lexicon`] — seed polarity lexicon for review vocabulary;
//! * [`SentimentAnalyzer`] — phrase/document scorer with negation flips and
//!   intensifier boosts, returning scores in `[-1, 1]`;
//! * [`expand`] — label propagation over an embedding k-NN graph to grow
//!   the lexicon from the review corpus (Hamilton et al.-style induction).

pub mod expand;
pub mod lexicon;
pub mod scorer;

pub use expand::expand_lexicon;
pub use lexicon::Lexicon;
pub use scorer::SentimentAnalyzer;
