//! Lexicon expansion by label propagation over an embedding k-NN graph.
//!
//! Grows the seed lexicon with corpus-specific vocabulary (à la Hamilton et
//! al., "Inducing domain-specific sentiment lexicons", cited as [21] in the
//! paper): each unlabeled word receives the similarity-weighted average
//! polarity of its nearest labeled neighbours in embedding space.

use crate::lexicon::Lexicon;
use opine_embed::{cosine, Word2Vec};
use opine_text::Vocab;

/// Expands `seed` with words from `vocab` using embedding neighbourhoods.
///
/// A word gets a propagated score when its top-`k` labeled neighbours have
/// average |similarity| ≥ `min_similarity`; scores are similarity-weighted
/// means damped by 0.8 per hop (single hop here), so propagated entries are
/// never more extreme than their sources.
pub fn expand_lexicon(
    seed: &Lexicon,
    w2v: &Word2Vec,
    vocab: &Vocab,
    k: usize,
    min_similarity: f32,
) -> Lexicon {
    let mut expanded = seed.clone();

    // Collect labeled word vectors once.
    let labeled: Vec<(&str, f64, &[f32])> = vocab
        .iter()
        .filter_map(|(id, word)| seed.score(word).map(|s| (word, s, w2v.vector(id))))
        .collect();
    if labeled.is_empty() {
        return expanded;
    }

    for (id, word) in vocab.iter() {
        if seed.score(word).is_some() || w2v.count(id) == 0 {
            continue;
        }
        let wv = w2v.vector(id);
        let mut sims: Vec<(f64, f32)> = labeled
            .iter()
            .map(|(_, score, lv)| (*score, cosine(wv, lv)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        sims.truncate(k);
        let close: Vec<&(f64, f32)> = sims.iter().filter(|(_, s)| *s >= min_similarity).collect();
        if close.is_empty() {
            continue;
        }
        let weight_sum: f64 = close.iter().map(|(_, s)| *s as f64).sum();
        if weight_sum <= 0.0 {
            continue;
        }
        let score: f64 = close.iter().map(|(p, s)| p * *s as f64).sum::<f64>() / weight_sum * 0.8;
        if score.abs() >= 0.05 {
            expanded.insert(word, score);
        }
    }
    expanded
}

#[cfg(test)]
mod tests {
    use super::*;
    use opine_embed::{Word2Vec, Word2VecConfig};
    use opine_text::WordId;

    #[test]
    fn propagates_to_distributionally_similar_words() {
        let mut vocab = Vocab::new();
        // "sparkling" shares contexts with "clean"/"spotless" (labeled),
        // "grubby" shares contexts with "dirty"/"filthy" (labeled).
        let sentences = [
            vec!["room", "clean", "lovely"],
            vec!["room", "spotless", "lovely"],
            vec!["room", "sparkling", "lovely"],
            vec!["carpet", "dirty", "sadly"],
            vec!["carpet", "filthy", "sadly"],
            vec!["carpet", "grubby", "sadly"],
        ];
        let interned: Vec<Vec<WordId>> = (0..40)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 10,
                seed: 9,
                ..Default::default()
            },
        );
        let expanded = expand_lexicon(&Lexicon::seed(), &w2v, &vocab, 3, 0.2);
        let sparkling = expanded.score("sparkling");
        let grubby = expanded.score("grubby");
        if let (Some(s), Some(g)) = (sparkling, grubby) {
            assert!(
                s > g,
                "sparkling ({s}) should be more positive than grubby ({g})"
            );
        }
        // At minimum the seed must be preserved.
        assert_eq!(expanded.score("clean"), Lexicon::seed().score("clean"));
    }

    #[test]
    fn empty_seed_is_returned_unchanged() {
        let mut vocab = Vocab::new();
        vocab.intern("word");
        let w2v = Word2Vec::train(&[], vocab.len(), &Word2VecConfig::default());
        let out = expand_lexicon(&Lexicon::new(), &w2v, &vocab, 5, 0.3);
        assert!(out.is_empty());
    }

    #[test]
    fn expansion_never_shrinks_lexicon() {
        let mut vocab = Vocab::new();
        vocab.intern("clean");
        let w2v = Word2Vec::train(&[], vocab.len(), &Word2VecConfig::default());
        let seed = Lexicon::seed();
        let out = expand_lexicon(&seed, &w2v, &vocab, 5, 0.3);
        assert!(out.len() >= seed.len());
    }
}
