//! **opine-faults** — the overload/fault discipline shared by every
//! execution layer: request deadlines with cooperative cancellation, and
//! compiled-in (but env-gated) fault-injection failpoints.
//!
//! This crate sits at the bottom of the workspace DAG (it depends on
//! nothing) so `opine-ir`, `opine-store`, `opine-core`, and
//! `opine-server` can all share one notion of "this request is out of
//! time" without signature churn across the crate boundary:
//!
//! * [`Deadline`] — an `Instant`-based expiry plus a manual cancel flag.
//!   The serving layer installs one per request as a **thread-ambient**
//!   token ([`with_deadline`]); long scans sprinkle [`checkpoint`] at
//!   chunk boundaries. An expired checkpoint unwinds with the
//!   [`Cancelled`] payload, which exactly one catch site (the engine's
//!   query entry) maps to a typed `QueryTimeout` error. Unwinding —
//!   rather than threading `Result` through every hot loop — works here
//!   because the workspace's locks never poison (the `parking_lot` shim
//!   recovers poisoned std locks) and every bounded cache computes
//!   outside its lock, so a cancel can never publish a partial result.
//! * [`fire`] / [`fire_panic`] — named failpoints (`pre_ta`, `mid_wand`,
//!   `summary_merge`, `response_write`) that inject delays, errors, or
//!   panics with a configured probability. Disabled (the default) a
//!   failpoint costs one relaxed atomic load; enabled via the
//!   `OPINE_FAULTS` env var or [`configure`], they drive the chaos soak.
//!
//! ```text
//! OPINE_FAULTS="pre_ta=delay:3@0.3,mid_wand=panic@0.02,summary_merge=error@0.05"
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Deadlines and cooperative cancellation
// ---------------------------------------------------------------------------

/// A per-request budget: a wall-clock expiry plus a manual cancel flag.
///
/// Cheap to clone (one `Arc` bump) so it can cross into `par_map`
/// workers.
#[derive(Debug, Clone)]
pub struct Deadline {
    expires_at: Instant,
    cancelled: Arc<AtomicBool>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            expires_at: Instant::now() + budget,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Cancels the request immediately, regardless of remaining time.
    pub fn cancel(&self) {
        // sync: pairs with the Acquire load in expired(); everything the
        // canceller wrote before cancelling is visible to the observer.
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once the budget is spent or [`Self::cancel`] was called.
    pub fn expired(&self) -> bool {
        // sync: pairs with the Release store in cancel().
        self.cancelled.load(Ordering::Acquire) || Instant::now() >= self.expires_at
    }

    /// Time left before expiry (zero when expired).
    pub fn remaining(&self) -> Duration {
        self.expires_at.saturating_duration_since(Instant::now())
    }
}

/// The unwind payload of an expired [`checkpoint`]. Exactly one catch
/// site (the engine's query entry) downcasts to this and maps it to a
/// typed timeout error; everything else must let it pass through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

thread_local! {
    /// The ambient deadline of the request running on this thread.
    static AMBIENT: Cell<Option<Deadline>> = const { Cell::new(None) };
    /// Checkpoint stride counter: `Instant::now` is only consulted every
    /// [`CHECKPOINT_STRIDE`] calls, so hot loops can checkpoint per
    /// iteration without a clock read each time.
    static STRIDE: Cell<u32> = const { Cell::new(0) };
}

/// How many [`checkpoint`] calls between actual clock reads.
const CHECKPOINT_STRIDE: u32 = 256;

/// Restores the previous ambient deadline on scope exit — including
/// unwinds, so a cancelled request never leaks its deadline onto the
/// worker thread's next request.
struct AmbientGuard {
    previous: Option<Deadline>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|slot| slot.set(self.previous.take()));
    }
}

/// Runs `f` with `deadline` installed as this thread's ambient deadline
/// (replacing, and afterwards restoring, any previous one). `None`
/// clears the ambient deadline for the scope.
pub fn with_deadline<T>(deadline: Option<Deadline>, f: impl FnOnce() -> T) -> T {
    let previous = AMBIENT.with(|slot| slot.replace(deadline));
    let _guard = AmbientGuard { previous };
    f()
}

/// The ambient deadline, if one is installed — captured by `par_map` so
/// fan-out workers inherit the spawning request's budget.
pub fn current_deadline() -> Option<Deadline> {
    AMBIENT.with(|slot| {
        let d = slot.take();
        slot.set(d.clone());
        d
    })
}

/// Cooperative cancellation point for long scans.
///
/// Call at chunk boundaries (per TA depth, per WAND pivot, per scored
/// row, per merged entity). With no ambient deadline this is a
/// thread-local increment; with one, the clock is read every
/// [`CHECKPOINT_STRIDE`] calls and an expired deadline unwinds with
/// [`Cancelled`].
#[inline]
pub fn checkpoint() {
    let due = STRIDE.with(|c| {
        let n = c.get().wrapping_add(1);
        c.set(n % CHECKPOINT_STRIDE);
        n % CHECKPOINT_STRIDE == 0
    });
    if due {
        checkpoint_now();
    }
}

/// [`checkpoint`] without the stride: always reads the clock. Use at
/// coarse boundaries (query entry, per merge cell) where one clock read
/// is cheap relative to the work it guards.
pub fn checkpoint_now() {
    let expired = AMBIENT.with(|slot| {
        let d = slot.take();
        let expired = d.as_ref().is_some_and(Deadline::expired);
        slot.set(d);
        expired
    });
    if expired {
        std::panic::panic_any(Cancelled);
    }
}

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

/// The named failpoint sites compiled into the engine.
pub const SITES: [&str; 5] = [
    "pre_ta",
    "mid_wand",
    "summary_merge",
    "response_write",
    "mid_merge",
];

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    /// Sleep this long, then continue normally.
    Delay(Duration),
    /// Return an injected error to the caller.
    Error,
    /// Unwind with an [`InjectedPanic`] payload.
    Panic,
}

/// One configured failpoint.
#[derive(Debug, Clone)]
struct Failpoint {
    site: &'static str,
    action: Action,
    /// Trigger probability in `[0, 1]`, evaluated per visit.
    probability: f64,
}

/// The error a triggered `error`-action failpoint surfaces through
/// [`fire`]. Callers map it into their own error channel (an I/O error
/// for the response writer, a 500 via [`fire_panic`] elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint site that fired.
    pub site: &'static str,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// The unwind payload of a `panic`-action failpoint (and of
/// [`fire_panic`] on an `error` action). The serving layer's per-request
/// catch turns it into a 500 like any other panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The failpoint site that fired.
    pub site: &'static str,
}

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected panic at failpoint {:?}", self.site)
    }
}

/// Whether any failpoint is armed — the one relaxed load every
/// [`fire`] call pays when fault injection is off.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Total faults triggered (all sites, all actions) — flows into the
/// engine's `CacheReport` and the server's `/stats`.
static INJECTED: AtomicU64 = AtomicU64::new(0);
/// xorshift64* state for the per-visit probability draw. Seeded by
/// [`configure`]; deterministic for a fixed seed and visit order.
static RNG: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);

fn registry() -> &'static Mutex<Vec<Failpoint>> {
    static REGISTRY: OnceLock<Mutex<Vec<Failpoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms the failpoints in the environment's `OPINE_FAULTS` spec (no-op
/// when unset). Call once at server startup; tests use [`configure`].
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("OPINE_FAULTS") {
        if !spec.trim().is_empty() {
            let seed = std::env::var("OPINE_FAULTS_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9E3779B97F4A7C15);
            configure(&spec, seed).expect("invalid OPINE_FAULTS spec");
        }
    }
}

/// Arms failpoints from a spec string, replacing any previous
/// configuration:
///
/// ```text
/// site=action[:millis]@probability[,site=action@probability...]
/// pre_ta=delay:3@0.3,mid_wand=panic@0.02,response_write=error@0.05
/// ```
///
/// Sites must be in [`SITES`]; actions are `delay:<ms>`, `error`,
/// `panic`. `seed` makes the per-visit probability draws deterministic.
pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
    let mut points = Vec::new();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (site, rest) = part
            .trim()
            .split_once('=')
            .ok_or_else(|| format!("failpoint {part:?} missing '='"))?;
        let site = SITES
            .iter()
            .find(|&&s| s == site)
            .copied()
            .ok_or_else(|| format!("unknown failpoint site {site:?} (know {SITES:?})"))?;
        let (action, prob) = rest
            .split_once('@')
            .ok_or_else(|| format!("failpoint {part:?} missing '@probability'"))?;
        let probability: f64 = prob
            .parse()
            .map_err(|_| format!("bad probability {prob:?} in {part:?}"))?;
        if !(0.0..=1.0).contains(&probability) {
            return Err(format!("probability {probability} outside [0, 1]"));
        }
        let action = match action.split_once(':') {
            Some(("delay", ms)) => Action::Delay(Duration::from_millis(
                ms.parse()
                    .map_err(|_| format!("bad delay millis {ms:?} in {part:?}"))?,
            )),
            None if action == "error" => Action::Error,
            None if action == "panic" => Action::Panic,
            _ => return Err(format!("unknown action {action:?} in {part:?}")),
        };
        points.push(Failpoint {
            site,
            action,
            probability,
        });
    }
    let armed = !points.is_empty();
    *registry().lock().unwrap_or_else(|e| e.into_inner()) = points;
    // sync: RNG is a self-contained draw state; any interleaving of
    // seeding and draws yields a valid xorshift sequence.
    RNG.store(seed | 1, Ordering::Relaxed);
    // sync: pairs with the Acquire load in fire(); the registry mutex
    // above already ordered the configured points before arming.
    ENABLED.store(armed, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint (counters keep their totals).
pub fn clear() {
    // sync: pairs with the Acquire load in fire(); disarm is observed
    // before the registry drains.
    ENABLED.store(false, Ordering::Release);
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Total faults injected since process start.
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// xorshift64* step over the shared state; uniform in `[0, 1)`.
fn draw() -> f64 {
    // sync: self-contained draw state; the CAS loop below only needs
    // atomicity of the step, not ordering against other memory.
    let mut x = RNG.load(Ordering::Relaxed);
    loop {
        let mut y = x;
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        // sync: only the RNG word itself is contended; no other memory
        // is published through the draw.
        match RNG.compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                return (y.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
            }
            Err(cur) => x = cur,
        }
    }
}

/// Visits the failpoint `site`. Disabled: one relaxed load. Armed: a
/// probability draw per configured point at this site — a `delay`
/// sleeps (bounded by the ambient deadline's remaining budget, so an
/// injected stall cannot outlive the request), an `error` returns
/// `Err(InjectedFault)`, a `panic` unwinds with [`InjectedPanic`].
#[inline]
pub fn fire(site: &'static str) -> Result<(), InjectedFault> {
    // sync: pairs with the Release stores in configure()/clear(); an
    // armed observation sees the fully configured registry.
    if !ENABLED.load(Ordering::Acquire) {
        return Ok(());
    }
    fire_slow(site)
}

#[cold]
fn fire_slow(site: &'static str) -> Result<(), InjectedFault> {
    let action = {
        let points = registry().lock().unwrap_or_else(|e| e.into_inner());
        points
            .iter()
            .filter(|p| p.site == site)
            .find(|p| draw() < p.probability)
            .map(|p| p.action)
    };
    let Some(action) = action else { return Ok(()) };
    INJECTED.fetch_add(1, Ordering::Relaxed);
    match action {
        Action::Delay(d) => {
            let capped = match current_deadline() {
                Some(deadline) => d.min(deadline.remaining()),
                None => d,
            };
            std::thread::sleep(capped);
            Ok(())
        }
        Action::Error => Err(InjectedFault { site }),
        Action::Panic => std::panic::panic_any(InjectedPanic { site }),
    }
}

/// [`fire`] for call sites with no error channel: an `error` action
/// panics with [`InjectedPanic`] too, so the serving layer's
/// per-request catch maps both to a 500.
#[inline]
pub fn fire_panic(site: &'static str) {
    if fire(site).is_err() {
        std::panic::panic_any(InjectedPanic { site });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The failpoint registry is process-global; tests that arm it must
    /// not interleave.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn deadline_expires_and_cancels() {
        let d = Deadline::after(Duration::from_millis(5));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);

        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        d.cancel();
        assert!(d.expired(), "manual cancel expires immediately");
    }

    #[test]
    fn checkpoint_unwinds_with_cancelled_and_restores_ambient() {
        let outer = Deadline::after(Duration::from_secs(60));
        with_deadline(Some(outer), || {
            let expired = Deadline::after(Duration::ZERO);
            let payload = catch_unwind(AssertUnwindSafe(|| {
                with_deadline(Some(expired), checkpoint_now)
            }))
            .expect_err("expired deadline must unwind");
            assert!(payload.is::<Cancelled>(), "payload must be Cancelled");
            // The guard must restore the outer deadline even across the
            // unwind.
            assert!(current_deadline().is_some());
            assert!(!current_deadline().unwrap().expired());
        });
        assert!(current_deadline().is_none());
    }

    #[test]
    fn strided_checkpoint_fires_within_one_stride() {
        let expired = Deadline::after(Duration::ZERO);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_deadline(Some(expired), || {
                for _ in 0..=CHECKPOINT_STRIDE {
                    checkpoint();
                }
            })
        }));
        assert!(caught.is_err(), "a full stride of checkpoints must fire");
    }

    #[test]
    fn checkpoint_without_deadline_is_a_noop() {
        with_deadline(None, || {
            for _ in 0..10_000 {
                checkpoint();
            }
            checkpoint_now();
        });
    }

    #[test]
    fn failpoint_spec_parses_and_fires_deterministically() {
        let _g = global_lock();
        configure("pre_ta=error@1.0,mid_wand=delay:1@0.0", 42).unwrap();
        let before = injected_total();
        assert_eq!(fire("pre_ta"), Err(InjectedFault { site: "pre_ta" }));
        assert!(fire("mid_wand").is_ok(), "probability 0 never fires");
        assert!(fire("summary_merge").is_ok(), "unconfigured site is quiet");
        assert_eq!(injected_total(), before + 1);
        clear();
        assert!(fire("pre_ta").is_ok(), "cleared failpoints are quiet");
    }

    #[test]
    fn panic_action_unwinds_with_injected_payload() {
        let _g = global_lock();
        configure("summary_merge=panic@1.0", 7).unwrap();
        let payload = catch_unwind(AssertUnwindSafe(|| fire_panic("summary_merge")))
            .expect_err("panic action must unwind");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("payload must be InjectedPanic");
        assert_eq!(injected.site, "summary_merge");
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = global_lock();
        for spec in [
            "nosuchsite=error@1.0",
            "pre_ta=explode@0.5",
            "pre_ta=error@1.5",
            "pre_ta=error",
            "pre_ta",
            "pre_ta=delay:abc@0.5",
        ] {
            assert!(configure(spec, 1).is_err(), "{spec:?} must be rejected");
            clear();
        }
    }
}
