//! Inverted index with Okapi BM25 ranking.

use opine_text::{tokenize, Vocab, WordId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Identifier of an indexed document (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// BM25 free parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`).
    pub k1: f64,
    /// Length normalization strength (`b`).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// A scored retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// Its BM25 score (≥ 0).
    pub score: f64,
}

/// An in-memory inverted index over tokenized documents.
///
/// Documents are added once; the index maintains postings with term
/// frequencies, document lengths, and document frequencies for BM25.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<WordId, Vec<(DocId, u32)>>,
    doc_lengths: Vec<u32>,
    total_length: u64,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document, interning its tokens into `vocab`.
    ///
    /// Returns the new document's id.
    pub fn add_document(&mut self, text: &str, vocab: &mut Vocab) -> DocId {
        let tokens = tokenize(text);
        let doc = DocId(self.doc_lengths.len() as u32);
        let mut tf: HashMap<WordId, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(vocab.intern(t)).or_insert(0) += 1;
        }
        for (word, count) in tf {
            self.postings.entry(word).or_default().push((doc, count));
        }
        self.doc_lengths.push(tokens.len() as u32);
        self.total_length += tokens.len() as u64;
        doc
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Number of documents containing `word`.
    pub fn doc_freq(&self, word: WordId) -> usize {
        self.postings.get(&word).map_or(0, Vec::len)
    }

    /// Length (token count) of `doc`.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lengths[doc.index()]
    }

    /// BM25 score of `doc` for the (tokenized, interned) query terms.
    pub fn bm25(&self, doc: DocId, query_terms: &[WordId], params: &Bm25Params) -> f64 {
        let avg_len = self.avg_doc_len();
        query_terms
            .iter()
            .map(|&term| self.bm25_term(doc, term, avg_len, params))
            .sum()
    }

    fn bm25_term(&self, doc: DocId, term: WordId, avg_len: f64, params: &Bm25Params) -> f64 {
        let Some(postings) = self.postings.get(&term) else {
            return 0.0;
        };
        let Some(&(_, tf)) = postings.iter().find(|(d, _)| *d == doc) else {
            return 0.0;
        };
        let idf = self.idf(postings.len());
        let tf = tf as f64;
        let len_norm = 1.0 - params.b + params.b * self.doc_len(doc) as f64 / avg_len;
        idf * tf * (params.k1 + 1.0) / (tf + params.k1 * len_norm)
    }

    /// Top-`k` documents by BM25 for a free-text query.
    ///
    /// Only documents containing at least one query term are scored, so the
    /// result may be shorter than `k`. Ties break by ascending doc id for
    /// determinism.
    pub fn search(
        &self,
        query: &str,
        k: usize,
        vocab: &Vocab,
        params: &Bm25Params,
    ) -> Vec<SearchHit> {
        let terms: Vec<WordId> = tokenize(query)
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        self.search_terms(&terms, k, params)
    }

    /// Top-`k` documents for pre-interned query terms.
    pub fn search_terms(&self, terms: &[WordId], k: usize, params: &Bm25Params) -> Vec<SearchHit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let avg_len = self.avg_doc_len();
        // Accumulate scores document-at-a-time over candidate postings.
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for &term in terms {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(postings.len());
            for &(doc, tf) in postings {
                let tf = tf as f64;
                let len_norm = 1.0 - params.b + params.b * self.doc_len(doc) as f64 / avg_len;
                let s = idf * tf * (params.k1 + 1.0) / (tf + params.k1 * len_norm);
                *scores.entry(doc).or_insert(0.0) += s;
            }
        }

        // Keep the k best via a min-heap of (Reverse score, doc).
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (doc, score) in scores {
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit {
                doc: e.doc,
                score: e.score,
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.0.cmp(&b.doc.0)));
        hits
    }

    fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 1.0;
        }
        (self.total_length as f64 / self.doc_lengths.len() as f64).max(1.0)
    }

    /// Non-negative BM25 idf: `ln(1 + (N - df + 0.5)/(df + 0.5))`.
    fn idf(&self, df: usize) -> f64 {
        let n = self.num_docs() as f64;
        let df = df as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

/// Min-heap entry ordered by score ascending (so `pop` evicts the worst).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score so the heap's max is the *worst* candidate; break
        // ties by doc id descending so the smallest id survives eviction.
        other
            .score
            .total_cmp(&self.score)
            .then(self.doc.0.cmp(&other.doc.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Vocab, InvertedIndex) {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        for text in [
            "the room was very clean and the bed was soft",   // 0
            "dirty room with stained carpet",                 // 1
            "clean clean clean everything spotless",          // 2
            "the breakfast was great and the staff friendly", // 3
        ] {
            index.add_document(text, &mut vocab);
        }
        (vocab, index)
    }

    #[test]
    fn search_ranks_higher_tf_first() {
        let (vocab, index) = build();
        let hits = index.search("clean", 10, &vocab, &Bm25Params::default());
        assert_eq!(hits[0].doc, DocId(2), "doc 2 repeats 'clean' three times");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scores_are_nonnegative_and_sorted() {
        let (vocab, index) = build();
        let hits = index.search("clean room carpet", 10, &vocab, &Bm25Params::default());
        assert!(hits.iter().all(|h| h.score >= 0.0));
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn unmatched_query_returns_empty() {
        let (vocab, index) = build();
        assert!(index
            .search("zebra", 5, &vocab, &Bm25Params::default())
            .is_empty());
        assert!(index
            .search("", 5, &vocab, &Bm25Params::default())
            .is_empty());
    }

    #[test]
    fn k_limits_results() {
        let (vocab, index) = build();
        let hits = index.search("room clean", 1, &vocab, &Bm25Params::default());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn bm25_matches_search_scoring() {
        let (vocab, index) = build();
        let terms: Vec<WordId> = ["clean", "room"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        let hits = index.search_terms(&terms, 10, &Bm25Params::default());
        for hit in hits {
            let direct = index.bm25(hit.doc, &terms, &Bm25Params::default());
            assert!((direct - hit.score).abs() < 1e-9);
        }
    }

    #[test]
    fn doc_freq_counts_documents() {
        let (vocab, index) = build();
        assert_eq!(index.doc_freq(vocab.get("clean").unwrap()), 2);
        assert_eq!(index.doc_freq(vocab.get("breakfast").unwrap()), 1);
        assert_eq!(index.num_docs(), 4);
    }

    #[test]
    fn rare_terms_outscore_common_terms() {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        // "common" in every doc, "rare" in one.
        for i in 0..10 {
            let text = if i == 0 {
                "common rare".to_string()
            } else {
                "common filler".to_string()
            };
            index.add_document(&text, &mut vocab);
        }
        let rare_hits = index.search("rare", 1, &vocab, &Bm25Params::default());
        let common_hits = index.search("common", 1, &vocab, &Bm25Params::default());
        assert!(rare_hits[0].score > common_hits[0].score);
    }
}
