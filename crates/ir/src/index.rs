//! Inverted index with Okapi BM25 ranking and Block-Max-WAND top-k.
//!
//! Documents are added once (the build phase); the first retrieval
//! freezes every posting list into fixed-size blocks of `(doc, tf)`
//! pairs sorted by document id, each carrying a *max impact* — a
//! precomputed upper bound of any member document's BM25 contribution —
//! and a last-doc skip pointer. [`InvertedIndex::search_terms`] then
//! runs Block-Max WAND: a pivot walks the term cursors in document
//! order and whole blocks are skipped when their summed impact bounds
//! cannot beat the current top-k threshold. The pre-existing exhaustive
//! scorer survives as an ablation ([`InvertedIndex::set_wand`]) and as
//! the equivalence-test reference: both paths funnel every `(term,
//! doc)` contribution through one scoring expression and accumulate in
//! query-term order, so their answers are **bit-identical** — same
//! documents, same `f64` score bits, same tie order.

use opine_text::{tokenize, Vocab, WordId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::OnceLock;

/// Identifier of an indexed document (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// BM25 free parameters.
///
/// The block-max bounds assume the standard ranges `k1 ≥ 0` and
/// `0 ≤ b ≤ 1` (scores monotone in term frequency, antitone in
/// document length).
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`).
    pub k1: f64,
    /// Length normalization strength (`b`).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

impl Bm25Params {
    /// Bit-level equality: the frozen impact bounds are reused only for
    /// exactly the parameters they were computed under.
    #[inline]
    fn same_bits(&self, other: &Bm25Params) -> bool {
        self.k1.to_bits() == other.k1.to_bits() && self.b.to_bits() == other.b.to_bits()
    }
}

/// A scored retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// Its BM25 score (≥ 0).
    pub score: f64,
}

/// Documents per posting block of the frozen index (see
/// [`InvertedIndex::set_block_size`]).
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// Counters of the retrieval paths, for the serving layer's `/stats`
/// and the bench/CI skipping guards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Top-k searches answered by the Block-Max-WAND path.
    pub wand_queries: u64,
    /// Top-k searches answered by the exhaustive ablation scorer.
    pub exhaustive_queries: u64,
    /// Posting blocks bypassed via skip pointers instead of being
    /// scored document-at-a-time.
    pub blocks_skipped: u64,
}

/// One `(term, doc)` BM25 contribution. Every scoring path — the point
/// lookup, the exhaustive scorer, Block-Max WAND, and the dense batch
/// scorer — funnels through this one expression, which is what makes
/// their answers bit-identical.
#[inline]
fn score_one(idf: f64, tf: u32, doc_len: u32, avg_len: f64, params: &Bm25Params) -> f64 {
    let tf = tf as f64;
    let len_norm = 1.0 - params.b + params.b * doc_len as f64 / avg_len;
    idf * tf * (params.k1 + 1.0) / (tf + params.k1 * len_norm)
}

/// One block of a frozen posting list: its last document (the skip
/// pointer), summary statistics for bound recomputation under
/// non-default parameters, and the precomputed max impact.
#[derive(Debug, Clone)]
struct Block {
    /// Largest document id in the block.
    last_doc: u32,
    /// Largest term frequency in the block.
    max_tf: u32,
    /// Smallest document length in the block.
    min_doc_len: u32,
    /// `max` over member documents of their exact BM25 contribution
    /// under the frozen parameters — a tight upper bound.
    max_impact: f64,
}

/// A posting list frozen into block-partitioned parallel arrays.
#[derive(Debug, Clone)]
struct FrozenList {
    /// Document ids, ascending.
    docs: Vec<u32>,
    /// Term frequencies, aligned with `docs`.
    tfs: Vec<u32>,
    /// Per-block metadata; block `b` spans `docs[b·B .. (b+1)·B]`.
    blocks: Vec<Block>,
    /// The list's idf under the frozen corpus statistics.
    idf: f64,
    /// `max` over blocks of their max impact (the WAND pivot bound).
    max_impact: f64,
}

/// The immutable retrieval structure, built once per corpus state.
#[derive(Debug, Clone)]
struct Frozen {
    lists: HashMap<WordId, FrozenList>,
    block_size: usize,
    /// Parameters the stored impact bounds assume; searches under other
    /// parameters recompute bounds from `(max_tf, min_doc_len)`.
    params: Bm25Params,
    /// True when every stored `max_impact` is the exact member maximum
    /// under `params`. Incremental appends flip this off (corpus
    /// statistics moved under the sealed blocks), and searches fall back
    /// to the `(max_tf, min_doc_len)` summary bounds — still true upper
    /// bounds, just looser — until a full [`InvertedIndex::refreeze`].
    exact_bounds: bool,
}

/// An in-memory inverted index over tokenized documents.
///
/// Documents are added once; the index maintains postings (sorted by
/// document id) with term frequencies, document lengths, and document
/// frequencies for BM25. Retrieval freezes the postings into a
/// block-max structure on first use; adding a document invalidates it.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: HashMap<WordId, Vec<(DocId, u32)>>,
    doc_lengths: Vec<u32>,
    total_length: u64,
    block_size: usize,
    frozen: OnceLock<Frozen>,
    /// When false, `search_terms` takes the exhaustive scorer — the
    /// pre-block-max behaviour, kept as an ablation and as the
    /// equivalence-test reference path.
    use_wand: AtomicBool,
    wand_queries: AtomicU64,
    exhaustive_queries: AtomicU64,
    blocks_skipped: AtomicU64,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex {
            postings: HashMap::new(),
            doc_lengths: Vec::new(),
            total_length: 0,
            block_size: DEFAULT_BLOCK_SIZE,
            frozen: OnceLock::new(),
            use_wand: AtomicBool::new(true),
            wand_queries: AtomicU64::new(0),
            exhaustive_queries: AtomicU64::new(0),
            blocks_skipped: AtomicU64::new(0),
        }
    }
}

impl Clone for InvertedIndex {
    fn clone(&self) -> Self {
        let frozen = OnceLock::new();
        if let Some(f) = self.frozen.get() {
            let _ = frozen.set(f.clone());
        }
        InvertedIndex {
            postings: self.postings.clone(),
            doc_lengths: self.doc_lengths.clone(),
            total_length: self.total_length,
            block_size: self.block_size,
            frozen,
            // sync: ablation toggle; both routes are bit-identical.
            use_wand: AtomicBool::new(self.use_wand.load(Relaxed)),
            // Counters are per-instance observability state, not model
            // state: a clone starts at zero.
            wand_queries: AtomicU64::new(0),
            exhaustive_queries: AtomicU64::new(0),
            blocks_skipped: AtomicU64::new(0),
        }
    }
}

/// One term cursor of the WAND driver. Duplicate query terms get
/// *separate* cursors so score accumulation stays in query-term order
/// (bit-identical to the exhaustive scorer's term-major accumulation).
struct Cursor<'a> {
    list: &'a FrozenList,
    /// Index of the next unconsumed posting.
    pos: usize,
    /// Block containing `pos` (tracked incrementally; a division per
    /// bound probe showed up in the retrieval profile).
    block: usize,
    /// Posting index one past the current block.
    block_end: usize,
    /// List-level score upper bound under the query parameters.
    bound: f64,
}

impl Cursor<'_> {
    #[inline]
    fn exhausted(&self) -> bool {
        self.pos >= self.list.docs.len()
    }

    #[inline]
    fn doc(&self) -> u32 {
        self.list.docs[self.pos]
    }

    /// Consumes the current posting (after scoring it).
    #[inline]
    fn advance(&mut self, block_size: usize) {
        self.pos += 1;
        if self.pos >= self.block_end {
            self.block += 1;
            self.block_end = (self.block_end + block_size).min(self.list.docs.len());
        }
    }
}

/// Advances `c` to the first posting with doc ≥ `target`, bypassing
/// whole blocks via their last-doc skip pointers (counted in
/// `skipped`) and binary-searching within the landing block.
fn seek(c: &mut Cursor<'_>, target: u32, block_size: usize, skipped: &mut u64) {
    let b0 = c.block;
    let nblocks = c.list.blocks.len();
    let mut b = b0;
    while b < nblocks && c.list.blocks[b].last_doc < target {
        b += 1;
    }
    if b > b0 {
        *skipped += (b - b0) as u64;
        c.pos = b * block_size;
        c.block = b;
        c.block_end = ((b + 1) * block_size).min(c.list.docs.len());
    }
    if b >= nblocks {
        c.pos = c.list.docs.len();
        return;
    }
    c.pos += c.list.docs[c.pos..c.block_end].partition_point(|&d| d < target);
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document, interning its tokens into `vocab`.
    ///
    /// Returns the new document's id. An existing frozen block structure
    /// is maintained **incrementally**: sealed blocks keep their
    /// `(last_doc, max_tf, min_doc_len)` summaries untouched, only the
    /// unsealed tail block of each touched list grows, and per-list idf
    /// scalars are refreshed for the new corpus statistics — no posting
    /// is ever rescanned. Stored exact impact bounds are demoted to the
    /// summary-derived bounds until [`Self::refreeze`].
    pub fn add_document(&mut self, text: &str, vocab: &mut Vocab) -> DocId {
        let tokens = tokenize(text);
        let doc = DocId(self.doc_lengths.len() as u32);
        let doc_len = tokens.len() as u32;
        let mut tf: HashMap<WordId, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(vocab.intern(t)).or_insert(0) += 1;
        }
        for (&word, &count) in &tf {
            // Documents arrive in ascending id order, so each posting
            // list stays sorted by doc id without ever re-sorting.
            self.postings.entry(word).or_default().push((doc, count));
        }
        self.doc_lengths.push(doc_len);
        self.total_length += tokens.len() as u64;
        if let Some(mut frozen) = self.frozen.take() {
            self.append_to_frozen(&mut frozen, doc.0, doc_len, &tf);
            let _ = self.frozen.set(frozen);
        }
        doc
    }

    /// Adds a document against a **frozen** vocabulary: tokens the vocab
    /// does not know are dropped instead of interned.
    ///
    /// This is the live-ingest path — the engine's vocabulary (and the
    /// embeddings and idf statistics hanging off it) is fixed at build
    /// time, so a delta text index built at serve time may only speak
    /// the frozen vocabulary. The document length counts the *kept*
    /// tokens only, keeping the index's length statistics consistent
    /// with the postings it actually holds.
    pub fn add_document_frozen_vocab(&mut self, text: &str, vocab: &Vocab) -> DocId {
        let tokens = tokenize(text);
        let doc = DocId(self.doc_lengths.len() as u32);
        let mut tf: HashMap<WordId, u32> = HashMap::new();
        let mut kept = 0u32;
        for t in &tokens {
            opine_faults::checkpoint();
            if let Some(word) = vocab.get(t) {
                *tf.entry(word).or_insert(0) += 1;
                kept += 1;
            }
        }
        for (&word, &count) in &tf {
            opine_faults::checkpoint();
            // Same invariant as `add_document`: ascending doc ids keep
            // every posting list sorted without re-sorting.
            self.postings.entry(word).or_default().push((doc, count));
        }
        self.doc_lengths.push(kept);
        self.total_length += u64::from(kept);
        if let Some(mut frozen) = self.frozen.take() {
            self.append_to_frozen(&mut frozen, doc.0, kept, &tf);
            let _ = self.frozen.set(frozen);
        }
        doc
    }

    /// Extends a frozen structure with one appended document: push the
    /// new postings onto the unsealed tail blocks (opening a fresh block
    /// at each `block_size` boundary) and refresh every list's idf for
    /// the new `N`. Sealed blocks are untouched; `exact_bounds` drops so
    /// bound probes use the still-valid summary bounds.
    fn append_to_frozen(
        &self,
        frozen: &mut Frozen,
        doc: u32,
        doc_len: u32,
        tf: &HashMap<WordId, u32>,
    ) {
        let block_size = frozen.block_size;
        frozen.exact_bounds = false;
        for (&word, &count) in tf {
            opine_faults::checkpoint();
            let list = frozen.lists.entry(word).or_insert_with(|| FrozenList {
                docs: Vec::new(),
                tfs: Vec::new(),
                blocks: Vec::new(),
                idf: 0.0,
                max_impact: 0.0,
            });
            list.docs.push(doc);
            list.tfs.push(count);
            if (list.docs.len() - 1).is_multiple_of(block_size) {
                list.blocks.push(Block {
                    last_doc: doc,
                    max_tf: count,
                    min_doc_len: doc_len,
                    max_impact: 0.0,
                });
            } else if let Some(blk) = list.blocks.last_mut() {
                blk.last_doc = doc;
                blk.max_tf = blk.max_tf.max(count);
                blk.min_doc_len = blk.min_doc_len.min(doc_len);
            }
        }
        // N (and avg_len) moved, so every list's idf shifts — a scalar
        // update per list, never a member rescan.
        for list in frozen.lists.values_mut() {
            opine_faults::checkpoint();
            list.idf = self.idf(list.docs.len());
        }
    }

    /// Rebuilds the frozen structure from scratch, restoring exact
    /// per-block impact bounds after a run of incremental appends.
    pub fn refreeze(&mut self) {
        self.frozen.take();
        self.freeze();
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Number of documents containing `word`.
    pub fn doc_freq(&self, word: WordId) -> usize {
        self.postings.get(&word).map_or(0, Vec::len)
    }

    /// Length (token count) of `doc`.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lengths[doc.index()]
    }

    /// Documents per posting block (must be ≥ 1; default
    /// [`DEFAULT_BLOCK_SIZE`]). Small blocks are used by the edge-case
    /// and property tests to exercise many block boundaries on small
    /// corpora. Resets the frozen structure.
    pub fn set_block_size(&mut self, block_size: usize) {
        self.block_size = block_size.max(1);
        self.frozen.take();
    }

    /// Routes `search_terms` through Block-Max WAND (`true`, the
    /// default) or the exhaustive scorer (`false`) — the ablation the
    /// equivalence tests and the cold-interpretation bench compare.
    /// Both produce bit-identical answers.
    pub fn set_wand(&self, enabled: bool) {
        // sync: ablation toggle; a stale read routes through the other
        // bit-identical retrieval path.
        self.use_wand.store(enabled, Relaxed);
    }

    /// True when `search_terms` takes the Block-Max-WAND path.
    pub fn wand_enabled(&self) -> bool {
        // sync: ablation toggle; observability read.
        self.use_wand.load(Relaxed)
    }

    /// Retrieval-path counters since construction.
    pub fn retrieval_stats(&self) -> RetrievalStats {
        RetrievalStats {
            wand_queries: self.wand_queries.load(Relaxed),
            exhaustive_queries: self.exhaustive_queries.load(Relaxed),
            blocks_skipped: self.blocks_skipped.load(Relaxed),
        }
    }

    /// Builds the frozen block structure eagerly (it is otherwise built
    /// lazily on the first search), so a serving path never pays the
    /// freeze inside a query.
    pub fn freeze(&self) {
        let _ = self.frozen();
    }

    /// The `(doc, tf)` postings of `term`, sorted by document id
    /// (empty for unseen terms).
    pub fn term_postings(&self, term: WordId) -> &[(DocId, u32)] {
        self.postings.get(&term).map_or(&[], Vec::as_slice)
    }

    /// Frozen block metadata of `term` under `params`: one
    /// `(first_doc, last_doc, upper_bound)` triple per block, where
    /// `upper_bound` is the stored max impact (for the frozen
    /// parameters) or the `(max_tf, min_doc_len)` bound otherwise. The
    /// bound is guaranteed ≥ every member document's exact BM25
    /// contribution — property-tested in `tests/wand_equivalence.rs`.
    pub fn term_blocks(&self, term: WordId, params: &Bm25Params) -> Vec<(DocId, DocId, f64)> {
        let frozen = self.frozen();
        let Some(list) = frozen.lists.get(&term) else {
            return Vec::new();
        };
        let same = params.same_bits(&frozen.params) && frozen.exact_bounds;
        let avg_len = self.avg_doc_len();
        list.blocks
            .iter()
            .enumerate()
            .map(|(b, blk)| {
                let first = list.docs[b * frozen.block_size];
                let bound = if same {
                    blk.max_impact
                } else {
                    score_one(list.idf, blk.max_tf, blk.min_doc_len, avg_len, params)
                };
                (DocId(first), DocId(blk.last_doc), bound)
            })
            .collect()
    }

    /// BM25 score of `doc` for the (tokenized, interned) query terms.
    pub fn bm25(&self, doc: DocId, query_terms: &[WordId], params: &Bm25Params) -> f64 {
        let avg_len = self.avg_doc_len();
        query_terms
            .iter()
            .map(|&term| self.bm25_term(doc, term, avg_len, params))
            .sum()
    }

    fn bm25_term(&self, doc: DocId, term: WordId, avg_len: f64, params: &Bm25Params) -> f64 {
        let Some(postings) = self.postings.get(&term) else {
            return 0.0;
        };
        // Postings are sorted by doc id (documents are appended in id
        // order), so the per-(doc, term) lookup is a binary search —
        // this used to be a linear scan of the whole list.
        let Ok(i) = postings.binary_search_by_key(&doc, |&(d, _)| d) else {
            return 0.0;
        };
        let idf = self.idf(postings.len());
        score_one(idf, postings[i].1, self.doc_len(doc), avg_len, params)
    }

    /// BM25 scores of **every** document for `query_terms`, in one
    /// term-at-a-time pass over the posting lists — `O(total postings)`
    /// instead of a per-document per-term lookup, and bit-identical to
    /// calling [`Self::bm25`] on each document. This is the batch entry
    /// the text-fallback degree column rides.
    pub fn bm25_dense(&self, query_terms: &[WordId], params: &Bm25Params) -> Vec<f64> {
        let avg_len = self.avg_doc_len();
        let mut scores = vec![0.0f64; self.num_docs()];
        for &term in query_terms {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(postings.len());
            for &(doc, tf) in postings {
                opine_faults::checkpoint();
                scores[doc.index()] +=
                    score_one(idf, tf, self.doc_lengths[doc.index()], avg_len, params);
            }
        }
        scores
    }

    /// Top-`k` documents by BM25 for a free-text query.
    ///
    /// Only documents containing at least one query term are scored, so the
    /// result may be shorter than `k`. Ties break by ascending doc id for
    /// determinism.
    pub fn search(
        &self,
        query: &str,
        k: usize,
        vocab: &Vocab,
        params: &Bm25Params,
    ) -> Vec<SearchHit> {
        let terms: Vec<WordId> = tokenize(query)
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        self.search_terms(&terms, k, params)
    }

    /// Top-`k` documents for pre-interned query terms, via Block-Max
    /// WAND (or the exhaustive ablation when [`Self::set_wand`] turned
    /// it off — answers are bit-identical either way).
    pub fn search_terms(&self, terms: &[WordId], k: usize, params: &Bm25Params) -> Vec<SearchHit> {
        // sync: ablation toggle; both routes are bit-identical.
        if self.use_wand.load(Relaxed) {
            self.search_terms_wand(terms, k, params)
        } else {
            self.search_terms_exhaustive(terms, k, params)
        }
    }

    /// The exhaustive scorer: accumulate every candidate's score
    /// document-at-a-time over the full posting lists, then heap-select
    /// the top k. Kept verbatim as the WAND ablation and the
    /// equivalence-test reference.
    pub fn search_terms_exhaustive(
        &self,
        terms: &[WordId],
        k: usize,
        params: &Bm25Params,
    ) -> Vec<SearchHit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        self.exhaustive_queries.fetch_add(1, Relaxed);
        let avg_len = self.avg_doc_len();
        // Accumulate scores document-at-a-time over candidate postings.
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for &term in terms {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(postings.len());
            for &(doc, tf) in postings {
                opine_faults::checkpoint();
                let s = score_one(idf, tf, self.doc_len(doc), avg_len, params);
                *scores.entry(doc).or_insert(0.0) += s;
            }
        }

        // Keep the k best via a min-heap of (Reverse score, doc).
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (doc, score) in scores {
            opine_faults::checkpoint();
            heap.push(HeapEntry { score, doc });
            if heap.len() > k {
                heap.pop();
            }
        }
        sorted_hits(heap)
    }

    /// Block-Max WAND: advance a pivot over doc-ordered term cursors,
    /// skipping whole blocks whose summed max-impact bounds cannot beat
    /// the current k-th score.
    fn search_terms_wand(&self, terms: &[WordId], k: usize, params: &Bm25Params) -> Vec<SearchHit> {
        if k == 0 || terms.is_empty() || self.doc_lengths.is_empty() {
            return Vec::new();
        }
        self.wand_queries.fetch_add(1, Relaxed);
        let span = opine_trace::span("wand_retrieval");
        let frozen = self.frozen();
        let avg_len = self.avg_doc_len();
        let same_params = params.same_bits(&frozen.params) && frozen.exact_bounds;
        let block_size = frozen.block_size;
        let loose =
            |blk: &Block, idf: f64| score_one(idf, blk.max_tf, blk.min_doc_len, avg_len, params);

        // One cursor per query-term *occurrence* (duplicates included),
        // in query order, so full evaluations add contributions in the
        // exact order the exhaustive scorer does.
        let mut cursors: Vec<Cursor<'_>> = terms
            .iter()
            .filter_map(|t| frozen.lists.get(t))
            .map(|list| {
                let bound = if same_params {
                    list.max_impact
                } else {
                    list.blocks
                        .iter()
                        .map(|blk| loose(blk, list.idf))
                        .fold(0.0, f64::max)
                };
                Cursor {
                    list,
                    pos: 0,
                    block: 0,
                    block_end: block_size.min(list.docs.len()),
                    bound,
                }
            })
            .collect();
        if cursors.is_empty() {
            return Vec::new();
        }

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let mut skipped = 0u64;
        // Indices into `cursors`, kept sorted by current document.
        let mut order: Vec<usize> = (0..cursors.len()).collect();

        // The `mid_wand` failpoint sits inside the pivot loop (armed
        // only under fault injection), alongside the cancellation
        // checkpoint an expired request deadline unwinds from.
        loop {
            opine_faults::checkpoint();
            opine_faults::fire_panic("mid_wand");
            order.retain(|&i| !cursors[i].exhausted());
            if order.is_empty() {
                break;
            }
            order.sort_by_key(|&i| cursors[i].doc());
            let threshold = if heap.len() >= k {
                heap.peek().expect("heap holds k entries").score
            } else {
                f64::NEG_INFINITY
            };

            // Pivot: the shortest prefix of the sorted cursors whose
            // summed list bounds could still beat the k-th score. A doc
            // scoring exactly the threshold loses the tie to an
            // already-kept smaller id, so the comparison is strict.
            let mut ub = 0.0;
            let mut pivot_rank = None;
            // lint:allow(checkpoint_coverage, reason = "bounded by query term count; the enclosing WAND round checkpoints")
            for (rank, &i) in order.iter().enumerate() {
                ub += cursors[i].bound;
                if ub > threshold {
                    pivot_rank = Some(rank);
                    break;
                }
            }
            let Some(p) = pivot_rank else {
                break; // nothing left can enter the top k
            };
            let pivot_doc = cursors[order[p]].doc();
            // Cursors past the pivot rank can sit exactly on the pivot
            // document; they contribute to its score and bound too.
            let mut m = p;
            while m + 1 < order.len() && cursors[order[m + 1]].doc() == pivot_doc {
                m += 1;
            }

            // Block-max refinement: bound every document in
            // [pivot_doc, min participating block's last doc].
            let mut block_ub = 0.0;
            let mut min_block_last = u32::MAX;
            // lint:allow(checkpoint_coverage, reason = "bounded by query term count; the enclosing WAND round checkpoints")
            for &i in &order[..=m] {
                let c = &cursors[i];
                let nblocks = c.list.blocks.len();
                let mut b = c.block;
                while b < nblocks && c.list.blocks[b].last_doc < pivot_doc {
                    b += 1;
                }
                if b == nblocks {
                    // No remaining posting of this list reaches the
                    // pivot; its leftovers are all below the pivot and
                    // provably under the threshold.
                    continue;
                }
                let blk = &c.list.blocks[b];
                block_ub += if same_params {
                    blk.max_impact
                } else {
                    loose(blk, c.list.idf)
                };
                min_block_last = min_block_last.min(blk.last_doc);
            }

            if block_ub <= threshold {
                // Skip: no document up to the nearest participating
                // block boundary can make the top k. Jump past it,
                // capped at the next non-participating cursor's doc.
                let mut target = min_block_last.saturating_add(1);
                if m + 1 < order.len() {
                    target = target.min(cursors[order[m + 1]].doc());
                }
                for &i in &order[..=m] {
                    seek(&mut cursors[i], target, block_size, &mut skipped);
                }
            } else if cursors[order[0]].doc() == pivot_doc {
                // Fully aligned: score the pivot document, accumulating
                // contributions in query-term order (bit-identical to
                // the exhaustive scorer's sum).
                let doc_len = self.doc_lengths[pivot_doc as usize];
                let mut score = 0.0;
                // lint:allow(checkpoint_coverage, reason = "bounded by query term count; the enclosing WAND round checkpoints")
                for c in cursors.iter_mut() {
                    if !c.exhausted() && c.doc() == pivot_doc {
                        score += score_one(c.list.idf, c.list.tfs[c.pos], doc_len, avg_len, params);
                        c.advance(block_size);
                    }
                }
                // A full heap would evict a sub-threshold doc right
                // back (equal scores lose the tie to the smaller,
                // already-kept id), so only push winners.
                if heap.len() < k || score > threshold {
                    heap.push(HeapEntry {
                        score,
                        doc: DocId(pivot_doc),
                    });
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            } else {
                // Lagging cursors: documents before the pivot appear
                // only in lists whose summed bounds are ≤ threshold
                // (that is what made it the pivot) — align to it.
                for &i in &order[..=m] {
                    if cursors[i].doc() < pivot_doc {
                        seek(&mut cursors[i], pivot_doc, block_size, &mut skipped);
                    }
                }
            }
        }
        span.count("blocks_skipped", skipped);
        self.blocks_skipped.fetch_add(skipped, Relaxed);
        sorted_hits(heap)
    }

    /// The frozen block structure, built on first use.
    fn frozen(&self) -> &Frozen {
        self.frozen.get_or_init(|| {
            let params = Bm25Params::default();
            let avg_len = self.avg_doc_len();
            let block_size = self.block_size.max(1);
            let lists = self
                .postings
                .iter()
                .map(|(&term, postings)| {
                    let idf = self.idf(postings.len());
                    let docs: Vec<u32> = postings.iter().map(|&(d, _)| d.0).collect();
                    debug_assert!(
                        docs.windows(2).all(|w| w[0] < w[1]),
                        "postings must be sorted by doc id"
                    );
                    let tfs: Vec<u32> = postings.iter().map(|&(_, tf)| tf).collect();
                    let mut blocks = Vec::with_capacity(docs.len().div_ceil(block_size));
                    let mut list_max = 0.0f64;
                    // lint:allow(checkpoint_coverage, reason = "construction path; block summaries are built before the index serves queries")
                    for start in (0..docs.len()).step_by(block_size) {
                        let end = (start + block_size).min(docs.len());
                        let mut max_tf = 0u32;
                        let mut min_doc_len = u32::MAX;
                        let mut max_impact = 0.0f64;
                        for i in start..end {
                            let len = self.doc_lengths[docs[i] as usize];
                            max_tf = max_tf.max(tfs[i]);
                            min_doc_len = min_doc_len.min(len);
                            max_impact =
                                max_impact.max(score_one(idf, tfs[i], len, avg_len, &params));
                        }
                        list_max = list_max.max(max_impact);
                        blocks.push(Block {
                            last_doc: docs[end - 1],
                            max_tf,
                            min_doc_len,
                            max_impact,
                        });
                    }
                    (
                        term,
                        FrozenList {
                            docs,
                            tfs,
                            blocks,
                            idf,
                            max_impact: list_max,
                        },
                    )
                })
                .collect();
            Frozen {
                lists,
                block_size,
                params,
                exact_bounds: true,
            }
        })
    }

    fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 1.0;
        }
        (self.total_length as f64 / self.doc_lengths.len() as f64).max(1.0)
    }

    /// Non-negative BM25 idf: `ln(1 + (N - df + 0.5)/(df + 0.5))`.
    fn idf(&self, df: usize) -> f64 {
        let n = self.num_docs() as f64;
        let df = df as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

/// Drains a top-k heap into the canonical hit order: score descending,
/// doc id ascending on ties.
fn sorted_hits(heap: BinaryHeap<HeapEntry>) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = heap
        .into_iter()
        .map(|e| SearchHit {
            doc: e.doc,
            score: e.score,
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.0.cmp(&b.doc.0)));
    hits
}

/// Min-heap entry ordered by score ascending (so `pop` evicts the worst).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score so the heap's max is the *worst* candidate; break
        // ties by doc id descending so the smallest id survives eviction.
        other
            .score
            .total_cmp(&self.score)
            .then(self.doc.0.cmp(&other.doc.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Vocab, InvertedIndex) {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        for text in [
            "the room was very clean and the bed was soft",   // 0
            "dirty room with stained carpet",                 // 1
            "clean clean clean everything spotless",          // 2
            "the breakfast was great and the staff friendly", // 3
        ] {
            index.add_document(text, &mut vocab);
        }
        (vocab, index)
    }

    /// Asserts WAND and exhaustive answers are bit-identical: same
    /// docs, same score bits, same order.
    fn assert_paths_agree(index: &InvertedIndex, terms: &[WordId], k: usize) {
        let params = Bm25Params::default();
        let wand = index.search_terms(terms, k, &params);
        let exhaustive = index.search_terms_exhaustive(terms, k, &params);
        assert_eq!(wand.len(), exhaustive.len(), "k={k} terms={terms:?}");
        for (w, e) in wand.iter().zip(&exhaustive) {
            assert_eq!(w.doc, e.doc, "k={k}");
            assert_eq!(w.score.to_bits(), e.score.to_bits(), "doc {:?}", w.doc);
        }
    }

    /// A larger synthetic corpus with a deterministic, skewed term
    /// distribution (LCG) so block skipping actually fires.
    fn skewed(num_docs: usize, block_size: usize) -> (Vocab, InvertedIndex, Vec<WordId>) {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        index.set_block_size(block_size);
        let mut state = 0x2545_f491u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..num_docs {
            let mut text = String::new();
            // "clean" with skewed repetition; "room" common; fillers.
            for _ in 0..(next() % 4) {
                text.push_str("clean ");
            }
            if next() % 2 == 0 {
                text.push_str("room ");
            }
            for f in 0..(next() % 6) {
                text.push_str(["lobby ", "stay ", "bed ", "desk ", "pool ", "bar "][f]);
            }
            text.push_str("hotel");
            index.add_document(&text, &mut vocab);
        }
        let terms = vec![vocab.get("clean").unwrap(), vocab.get("room").unwrap()];
        (vocab, index, terms)
    }

    #[test]
    fn frozen_vocab_add_matches_interning_add_on_known_tokens() {
        let (mut vocab, mut index) = build();
        // Reference: the same appended document through the interning
        // path, on a clone, where every token is already known.
        let mut reference = index.clone();
        let text = "clean room with friendly staff";
        let frozen_doc = index.add_document_frozen_vocab(text, &vocab);
        let interned_doc = reference.add_document(text, &mut vocab);
        assert_eq!(frozen_doc, interned_doc);
        assert_eq!(index.doc_len(frozen_doc), reference.doc_len(interned_doc));
        let terms = [vocab.get("clean").unwrap(), vocab.get("staff").unwrap()];
        let params = Bm25Params::default();
        assert_eq!(
            index.bm25(frozen_doc, &terms, &params).to_bits(),
            reference.bm25(interned_doc, &terms, &params).to_bits(),
            "known-token documents score identically through both add paths"
        );
    }

    #[test]
    fn frozen_vocab_add_drops_unknown_tokens() {
        let (vocab, mut index) = build();
        let before_vocab = vocab.len();
        let doc = index.add_document_frozen_vocab("clean zzzunknown qqqnovel room", &vocab);
        assert_eq!(vocab.len(), before_vocab, "vocab stays frozen");
        assert_eq!(index.doc_len(doc), 2, "only the known tokens count");
        let clean = vocab.get("clean").unwrap();
        assert!(index
            .term_postings(clean)
            .iter()
            .any(|&(d, tf)| d == doc && tf == 1));
    }

    #[test]
    fn frozen_vocab_add_keeps_frozen_structure_queryable() {
        let (vocab, mut index) = build();
        index.freeze();
        index.add_document_frozen_vocab("spotless clean room", &vocab);
        let clean = vocab.get("clean").unwrap();
        assert_paths_agree(&index, &[clean], 10);
    }

    #[test]
    fn search_ranks_higher_tf_first() {
        let (vocab, index) = build();
        let hits = index.search("clean", 10, &vocab, &Bm25Params::default());
        assert_eq!(hits[0].doc, DocId(2), "doc 2 repeats 'clean' three times");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scores_are_nonnegative_and_sorted() {
        let (vocab, index) = build();
        let hits = index.search("clean room carpet", 10, &vocab, &Bm25Params::default());
        assert!(hits.iter().all(|h| h.score >= 0.0));
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn unmatched_query_returns_empty() {
        let (vocab, index) = build();
        assert!(index
            .search("zebra", 5, &vocab, &Bm25Params::default())
            .is_empty());
        assert!(index
            .search("", 5, &vocab, &Bm25Params::default())
            .is_empty());
    }

    #[test]
    fn k_limits_results() {
        let (vocab, index) = build();
        let hits = index.search("room clean", 1, &vocab, &Bm25Params::default());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn bm25_matches_search_scoring() {
        let (vocab, index) = build();
        let terms: Vec<WordId> = ["clean", "room"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        let hits = index.search_terms(&terms, 10, &Bm25Params::default());
        for hit in hits {
            let direct = index.bm25(hit.doc, &terms, &Bm25Params::default());
            assert!((direct - hit.score).abs() < 1e-9);
        }
    }

    #[test]
    fn doc_freq_counts_documents() {
        let (vocab, index) = build();
        assert_eq!(index.doc_freq(vocab.get("clean").unwrap()), 2);
        assert_eq!(index.doc_freq(vocab.get("breakfast").unwrap()), 1);
        assert_eq!(index.num_docs(), 4);
    }

    #[test]
    fn rare_terms_outscore_common_terms() {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        // "common" in every doc, "rare" in one.
        for i in 0..10 {
            let text = if i == 0 {
                "common rare".to_string()
            } else {
                "common filler".to_string()
            };
            index.add_document(&text, &mut vocab);
        }
        let rare_hits = index.search("rare", 1, &vocab, &Bm25Params::default());
        let common_hits = index.search("common", 1, &vocab, &Bm25Params::default());
        assert!(rare_hits[0].score > common_hits[0].score);
    }

    #[test]
    fn bm25_term_binary_search_stays_exact_on_a_10k_doc_list() {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        for i in 0..10_000usize {
            // Every doc contains "common" with varying tf and length.
            let mut text = "common".to_string();
            for _ in 0..(i % 5) {
                text.push_str(" common");
            }
            for _ in 0..(i % 7) {
                text.push_str(" filler");
            }
            index.add_document(&text, &mut vocab);
        }
        let term = vocab.get("common").unwrap();
        let postings = index.term_postings(term);
        assert_eq!(postings.len(), 10_000);
        assert!(postings.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        let params = Bm25Params::default();
        let avg_len = index.avg_doc_len();
        let idf = index.idf(postings.len());
        for i in (0..10_000).step_by(97) {
            let doc = DocId(i as u32);
            // Linear reference: the pre-PR lookup.
            let (_, tf) = postings.iter().find(|(d, _)| *d == doc).copied().unwrap();
            let reference = score_one(idf, tf, index.doc_len(doc), avg_len, &params);
            let got = index.bm25(doc, &[term], &params);
            assert_eq!(got.to_bits(), reference.to_bits(), "doc {i}");
        }
        // Absent docs score zero for absent terms.
        let rare = vocab.intern("neverseen");
        assert_eq!(index.bm25(DocId(3), &[rare], &params), 0.0);
    }

    #[test]
    fn wand_matches_exhaustive_on_the_fixture() {
        let (vocab, mut index) = build();
        index.set_block_size(2);
        let terms: Vec<WordId> = ["clean", "room", "carpet", "staff"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        for k in [1, 2, 3, 4, 10] {
            assert_paths_agree(&index, &terms, k);
        }
    }

    #[test]
    fn wand_matches_exhaustive_on_a_skewed_corpus() {
        let (_, index, terms) = skewed(3000, 32);
        for k in [1, 5, 10, 100, 5000] {
            assert_paths_agree(&index, &terms, k);
        }
    }

    #[test]
    fn wand_skips_blocks_on_a_skewed_corpus() {
        let (_, index, terms) = skewed(3000, 32);
        let before = index.retrieval_stats();
        let hits = index.search_terms(&terms, 10, &Bm25Params::default());
        assert_eq!(hits.len(), 10);
        let after = index.retrieval_stats();
        assert_eq!(after.wand_queries, before.wand_queries + 1);
        assert!(
            after.blocks_skipped > before.blocks_skipped,
            "top-10 over 3000 skewed docs must skip blocks: {after:?}"
        );
    }

    #[test]
    fn empty_index_returns_no_hits_on_both_paths() {
        let mut vocab = Vocab::new();
        let index = InvertedIndex::new();
        let term = vocab.intern("anything");
        assert!(index
            .search_terms(&[term], 5, &Bm25Params::default())
            .is_empty());
        assert!(index
            .search_terms_exhaustive(&[term], 5, &Bm25Params::default())
            .is_empty());
    }

    #[test]
    fn single_doc_blocks_stay_equivalent() {
        let (vocab, mut index) = build();
        index.set_block_size(1);
        let terms: Vec<WordId> = ["clean", "room"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        for k in [1, 2, 3, 10] {
            assert_paths_agree(&index, &terms, k);
        }
        let blocks = index.term_blocks(terms[0], &Bm25Params::default());
        assert_eq!(blocks.len(), index.doc_freq(terms[0]), "one doc per block");
    }

    #[test]
    fn block_boundary_exactly_at_k_stays_equivalent() {
        let (_, index, terms) = skewed(256, 64);
        // k equal to the block size and to multiples of it: the heap
        // fills exactly at a block boundary.
        for k in [64, 128, 256] {
            assert_paths_agree(&index, &terms, k);
        }
    }

    #[test]
    fn duplicate_terms_score_like_the_exhaustive_path() {
        let (vocab, mut index) = build();
        index.set_block_size(2);
        let clean = vocab.get("clean").unwrap();
        let room = vocab.get("room").unwrap();
        for terms in [vec![clean, clean], vec![clean, room, clean, clean]] {
            assert_paths_agree(&index, &terms, 10);
        }
    }

    #[test]
    fn k_larger_than_corpus_returns_every_match() {
        let (vocab, index) = build();
        let terms: Vec<WordId> = ["clean", "room"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        let hits = index.search_terms(&terms, 50, &Bm25Params::default());
        assert_eq!(hits.len(), 3, "three docs mention clean or room");
        assert_paths_agree(&index, &terms, 50);
    }

    #[test]
    fn all_equal_scores_keep_smallest_doc_ids() {
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        index.set_block_size(4);
        for _ in 0..20 {
            index.add_document("spotless lobby carpet", &mut vocab);
        }
        let term = vocab.get("spotless").unwrap();
        let hits = index.search_terms(&[term], 5, &Bm25Params::default());
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_paths_agree(&index, &[term], 5);
    }

    #[test]
    fn stored_block_bounds_are_true_upper_bounds() {
        let (_, index, terms) = skewed(1000, 16);
        let params = Bm25Params::default();
        for &term in &terms {
            let blocks = index.term_blocks(term, &params);
            assert!(!blocks.is_empty());
            for (first, last, bound) in blocks {
                for &(doc, _) in index.term_postings(term) {
                    if doc >= first && doc <= last {
                        let score = index.bm25(doc, &[term], &params);
                        assert!(
                            score <= bound,
                            "doc {doc:?} scores {score} above its block bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn toggle_routes_between_wand_and_exhaustive() {
        let (vocab, index) = build();
        let term = vocab.get("clean").unwrap();
        let before = index.retrieval_stats();
        let _ = index.search_terms(&[term], 2, &Bm25Params::default());
        index.set_wand(false);
        assert!(!index.wand_enabled());
        let _ = index.search_terms(&[term], 2, &Bm25Params::default());
        index.set_wand(true);
        let after = index.retrieval_stats();
        assert_eq!(after.wand_queries, before.wand_queries + 1);
        assert_eq!(after.exhaustive_queries, before.exhaustive_queries + 1);
    }

    #[test]
    fn adding_a_document_extends_the_frozen_blocks_incrementally() {
        let (mut vocab, mut index) = build();
        let term = vocab.get("clean").unwrap();
        let before = index.term_blocks(term, &Bm25Params::default());
        index.add_document("clean clean clean clean again", &mut vocab);
        let after = index.term_blocks(term, &Bm25Params::default());
        assert_ne!(before.len(), 0);
        assert_eq!(
            after.last().unwrap().1,
            DocId(4),
            "new doc must appear in the extended blocks"
        );
        assert_paths_agree(&index, &[term], 3);
    }

    #[test]
    fn incremental_append_keeps_sealed_blocks_and_grows_the_tail() {
        let (mut vocab, mut index, terms) = skewed(257, 64);
        index.freeze();
        let sealed_before: Vec<(DocId, DocId, f64)> = index
            .term_blocks(terms[0], &Bm25Params::default())
            .into_iter()
            .collect();
        index.add_document("clean room clean appended", &mut vocab);
        let after = index.term_blocks(terms[0], &Bm25Params::default());
        // Sealed block boundaries are untouched; only the tail moved.
        for (b, a) in sealed_before
            .iter()
            .zip(&after)
            .take(sealed_before.len() - 1)
        {
            assert_eq!(b.0, a.0, "sealed block first doc must not move");
            assert_eq!(b.1, a.1, "sealed block last doc must not move");
        }
        assert_eq!(after.last().unwrap().1, DocId(257));
        // The summary-derived bounds still dominate member scores.
        let params = Bm25Params::default();
        for &term in &terms {
            for (first, last, bound) in index.term_blocks(term, &params) {
                for &(doc, _) in index.term_postings(term) {
                    if doc >= first && doc <= last {
                        let score = index.bm25(doc, &[term], &params);
                        assert!(
                            score <= bound,
                            "doc {doc:?} scores {score} above its post-append bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_adds_and_searches_stay_bit_identical() {
        // Grow a corpus while searching between appends: every search
        // over the incrementally maintained freeze must stay
        // bit-identical to the exhaustive scorer over the same state.
        let mut vocab = Vocab::new();
        let mut index = InvertedIndex::new();
        index.set_block_size(4);
        let phrases = [
            "clean room and soft bed",
            "dirty carpet dirty walls",
            "clean clean spotless lobby",
            "room with a view of the pool",
            "clean bed clean desk clean room",
            "noisy bar downstairs",
            "spotless room clean staff",
            "carpet bed desk pool bar room",
        ];
        for round in 0..6 {
            for (i, p) in phrases.iter().enumerate() {
                index.add_document(p, &mut vocab);
                if (round + i) % 3 == 0 {
                    let terms: Vec<WordId> = ["clean", "room", "carpet"]
                        .iter()
                        .filter_map(|t| vocab.get(t))
                        .collect();
                    for k in [1, 3, 10] {
                        assert_paths_agree(&index, &terms, k);
                    }
                }
            }
        }
        // A refreeze restores exact bounds and stays bit-identical.
        index.refreeze();
        let terms: Vec<WordId> = ["clean", "room"]
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        for k in [1, 5, 48] {
            assert_paths_agree(&index, &terms, k);
        }
    }

    #[test]
    fn appends_that_introduce_new_terms_extend_the_freeze() {
        let (mut vocab, mut index) = build();
        index.freeze();
        index.add_document("entirely novel wording here", &mut vocab);
        let novel = vocab.get("novel").unwrap();
        let hits = index.search_terms(&[novel], 5, &Bm25Params::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(4));
        assert_paths_agree(&index, &[novel], 5);
    }

    #[test]
    fn non_default_params_recompute_valid_bounds() {
        let (_, index, terms) = skewed(500, 16);
        let params = Bm25Params { k1: 0.9, b: 0.4 };
        let wand = index.search_terms(&terms, 7, &params);
        let exhaustive = index.search_terms_exhaustive(&terms, 7, &params);
        assert_eq!(wand.len(), exhaustive.len());
        for (w, e) in wand.iter().zip(&exhaustive) {
            assert_eq!(w.doc, e.doc);
            assert_eq!(w.score.to_bits(), e.score.to_bits());
        }
        // And the recomputed bounds still dominate member scores.
        for &term in &terms {
            for (first, last, bound) in index.term_blocks(term, &params) {
                for &(doc, _) in index.term_postings(term) {
                    if doc >= first && doc <= last {
                        assert!(index.bm25(doc, &[term], &params) <= bound);
                    }
                }
            }
        }
    }
}
