//! Embedding-based query expansion.
//!
//! The paper strengthens the GZ12 IR baseline with query expansion
//! (Sec. 5.3): each query term is augmented with its nearest embedding
//! neighbours so that "clean" also retrieves reviews saying "spotless".

use opine_embed::Word2Vec;
use opine_text::{tokenize, Vocab, WordId};

/// Expands a free-text query into interned terms plus up to
/// `expansions_per_term` embedding neighbours per original term.
///
/// Only neighbours with cosine ≥ `min_similarity` are added; original terms
/// always come first and duplicates are removed.
pub fn expand_query(
    query: &str,
    w2v: &Word2Vec,
    vocab: &Vocab,
    expansions_per_term: usize,
    min_similarity: f32,
) -> Vec<WordId> {
    let mut terms: Vec<WordId> = tokenize(query)
        .iter()
        .filter_map(|t| vocab.get(t))
        .collect();
    let originals = terms.clone();
    for term in originals {
        for (neighbour, sim) in w2v.most_similar(term, expansions_per_term, vocab) {
            if sim >= min_similarity && !terms.contains(&neighbour) {
                terms.push(neighbour);
            }
        }
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use opine_embed::Word2VecConfig;

    #[test]
    fn expansion_adds_similar_terms() {
        let mut vocab = Vocab::new();
        let sentences = [
            vec!["room", "clean", "fresh"],
            vec!["room", "spotless", "fresh"],
            vec!["room", "clean", "bright"],
            vec!["room", "spotless", "bright"],
        ];
        let interned: Vec<Vec<WordId>> = (0..30)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let w2v = Word2Vec::train(
            &interned,
            vocab.len(),
            &Word2VecConfig {
                dim: 16,
                epochs: 8,
                seed: 13,
                ..Default::default()
            },
        );
        let expanded = expand_query("clean", &w2v, &vocab, 2, 0.1);
        assert!(expanded.len() > 1, "should add at least one neighbour");
        assert_eq!(expanded[0], vocab.get("clean").unwrap());
    }

    #[test]
    fn unknown_words_expand_to_nothing() {
        let vocab = Vocab::new();
        let w2v = Word2Vec::train(&[], 0, &Word2VecConfig::default());
        assert!(expand_query("zebra", &w2v, &vocab, 3, 0.3).is_empty());
    }

    #[test]
    fn no_duplicates_in_expansion() {
        let mut vocab = Vocab::new();
        let sentences = [vec!["clean", "spotless"], vec!["spotless", "clean"]];
        let interned: Vec<Vec<WordId>> = (0..20)
            .flat_map(|_| sentences.iter())
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let w2v = Word2Vec::train(&interned, vocab.len(), &Word2VecConfig::default());
        let expanded = expand_query("clean spotless", &w2v, &vocab, 3, -1.0);
        let mut dedup = expanded.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), expanded.len());
    }
}
