//! Information-retrieval substrate for OpineDB.
//!
//! Stands in for Elasticsearch in the original system. Provides:
//!
//! * [`InvertedIndex`] — document index with Okapi BM25 top-k retrieval
//!   (doc-ordered posting lists partitioned into blocks carrying
//!   max-impact bounds, driven by Block-Max WAND, with the exhaustive
//!   scorer kept as an ablation), used by the co-occurrence
//!   interpretation method (Eq. (3)) and by the text-retrieval
//!   fallback (Sec. 3.2);
//! * [`expansion`] — embedding-based query expansion, used to strengthen
//!   the GZ12 opinion-based entity-ranking baseline (Sec. 5.3).

pub mod expansion;
pub mod index;

pub use expansion::expand_query;
pub use index::{Bm25Params, DocId, InvertedIndex, RetrievalStats, SearchHit, DEFAULT_BLOCK_SIZE};
