//! Table schemas.

use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// True when `value` is NULL or matches this type (ints are accepted
    /// into float columns, as in most SQL engines).
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (lowercase by convention).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// New column definition.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Self {
            name: name.to_string(),
            ty,
        }
    }
}

/// A table schema: name, columns, and the primary-key column index.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Index of the key column.
    pub key: usize,
}

impl Schema {
    /// New schema; panics if `key` is out of range.
    pub fn new(name: &str, columns: Vec<Column>, key: usize) -> Self {
        assert!(key < columns.len(), "key column out of range");
        Self {
            name: name.to_string(),
            columns,
            key,
        }
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_acceptance() {
        assert!(ColumnType::Int.accepts(&Value::Int(1)));
        assert!(ColumnType::Float.accepts(&Value::Int(1)));
        assert!(ColumnType::Float.accepts(&Value::Float(1.0)));
        assert!(!ColumnType::Int.accepts(&Value::Float(1.0)));
        assert!(ColumnType::Text.accepts(&Value::Null));
        assert!(!ColumnType::Bool.accepts(&Value::text("x")));
    }

    #[test]
    fn column_lookup() {
        let s = Schema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
            ],
            0,
        );
        assert_eq!(s.column_index("b"), Some(1));
        assert_eq!(s.column_index("z"), None);
        assert_eq!(s.column_names(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "key column out of range")]
    fn bad_key_panics() {
        let _ = Schema::new("t", vec![Column::new("a", ColumnType::Int)], 3);
    }
}
