//! Typed per-column storage and vectorized objective comparisons.
//!
//! A [`crate::table::Table`] keeps one [`ColumnData`] per schema column
//! instead of row-major `Vec<Vec<Value>>`: numeric columns are flat
//! `Vec<i64>` / `Vec<f64>` with a null bitmap, so an objective predicate
//! like `price_pn < 150` evaluates as one tight loop over a typed slice
//! producing a candidate [`Bitmap`] — no per-row `Value` cloning, no
//! enum dispatch per cell.
//!
//! Storage is chosen from the schema's [`ColumnType`]; a value that the
//! schema accepts but the typed representation cannot hold losslessly
//! (an `Int` widening into a `Float` column, where identity must be
//! preserved for display/join semantics) promotes the whole column to
//! the [`ColumnData::Mixed`] fallback, which stores `Value`s directly.

use crate::ast::CmpOp;
use crate::bitmap::Bitmap;
use crate::schema::ColumnType;
use crate::value::{Value, ValueRef};

/// One column's values, stored as a typed vector where possible.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer column: values plus a null bitmap (null slots hold 0).
    Int {
        /// Cell values; meaningless where `nulls` is set.
        vals: Vec<i64>,
        /// Set bit = NULL.
        nulls: Bitmap,
    },
    /// Float column.
    Float {
        /// Cell values; meaningless where `nulls` is set.
        vals: Vec<f64>,
        /// Set bit = NULL.
        nulls: Bitmap,
    },
    /// Text column.
    Str {
        /// Cell values; empty where `nulls` is set.
        vals: Vec<String>,
        /// Set bit = NULL.
        nulls: Bitmap,
    },
    /// Boolean column.
    Bool {
        /// Cell values; meaningless where `nulls` is set.
        vals: Vec<bool>,
        /// Set bit = NULL.
        nulls: Bitmap,
    },
    /// Fallback storage for columns holding heterogeneous values (e.g.
    /// `Int`s accepted into a `Float` column).
    Mixed {
        /// Cell values as-is.
        vals: Vec<Value>,
    },
}

impl ColumnData {
    /// Empty storage for a column of the given schema type.
    pub fn for_type(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int {
                vals: Vec::new(),
                nulls: Bitmap::new(0),
            },
            ColumnType::Float => ColumnData::Float {
                vals: Vec::new(),
                nulls: Bitmap::new(0),
            },
            ColumnType::Text => ColumnData::Str {
                vals: Vec::new(),
                nulls: Bitmap::new(0),
            },
            ColumnType::Bool => ColumnData::Bool {
                vals: Vec::new(),
                nulls: Bitmap::new(0),
            },
        }
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { vals, .. } => vals.len(),
            ColumnData::Float { vals, .. } => vals.len(),
            ColumnData::Str { vals, .. } => vals.len(),
            ColumnData::Bool { vals, .. } => vals.len(),
            ColumnData::Mixed { vals } => vals.len(),
        }
    }

    /// True when the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one value. The schema has already type-checked it; a
    /// value the current typed representation cannot hold losslessly
    /// promotes the column to [`ColumnData::Mixed`] first.
    pub fn push(&mut self, value: Value) {
        match (&mut *self, value) {
            (ColumnData::Int { vals, nulls }, Value::Int(i)) => {
                vals.push(i);
                nulls.push(false);
            }
            (ColumnData::Int { vals, nulls }, Value::Null) => {
                vals.push(0);
                nulls.push(true);
            }
            (ColumnData::Float { vals, nulls }, Value::Float(x)) => {
                vals.push(x);
                nulls.push(false);
            }
            (ColumnData::Float { vals, nulls }, Value::Null) => {
                vals.push(0.0);
                nulls.push(true);
            }
            (ColumnData::Str { vals, nulls }, Value::Text(s)) => {
                vals.push(s);
                nulls.push(false);
            }
            (ColumnData::Str { vals, nulls }, Value::Null) => {
                vals.push(String::new());
                nulls.push(true);
            }
            (ColumnData::Bool { vals, nulls }, Value::Bool(b)) => {
                vals.push(b);
                nulls.push(false);
            }
            (ColumnData::Bool { vals, nulls }, Value::Null) => {
                vals.push(false);
                nulls.push(true);
            }
            (ColumnData::Mixed { vals }, v) => vals.push(v),
            (_, v) => {
                self.promote_to_mixed();
                self.push(v);
            }
        }
    }

    /// Rewrites the column as [`ColumnData::Mixed`], preserving values.
    fn promote_to_mixed(&mut self) {
        let vals: Vec<Value> = (0..self.len())
            .map(|i| self.value_ref(i).to_value())
            .collect();
        *self = ColumnData::Mixed { vals };
    }

    /// Borrowed view of cell `i`.
    #[inline]
    pub fn value_ref(&self, i: usize) -> ValueRef<'_> {
        match self {
            ColumnData::Int { vals, nulls } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Int(vals[i])
                }
            }
            ColumnData::Float { vals, nulls } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Float(vals[i])
                }
            }
            ColumnData::Str { vals, nulls } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Str(&vals[i])
                }
            }
            ColumnData::Bool { vals, nulls } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Bool(vals[i])
                }
            }
            ColumnData::Mixed { vals } => ValueRef::from(&vals[i]),
        }
    }

    /// Vectorized `column <op> literal`: one bit per row, set where the
    /// comparison holds. Semantics are exactly those of
    /// [`ValueRef::compare`] + [`CmpOp::evaluate`] — NULLs and
    /// incomparable types are false — the typed arms are the same
    /// decision compiled into a word-at-a-time kernel: 64 comparison
    /// results accumulate in a register, the null word is masked off,
    /// and one store writes the word (no per-row bitmap read-modify-
    /// write, no bounds checks in the loop body).
    pub fn compare_bitmap(&self, op: CmpOp, lit: &Value) -> Bitmap {
        let lit_ref = ValueRef::from(lit);
        match (self, lit_ref) {
            (ColumnData::Int { vals, nulls }, ValueRef::Int(_) | ValueRef::Float(_)) => {
                let b = lit_ref.as_f64().expect("numeric literal");
                compare_kernel(vals, nulls, |&v| {
                    op.evaluate(Some((v as f64).total_cmp(&b)))
                })
            }
            (ColumnData::Float { vals, nulls }, ValueRef::Int(_) | ValueRef::Float(_)) => {
                let b = lit_ref.as_f64().expect("numeric literal");
                compare_kernel(vals, nulls, |&v| op.evaluate(Some(v.total_cmp(&b))))
            }
            (ColumnData::Str { vals, nulls }, ValueRef::Str(s)) => {
                compare_kernel(vals, nulls, |v: &String| {
                    op.evaluate(Some(v.as_str().cmp(s)))
                })
            }
            (ColumnData::Bool { vals, nulls }, ValueRef::Bool(b)) => {
                compare_kernel(vals, nulls, |&v| op.evaluate(Some(v.cmp(&b))))
            }
            // Mixed storage, NULL literal, or a type-mismatched literal:
            // the general cell-at-a-time comparison (which yields all
            // false for the latter two, exactly like the row executor).
            _ => {
                let n = self.len();
                let mut out = Bitmap::new(n);
                for i in 0..n {
                    if op.evaluate(self.value_ref(i).compare(&lit_ref)) {
                        out.set(i);
                    }
                }
                out
            }
        }
    }

    /// Approximate heap footprint of the stored cells, in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            ColumnData::Int { vals, nulls } => vals.len() * 8 + nulls.len().div_ceil(8),
            ColumnData::Float { vals, nulls } => vals.len() * 8 + nulls.len().div_ceil(8),
            ColumnData::Str { vals, nulls } => {
                vals.iter()
                    .map(|s| s.capacity() + std::mem::size_of::<String>())
                    .sum::<usize>()
                    + nulls.len().div_ceil(8)
            }
            ColumnData::Bool { vals, nulls } => vals.len() + nulls.len().div_ceil(8),
            ColumnData::Mixed { vals } => vals.len() * std::mem::size_of::<Value>(),
        }
    }
}

/// Word-at-a-time comparison kernel: bit `i` of the result is
/// `matches(&vals[i])`, with NULL slots masked off afterwards.
fn compare_kernel<T>(vals: &[T], nulls: &Bitmap, mut matches: impl FnMut(&T) -> bool) -> Bitmap {
    let mut words = Vec::with_capacity(vals.len().div_ceil(64));
    for chunk in vals.chunks(64) {
        let mut word = 0u64;
        for (bit, v) in chunk.iter().enumerate() {
            word |= u64::from(matches(v)) << bit;
        }
        words.push(word);
    }
    let mut out = Bitmap::from_words(words, vals.len());
    out.and_not_assign(nulls);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_col(values: &[Option<f64>]) -> ColumnData {
        let mut c = ColumnData::for_type(ColumnType::Float);
        for v in values {
            c.push(v.map(Value::Float).unwrap_or(Value::Null));
        }
        c
    }

    #[test]
    fn typed_push_and_read() {
        let c = float_col(&[Some(1.5), None, Some(-2.0)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_ref(0), ValueRef::Float(1.5));
        assert_eq!(c.value_ref(1), ValueRef::Null);
        assert_eq!(c.value_ref(2), ValueRef::Float(-2.0));
    }

    #[test]
    fn int_into_float_column_promotes_to_mixed_and_keeps_identity() {
        let mut c = ColumnData::for_type(ColumnType::Float);
        c.push(Value::Float(1.0));
        c.push(Value::Int(99));
        assert!(matches!(c, ColumnData::Mixed { .. }));
        assert_eq!(c.value_ref(0), ValueRef::Float(1.0));
        assert_eq!(c.value_ref(1), ValueRef::Int(99));
    }

    #[test]
    fn compare_bitmap_matches_scalar_semantics() {
        let cols = [
            float_col(&[Some(1.0), None, Some(150.0), Some(149.9)]),
            {
                let mut c = ColumnData::for_type(ColumnType::Int);
                for v in [Value::Int(10), Value::Null, Value::Int(-3), Value::Int(150)] {
                    c.push(v);
                }
                c
            },
            {
                let mut c = ColumnData::for_type(ColumnType::Text);
                for v in [
                    Value::text("b"),
                    Value::Null,
                    Value::text("a"),
                    Value::text("c"),
                ] {
                    c.push(v);
                }
                c
            },
        ];
        let lits = [
            Value::Float(150.0),
            Value::Int(10),
            Value::text("b"),
            Value::Null,
            Value::Bool(true),
        ];
        let ops = [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ];
        for col in &cols {
            for lit in &lits {
                for &op in &ops {
                    let bitmap = col.compare_bitmap(op, lit);
                    for i in 0..col.len() {
                        let expected = op.evaluate(col.value_ref(i).compare(&ValueRef::from(lit)));
                        assert_eq!(
                            bitmap.get(i),
                            expected,
                            "col {col:?} row {i} {op:?} {lit:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_column_compare_falls_back_cell_at_a_time() {
        let mut c = ColumnData::for_type(ColumnType::Float);
        c.push(Value::Int(100)); // promotes
        c.push(Value::Float(200.0));
        let b = c.compare_bitmap(CmpOp::Lt, &Value::Float(150.0));
        assert!(b.get(0));
        assert!(!b.get(1));
    }
}
