//! An in-memory relational engine with a **Subjective SQL** dialect.
//!
//! The original OpineDB runs on PostgreSQL, parsing Subjective SQL with
//! `sqlparse` and evaluating membership functions as user-defined
//! aggregates. This crate provides the equivalent substrate:
//!
//! * [`value`] / [`schema`] / [`table`] / [`catalog`] — typed values,
//!   **columnar** tables (typed per-column vectors + null bitmaps behind
//!   a row-view adapter) with primary keys, and a concurrent catalog;
//! * [`bitmap`] / [`column`] — the candidate/null [`Bitmap`] and the
//!   typed column storage with vectorized objective comparisons;
//! * [`ast`] / [`parser`] — the Subjective SQL dialect: ordinary
//!   `SELECT … FROM … WHERE` plus natural-language predicates
//!   (`"has really clean rooms"`) and direct marker conditions
//!   (`h.comfort .= "firm"`);
//! * [`exec`] — the executor: objective predicates evaluate to {0, 1},
//!   subjective ones to a degree of truth supplied by a
//!   [`exec::SubjectiveScorer`], all combined with a pluggable fuzzy
//!   algebra and returned as a ranked result.
//!
//! ```
//! use opine_store::{Catalog, Column, ColumnType, Schema, Value};
//! use opine_store::parser::parse_select;
//! use opine_store::exec::{execute, ObjectiveOnly};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(
//!     "hotels",
//!     vec![
//!         Column::new("name", ColumnType::Text),
//!         Column::new("price", ColumnType::Float),
//!     ],
//!     0,
//! );
//! catalog.create_table(schema).unwrap();
//! catalog
//!     .insert("hotels", vec![Value::text("Grand"), Value::Float(120.0)])
//!     .unwrap();
//! let q = parse_select("select * from hotels where price < 200 limit 5").unwrap();
//! let result = execute(&q, &catalog, &ObjectiveOnly).unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod ast;
pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod exec;
pub mod overlay;
pub mod parser;
pub mod schema;
pub mod table;
pub mod value;

pub use ast::{CmpOp, Expr, InsertStmt, OrderBy, ReviewQualifier, Select};
pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use column::ColumnData;
pub use exec::{
    execute, execute_lazy, execute_lazy_with_overlay, execute_with_overlay, FuzzyAlgebra,
    ObjectiveOnly, ProjectedValues, ResultSet, ScoredRows, SubjectiveScorer,
};
pub use overlay::TableOverlay;
pub use parser::{parse_insert, parse_select, parse_statement, ParseError, Statement};
pub use schema::{Column, ColumnType, Schema};
pub use table::{RowView, Table};
pub use value::{Value, ValueRef};

/// Errors produced by the storage and execution layers.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Row arity or value type does not match the schema.
    SchemaMismatch(String),
    /// A subjective construct was used without a scorer that supports it.
    NoScorer(String),
    /// Any other execution error.
    Execution(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StoreError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StoreError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            StoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StoreError::NoScorer(p) => {
                write!(f, "subjective construct needs a scorer: {p}")
            }
            StoreError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}
