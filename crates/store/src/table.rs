//! Row storage with key lookup.

use crate::schema::Schema;
use crate::value::Value;
use crate::StoreError;
use std::collections::HashMap;

/// An in-memory table: schema + rows + a key index.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
    key_index: HashMap<String, usize>,
}

impl Table {
    /// Empty table with `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            key_index: HashMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a row after checking arity and column types.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), StoreError> {
        if row.len() != self.schema.columns.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "{}: expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (col, v) in self.schema.columns.iter().zip(&row) {
            if !col.ty.accepts(v) {
                return Err(StoreError::SchemaMismatch(format!(
                    "{}.{}: value {v:?} does not match {:?}",
                    self.schema.name, col.name, col.ty
                )));
            }
        }
        let key = row[self.schema.key].to_string();
        self.key_index.insert(key, self.rows.len());
        self.rows.push(row);
        Ok(())
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Row with the given key value, if present.
    pub fn get_by_key(&self, key: &Value) -> Option<&Vec<Value>> {
        self.key_index.get(&key.to_string()).map(|&i| &self.rows[i])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn table() -> Table {
        Table::new(Schema::new(
            "hotels",
            vec![
                Column::new("name", ColumnType::Text),
                Column::new("price", ColumnType::Float),
            ],
            0,
        ))
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table();
        t.insert(vec![Value::text("Grand"), Value::Float(120.0)])
            .unwrap();
        assert_eq!(t.len(), 1);
        let row = t.get_by_key(&Value::text("Grand")).unwrap();
        assert_eq!(row[1], Value::Float(120.0));
        assert!(t.get_by_key(&Value::text("Missing")).is_none());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let err = t.insert(vec![Value::text("x")]).unwrap_err();
        assert!(matches!(err, StoreError::SchemaMismatch(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Int(1), Value::Float(2.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::SchemaMismatch(_)));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut t = table();
        t.insert(vec![Value::text("A"), Value::Int(99)]).unwrap();
        assert_eq!(t.rows()[0][1], Value::Int(99));
    }

    #[test]
    fn duplicate_key_replaces_index_entry() {
        let mut t = table();
        t.insert(vec![Value::text("A"), Value::Float(1.0)]).unwrap();
        t.insert(vec![Value::text("A"), Value::Float(2.0)]).unwrap();
        // Last write wins for key lookup; both rows remain in scan order.
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get_by_key(&Value::text("A")).unwrap()[1],
            Value::Float(2.0)
        );
    }
}
